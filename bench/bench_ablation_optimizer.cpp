// Ablation: GRAPE vs CRAB (the two QOC algorithms the paper names in
// Section 2.4) on the same targets, slots and fidelity goal. GRAPE optimizes
// every slot freely; CRAB is band-limited, trading convergence speed for
// hardware-friendly waveforms.
#include "circuit/circuit.h"
#include "circuit/unitary.h"
#include "qoc/crab.h"
#include "qoc/grape.h"

#include <chrono>
#include <cstdio>

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int main() {
    using namespace epoc;
    std::printf("Ablation: GRAPE vs CRAB at equal slot budget (target fidelity 0.999)\n\n");
    std::printf("%-14s %6s | %10s %10s | %10s %10s\n", "target", "slots", "grape-fid",
                "grape-ms", "crab-fid", "crab-ms");

    struct Case {
        const char* name;
        linalg::Matrix u;
        int nq;
        int slots;
    };
    circuit::Circuit bell(2);
    bell.h(0).cx(0, 1);
    const Case cases[] = {
        {"x", circuit::pauli_x(), 1, 8},
        {"hadamard", circuit::hadamard(), 1, 8},
        {"sx", circuit::kind_matrix(circuit::GateKind::SX, {}), 1, 6},
        {"cnot", circuit::kind_matrix(circuit::GateKind::CX, {}), 2, 24},
        {"bell-block", circuit::circuit_unitary(bell), 2, 24},
    };
    for (const Case& c : cases) {
        const auto h = qoc::make_block_hamiltonian(c.nq);
        qoc::GrapeOptions gopt;
        gopt.target_fidelity = 0.999;
        gopt.max_iterations = 400;
        auto t0 = std::chrono::steady_clock::now();
        const qoc::Pulse pg = qoc::grape_optimize(h, c.u, c.slots, gopt);
        const double gms = ms_since(t0);

        qoc::CrabOptions copt;
        copt.target_fidelity = 0.999;
        copt.max_iterations = 400;
        t0 = std::chrono::steady_clock::now();
        const qoc::Pulse pc = qoc::crab_optimize(h, c.u, c.slots, copt);
        const double cms = ms_since(t0);

        std::printf("%-14s %6d | %10.5f %10.1f | %10.5f %10.1f\n", c.name, c.slots,
                    pg.fidelity, gms, pc.fidelity, cms);
    }
    std::printf("\nGRAPE converges faster per iteration budget; CRAB stays band-limited\n"
                "(see test_crab.PulseIsBandLimited).\n");
    return 0;
}
