// Ablation (DESIGN.md #2): pulse-library hit rate with and without EPOC's
// global-phase-aware unitary matching (paper Section 3.4: "similar to having
// a higher cache hit rate").
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main() {
    using namespace epoc;
    std::printf("Ablation: pulse-library hit rate, phase-aware vs exact-matrix lookup\n\n");

    const auto run = [](bool phase_aware) {
        core::EpocOptions opt;
        opt.phase_aware_library = phase_aware;
        opt.latency.fidelity_threshold = 0.99;
        opt.latency.grape.max_iterations = 120;
        core::EpocCompiler compiler(opt);
        double total_ms = 0.0;
        for (const auto& [name, c] : bench::figure_suite()) {
            const core::EpocResult r = compiler.compile(c);
            total_ms += r.qoc_ms;
        }
        const auto stats = compiler.library().stats();
        std::printf("  %-14s entries=%4zu hits=%4zu misses=%4zu hit-rate=%5.1f%% "
                    "qoc-time=%6.1fs\n",
                    phase_aware ? "phase-aware" : "exact-matrix", compiler.library().size(),
                    stats.hits, stats.misses, 100.0 * stats.hit_rate(), total_ms / 1000.0);
        return stats.hit_rate();
    };

    const double aware = run(true);
    const double oblivious = run(false);
    std::printf("\nphase-aware lookup raises the hit rate by %.1f percentage points\n",
                100.0 * (aware - oblivious));
    return 0;
}
