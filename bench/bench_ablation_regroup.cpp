// Ablation (DESIGN.md #1): regrouping size limit sweep.
// Too small -> no QOC advantage (pulses serialize); larger -> shorter latency
// at exponentially growing GRAPE cost. This bench quantifies that trade-off.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main() {
    using namespace epoc;
    std::printf("Ablation: regroup max_qubits sweep (latency vs QOC compile cost)\n\n");
    const auto circuits = {bench::table1_suite()[0], bench::table1_suite()[4]};
    for (const auto& [name, c] : circuits) {
        std::printf("%s (%d qubits, %zu gates):\n", name.c_str(), c.num_qubits(), c.size());
        std::printf("  %-6s %12s %10s %8s %12s\n", "limit", "latency[ns]", "fidelity",
                    "pulses", "qoc[ms]");
        for (int limit = 1; limit <= 4; ++limit) {
            core::EpocOptions opt;
            opt.regroup_opt.max_qubits = limit;
            opt.latency.fidelity_threshold = 0.993;
            core::EpocCompiler compiler(opt);
            const core::EpocResult r = compiler.compile(c);
            std::printf("  %-6d %12.1f %10.4f %8zu %12.0f\n", limit, r.latency_ns, r.esp,
                        r.num_pulses, r.qoc_ms);
        }
        std::printf("\n");
    }
    return 0;
}
