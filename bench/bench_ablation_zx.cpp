// Ablation (DESIGN.md #4): contribution isolation -- how much of EPOC's
// latency win comes from the ZX stage vs synthesis vs regrouping.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main() {
    using namespace epoc;
    std::printf("Ablation: stage contribution (latency in ns)\n\n");
    std::printf("%-10s %10s %10s %10s %10s\n", "circuit", "full", "-zx", "-synth",
                "-regroup");

    const auto make = [](bool zx, bool synth, bool regroup) {
        core::EpocOptions opt;
        opt.use_zx = zx;
        opt.use_synthesis = synth;
        opt.regroup_enabled = regroup;
        opt.latency.fidelity_threshold = 0.993;
        return core::EpocCompiler(opt);
    };

    for (const auto& [name, c] : bench::table1_suite()) {
        if (c.num_qubits() > 6) continue; // keep the sweep cheap
        std::fprintf(stderr, "  %s...\n", name.c_str());
        core::EpocCompiler full = make(true, true, true);
        core::EpocCompiler no_zx = make(false, true, true);
        core::EpocCompiler no_synth = make(true, false, true);
        core::EpocCompiler no_regroup = make(true, true, false);
        std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                    full.compile(c).latency_ns, no_zx.compile(c).latency_ns,
                    no_synth.compile(c).latency_ns, no_regroup.compile(c).latency_ns);
    }
    std::printf("\n(each column disables one stage; larger numbers = that stage was "
                "contributing)\n");
    return 0;
}
