// Backend matrix: one workload compiled against each built-in hardware
// backend, through one shared persistent pulse store.
//
// Each backend gets two runs with a fresh compiler each (empty in-memory
// library), both attached to the SAME store directory:
//
//   run 1 (cold)  — must see ZERO store hits even though earlier backends
//                   already populated the directory: the backend fingerprint
//                   is part of every store key, so entries never leak across
//                   devices (a linear-5 pulse replayed on heavy-hex-7 would
//                   be silently wrong — different couplers, different
//                   Hamiltonian);
//   run 2 (warm)  — must hit the store and reproduce run 1's schedule
//                   digest bit-for-bit: per-backend persistence still works.
//
// Across backends the digests must be pairwise distinct — the same circuit
// maps to genuinely different pulse programs on different topologies.
//
// Prints one grep-friendly `backend-row:` line per device plus a final
// `bench-backends-ok:` verdict (the CI backend-matrix job asserts on it);
// exit 0 iff every contract held.
//
// Usage: bench_backends [--store DIR]   (default: scratch dir under /tmp,
// wiped on start so every cold run is genuinely cold)
#include "backend/backend.h"
#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace epoc;
    namespace fs = std::filesystem;

    std::string dir;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--store") == 0) dir = argv[i + 1];
    if (dir.empty())
        dir = (fs::temp_directory_path() / "epoc-bench-backends").string();
    std::error_code ec;
    fs::remove_all(dir, ec); // cold means cold

    // GHZ-4 is topology-sensitive on purpose: its CX chain is adjacent on
    // linear-5 but needs bridging on grid-3x3 and heavy-hex-7, so the
    // partitioner's routing actually runs.
    const circuit::Circuit c = bench::ghz(4);
    const std::vector<std::string> devices = {"linear-5", "ring-8", "grid-3x3",
                                              "heavy-hex-7"};
    std::printf("backend matrix: ghz(4) on %zu devices (shared store: %s)\n\n",
                devices.size(), dir.c_str());

    backend::BackendRegistry registry;
    core::EpocOptions base;
    base.latency.fidelity_threshold = 0.99;
    base.latency.grape.max_iterations = 120;
    base.qsearch.threshold = 1e-4;
    base.qsearch.instantiate.restarts = 2;
    base.pulse_store_dir = dir;

    struct Row {
        std::string name;
        core::EpocResult cold;
        std::uint64_t digest_cold = 0;
        std::uint64_t digest_warm = 0;
        std::size_t cold_hits = 0;
        std::size_t warm_hits = 0;
    };
    std::vector<Row> rows;

    for (const std::string& name : devices) {
        core::EpocOptions opt = base;
        opt.backend = registry.find(name);
        if (opt.backend == nullptr) {
            std::fprintf(stderr, "registry lost built-in '%s'\n", name.c_str());
            return 1;
        }
        Row row;
        row.name = name;
        {
            core::EpocCompiler cold(opt);
            row.cold = cold.compile(c);
            row.digest_cold = qoc::fnv1a64(core::schedule_to_json(row.cold.schedule));
            row.cold_hits = row.cold.store_stats.hits;
        }
        {
            core::EpocCompiler warm(opt); // fresh library, same directory
            const core::EpocResult r = warm.compile(c);
            row.digest_warm = qoc::fnv1a64(core::schedule_to_json(r.schedule));
            row.warm_hits = r.store_stats.hits;
        }
        rows.push_back(std::move(row));
    }

    bool ok = true;
    std::size_t best = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        const bool cold_isolated = r.cold_hits == 0;
        const bool warm_hit = r.warm_hits > 0;
        const bool stable = r.digest_cold == r.digest_warm;
        ok = ok && cold_isolated && warm_hit && stable && !r.cold.degraded;
        if (r.cold.latency_ns < rows[best].cold.latency_ns) best = i;
        std::printf("backend-row: %-12s latency=%.1f esp=%.4f compile_ms=%.0f "
                    "digest=%016llx cold_hits=%zu warm_hits=%zu stable=%d\n",
                    r.name.c_str(), r.cold.latency_ns, r.cold.esp,
                    r.cold.compile_ms,
                    static_cast<unsigned long long>(r.digest_cold), r.cold_hits,
                    r.warm_hits, stable ? 1 : 0);
    }

    bool distinct = true;
    for (std::size_t i = 0; i < rows.size(); ++i)
        for (std::size_t j = i + 1; j < rows.size(); ++j)
            if (rows[i].digest_cold == rows[j].digest_cold) {
                distinct = false;
                std::printf("backend-digest-collision: %s == %s\n",
                            rows[i].name.c_str(), rows[j].name.c_str());
            }
    ok = ok && distinct;

    std::printf("\nbackend-digests-distinct: %d\n", distinct ? 1 : 0);
    std::printf("backend-winner: %s (%.1f ns)\n", rows[best].name.c_str(),
                rows[best].cold.latency_ns);
    std::printf("bench-backends-ok: %d\n", ok ? 1 : 0);
    return ok ? 0 : 1;
}
