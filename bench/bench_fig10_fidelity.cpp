// Figure 10: circuit fidelity (ESP, Eq. 3) with and without grouping.
// Paper: fidelities with grouping are generally higher because fewer, larger
// pulses accumulate less error; average improvement 33.77%.
#include "suite_common.h"

int main(int argc, char** argv) {
    using namespace epoc::benchharness;
    std::printf("Figure 10: circuit fidelity with vs without grouping (17 benchmarks)\n");
    const std::vector<SuiteRow> rows = run_grouping_suite(trace_arg(argc, argv));
    std::printf("%-10s %12s %12s %12s\n", "circuit", "grouped", "no-group", "improvement");
    double imp_sum = 0.0;
    int wins = 0;
    for (const SuiteRow& r : rows) {
        const double imp = 100.0 * (r.grouped.esp - r.ungrouped.esp) / r.ungrouped.esp;
        imp_sum += imp;
        if (r.grouped.esp >= r.ungrouped.esp) ++wins;
        std::printf("%-10s %12.4f %12.4f %11.1f%%\n", r.name.c_str(), r.grouped.esp,
                    r.ungrouped.esp, imp);
    }
    std::printf("\ngrouping higher fidelity on %d/%zu benchmarks; average improvement "
                "%.2f%% (paper: generally higher, avg 33.77%%)\n",
                wins, rows.size(), imp_sum / static_cast<double>(rows.size()));
    return 0;
}
