// Figure 5: ZX optimization results for 34 randomly selected circuits.
// Paper: average depth reduction of 1.48x; extreme case VQE 7656 -> 1110.
//
// QASMBench distributes circuits as transpiled gate dumps (u3/sx/rz/cx with
// all the redundancy transpilation introduces); that is what the paper's ZX
// stage consumes. We therefore sweep 20 random circuits of varying Clifford
// content plus 14 structured family circuits lowered to the IBM basis, and
// report depth before/after zx_optimize. The extreme case uses a deep
// hardware-efficient VQE ansatz at a Clifford initialization point, the
// regime in which ZX reduction is unbounded.
#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"
#include "circuit/decompose.h"
#include "zx/optimize.h"

#include <cstdio>
#include <random>
#include <string>
#include <vector>

int main() {
    using namespace epoc;

    struct Row {
        std::string name;
        circuit::Circuit c;
    };
    std::vector<Row> rows;

    // 20 random circuits of varying Clifford content.
    for (int i = 0; i < 20; ++i) {
        bench::RandomCircuitSpec spec;
        spec.num_qubits = 3 + i % 5;
        spec.num_gates = 40 + 10 * (i % 7);
        spec.non_clifford_fraction = (i % 4) * 0.08;
        spec.seed = 1000 + static_cast<std::uint64_t>(i);
        rows.push_back({"random" + std::to_string(i), bench::random_circuit(spec)});
    }
    // 14 structured circuits, lowered to the IBM {rz, sx, cx} basis first.
    const auto lowered = [](const circuit::Circuit& c) {
        return circuit::transpile(c, circuit::Basis::RZ_SX_CX);
    };
    rows.push_back({"ghz6", lowered(bench::ghz(6))});
    rows.push_back({"bv6", lowered(bench::bv(5))});
    rows.push_back({"qft5", lowered(bench::qft(5))});
    rows.push_back({"qaoa6", lowered(bench::qaoa(6, 2))});
    rows.push_back({"ising6", lowered(bench::ising(6, 3))});
    rows.push_back({"vqe5", lowered(bench::vqe(5, 2))});
    rows.push_back({"dnn5", lowered(bench::dnn(5, 3))});
    rows.push_back({"ham7", lowered(bench::ham7())});
    rows.push_back({"adder2", lowered(bench::adder(2))});
    rows.push_back({"wstate5", lowered(bench::wstate(5))});
    rows.push_back({"grover3", lowered(bench::grover(3, 2))});
    rows.push_back({"qpe4", lowered(bench::qpe(4))});
    rows.push_back({"simon3", lowered(bench::simon(3))});
    rows.push_back({"decod24", lowered(bench::decod24())});

    std::printf("Figure 5: ZX optimization depth reduction (34 circuits)\n");
    std::printf("%-10s %8s %8s %8s\n", "circuit", "before", "after", "ratio");
    double ratio_sum = 0.0;
    for (const Row& row : rows) {
        const zx::ZxOptimizeResult r = zx::zx_optimize(row.c);
        const double ratio =
            r.depth_after > 0 ? static_cast<double>(r.depth_before) / r.depth_after
                              : static_cast<double>(r.depth_before);
        ratio_sum += ratio;
        std::printf("%-10s %8d %8d %8.2f\n", row.name.c_str(), r.depth_before,
                    r.depth_after, ratio);
    }
    std::printf("\naverage depth reduction: %.2fx  (paper: 1.48x)\n",
                ratio_sum / static_cast<double>(rows.size()));

    // Extreme case: a deep hardware-efficient VQE ansatz at a Clifford
    // initialization point (all angles multiples of pi/2), the regime where
    // ZX reduction is strongest. Paper: 7656 -> 1110 (6.9x).
    circuit::Circuit deep_vqe(6);
    std::mt19937_64 rng(5);
    for (int layer = 0; layer < 120; ++layer) {
        for (int q = 0; q < 6; ++q) {
            deep_vqe.rz(static_cast<double>(rng() % 4) * 1.5707963267948966, q);
            deep_vqe.sx(q);
        }
        for (int q = 0; q < 6; ++q) deep_vqe.cx(q, (q + 1) % 6);
    }
    const zx::ZxOptimizeResult r = zx::zx_optimize(deep_vqe);
    std::printf("extreme VQE case: depth %d -> %d (%.2fx; paper 7656 -> 1110 = 6.9x)\n",
                r.depth_before, r.depth_after,
                static_cast<double>(r.depth_before) / r.depth_after);
    return 0;
}
