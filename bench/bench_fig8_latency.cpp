// Figure 8: circuit latency with and without the regrouping step.
// Paper: grouping shortens latency on every benchmark; average pulse-latency
// reduction 51.11%.
#include "suite_common.h"

int main(int argc, char** argv) {
    using namespace epoc::benchharness;
    std::printf("Figure 8: pulse latency with vs without grouping (17 benchmarks)\n");
    const std::vector<SuiteRow> rows = run_grouping_suite(trace_arg(argc, argv));
    std::printf("%-10s %14s %14s %10s\n", "circuit", "grouped[ns]", "no-group[ns]",
                "reduction");
    double red_sum = 0.0;
    int wins = 0;
    for (const SuiteRow& r : rows) {
        const double red =
            100.0 * (r.ungrouped.latency_ns - r.grouped.latency_ns) / r.ungrouped.latency_ns;
        red_sum += red;
        if (r.grouped.latency_ns <= r.ungrouped.latency_ns) ++wins;
        std::printf("%-10s %14.1f %14.1f %9.1f%%\n", r.name.c_str(), r.grouped.latency_ns,
                    r.ungrouped.latency_ns, red);
    }
    std::printf("\ngrouping shorter on %d/%zu benchmarks; average latency reduction "
                "%.2f%% (paper: all, 51.11%%)\n",
                wins, rows.size(), red_sum / static_cast<double>(rows.size()));
    return 0;
}
