// Figure 9: compilation time with and without grouping.
// Paper: grouping introduces minimal overhead (average +7.11%).
#include "suite_common.h"

int main(int argc, char** argv) {
    using namespace epoc::benchharness;
    std::printf("Figure 9: compilation time with vs without grouping (17 benchmarks)\n");
    const std::vector<SuiteRow> rows = run_grouping_suite(trace_arg(argc, argv));
    std::printf("%-10s %14s %14s %10s\n", "circuit", "grouped[ms]", "no-group[ms]",
                "overhead");
    double total_g = 0.0, total_n = 0.0;
    for (const SuiteRow& r : rows) {
        const double over =
            100.0 * (r.grouped.compile_ms - r.ungrouped.compile_ms) / r.ungrouped.compile_ms;
        total_g += r.grouped.compile_ms;
        total_n += r.ungrouped.compile_ms;
        std::printf("%-10s %14.0f %14.0f %9.1f%%\n", r.name.c_str(), r.grouped.compile_ms,
                    r.ungrouped.compile_ms, over);
    }
    std::printf("\ntotal compile time: grouped %.1fs vs ungrouped %.1fs -> %+.2f%% "
                "(paper: +7.11%%)\n",
                total_g / 1000.0, total_n / 1000.0, 100.0 * (total_g - total_n) / total_n);
    return 0;
}
