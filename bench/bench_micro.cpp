// Micro-benchmarks (Google Benchmark) for the kernels the pipeline spends its
// time in: matrix multiply, matrix exponential, ZX reduction + extraction,
// synthesis instantiation, and one GRAPE iteration budget.
#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"
#include "linalg/expm.h"
#include "linalg/random_unitary.h"
#include "qoc/grape.h"
#include "synthesis/instantiate.h"
#include "zx/circuit_to_zx.h"
#include "zx/extract.h"
#include "zx/simplify.h"

#include <benchmark/benchmark.h>

namespace {

using namespace epoc;

void BM_MatrixMultiply(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = linalg::random_unitary(n, std::uint64_t{1});
    const auto b = linalg::random_unitary(n, std::uint64_t{2});
    for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Expm(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto h = qoc::make_block_hamiltonian(static_cast<int>(n));
    linalg::Matrix m = h.drift;
    for (const auto& c : h.controls) m += c.h;
    for (auto _ : state) benchmark::DoNotOptimize(linalg::exp_i(m, 2.0));
}
BENCHMARK(BM_Expm)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_CircuitUnitary(benchmark::State& state) {
    bench::RandomCircuitSpec spec;
    spec.num_qubits = static_cast<int>(state.range(0));
    spec.num_gates = 60;
    const auto c = bench::random_circuit(spec);
    for (auto _ : state) benchmark::DoNotOptimize(circuit::circuit_unitary(c));
}
BENCHMARK(BM_CircuitUnitary)->Arg(3)->Arg(5)->Arg(7);

void BM_ZxFullReduce(benchmark::State& state) {
    bench::RandomCircuitSpec spec;
    spec.num_qubits = static_cast<int>(state.range(0));
    spec.num_gates = 80;
    spec.non_clifford_fraction = 0.15;
    const auto c = bench::random_circuit(spec);
    for (auto _ : state) {
        zx::ZxGraph g = zx::circuit_to_zx(c);
        zx::full_reduce(g);
        benchmark::DoNotOptimize(g.num_vertices());
    }
}
BENCHMARK(BM_ZxFullReduce)->Arg(4)->Arg(8);

void BM_ZxExtract(benchmark::State& state) {
    bench::RandomCircuitSpec spec;
    spec.num_qubits = static_cast<int>(state.range(0));
    spec.num_gates = 80;
    spec.non_clifford_fraction = 0.15;
    const auto c = bench::random_circuit(spec);
    zx::ZxGraph reduced = zx::circuit_to_zx(c);
    zx::full_reduce(reduced);
    for (auto _ : state) {
        zx::ZxGraph g = reduced;
        benchmark::DoNotOptimize(zx::extract_circuit(std::move(g)).size());
    }
}
BENCHMARK(BM_ZxExtract)->Arg(4)->Arg(8);

void BM_Instantiate2Q(benchmark::State& state) {
    const auto target = linalg::random_unitary(4, std::uint64_t{7});
    const auto s = synthesis::SynthStructure::seed(2).expanded(0, 1).expanded(1, 0)
                       .expanded(0, 1);
    synthesis::InstantiateOptions opt;
    opt.restarts = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesis::instantiate(s, target, opt).distance);
}
BENCHMARK(BM_Instantiate2Q);

void BM_GrapeIterations(benchmark::State& state) {
    const auto h = qoc::make_block_hamiltonian(2);
    const auto target = circuit::kind_matrix(circuit::GateKind::CX, {});
    qoc::GrapeOptions opt;
    opt.max_iterations = static_cast<int>(state.range(0));
    opt.target_fidelity = 1.1; // never met: measure the full budget
    for (auto _ : state)
        benchmark::DoNotOptimize(qoc::grape_optimize(h, target, 20, opt).fidelity);
}
BENCHMARK(BM_GrapeIterations)->Arg(10)->Arg(50);

} // namespace
