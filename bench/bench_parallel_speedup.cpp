// Parallel-compilation speedup: the paper ran its GRAPE stage on an 8-node x
// 32-core cluster; this bench measures what the thread-pool executor buys on
// the local machine. The largest bench programs (160-qubit ising/qaoa from
// the scalability validation) are compiled end-to-end with num_threads in
// {1, 2, 4, 8}; each run uses a fresh compiler (cold caches) so the arms are
// comparable. Reported per arm: wall clock, speedup vs the sequential run,
// pulse-library hit rate and single-flight waits (the contention measure).
//
// Determinism cross-check is built in: the bench aborts if any arm's latency
// or pulse count deviates from the sequential arm's.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"
#include "util/thread_pool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

int main() {
    using namespace epoc;
    std::printf("Parallel block compilation: end-to-end speedup\n");
    std::printf("hardware_concurrency() = %d\n\n", util::default_thread_count());

    const bench::NamedCircuit programs[] = {
        {"ising160", bench::ising(160, 2)},
        {"qaoa160", bench::qaoa(160, 1)},
    };
    const int thread_counts[] = {1, 2, 4, 8};

    for (const auto& [name, c] : programs) {
        std::printf("%s (%d qubits, %zu gates)\n", name.c_str(), c.num_qubits(), c.size());
        std::printf("  %8s %12s %9s | %12s %8s %10s %7s\n", "threads", "compile[s]",
                    "speedup", "latency[ns]", "pulses", "cache-hit", "waits");
        double t_seq = 0.0;
        double latency_seq = 0.0;
        std::size_t pulses_seq = 0;
        for (const int threads : thread_counts) {
            core::EpocOptions opt;
            opt.latency.fidelity_threshold = 0.995;
            opt.num_threads = threads;
            core::EpocCompiler compiler(opt);
            const auto t0 = std::chrono::steady_clock::now();
            const core::EpocResult r = compiler.compile(c);
            const double s =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            if (threads == 1) {
                t_seq = s;
                latency_seq = r.latency_ns;
                pulses_seq = r.num_pulses;
            } else if (r.latency_ns != latency_seq || r.num_pulses != pulses_seq) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION at %d threads: latency %.6f vs "
                             "%.6f, pulses %zu vs %zu\n",
                             threads, r.latency_ns, latency_seq, r.num_pulses,
                             pulses_seq);
                return EXIT_FAILURE;
            }
            std::printf("  %8d %12.2f %8.2fx | %12.1f %8zu %9.1f%% %7zu\n", threads, s,
                        t_seq / s, r.latency_ns, r.num_pulses,
                        100.0 * r.library_stats.hit_rate(),
                        r.library_stats.single_flight_waits);
        }
        std::printf("\n");
    }
    std::printf("Speedup saturates at min(num_threads, hardware threads, distinct\n"
                "cache-miss keys): on a single-core host every arm degenerates to the\n"
                "sequential schedule, which the determinism check above exploits.\n");
    return 0;
}
