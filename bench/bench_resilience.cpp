// Resilience bench: the degradation ladder under forced faults, a wall-clock
// deadline sweep, and a seeded chaos run, on fig8-style benchmark circuits.
//
// Three questions, one table each:
//   1. What does each forced failure mode cost (latency/ESP vs the clean
//      compile), and does compile() always deliver a complete schedule?
//   2. How does result quality degrade as the compile deadline tightens?
//   3. Under a seeded ~1/K random fault rate across *all* sites at once, does
//      the pipeline still hold its never-throw, always-schedule contract?
//
// EPOC_FAULT_INJECT is read too (configure_from_env), so ad-hoc chaos specs
// can be layered on from the shell.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"
#include "util/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace epoc;

core::EpocOptions bench_options() {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

std::vector<std::pair<std::string, circuit::Circuit>> suite() {
    return {
        {"ghz4", bench::ghz(4)},
        {"qft3", bench::qft(3)},
        {"bv5", bench::bv(5)},
        {"wstate4", bench::wstate(4)},
    };
}

std::size_t fallback_count(const core::EpocResult& r) {
    std::size_t n = 0;
    for (const core::BlockReport& br : r.block_reports)
        if (!br.status.ok()) ++n;
    return n;
}

core::EpocResult timed_compile(core::EpocOptions opt, const circuit::Circuit& c,
                               double& wall_ms) {
    core::EpocCompiler compiler(std::move(opt));
    const auto t0 = std::chrono::steady_clock::now();
    core::EpocResult r = compiler.compile(c);
    wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        t0)
                  .count();
    return r;
}

} // namespace

int main() {
    util::fault::configure_from_env();

    std::printf("Resilience: forced faults per injection site\n");
    std::printf("%-10s %-22s %12s %8s %10s %9s\n", "circuit", "fault", "latency[ns]",
                "esp", "fallbacks", "wall[ms]");
    const std::vector<std::string> specs = {
        "",           "zx.fail=*",          "synth.block=*", "pulse.block=*",
        "pulse.gate=*", "grape.nonfinite=*", "latency.infeasible=*"};
    for (const auto& [name, c] : suite()) {
        for (const std::string& spec : specs) {
            if (!spec.empty()) util::fault::configure(spec);
            double wall = 0.0;
            const core::EpocResult r = timed_compile(bench_options(), c, wall);
            util::fault::clear();
            std::printf("%-10s %-22s %12.1f %8.4f %7zu/%zu %9.1f%s\n", name.c_str(),
                        spec.empty() ? "(clean)" : spec.c_str(), r.latency_ns, r.esp,
                        fallback_count(r), r.block_reports.size(), wall,
                        r.degraded ? "  degraded" : "");
        }
    }

    std::printf("\nResilience: deadline sweep (qft3)\n");
    std::printf("%12s %12s %8s %10s %9s %9s\n", "deadline[ms]", "latency[ns]", "esp",
                "fallbacks", "wall[ms]", "hit");
    const circuit::Circuit qft3 = bench::qft(3);
    for (const double ms : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
        core::EpocOptions opt = bench_options();
        opt.deadline_ms = ms;
        double wall = 0.0;
        const core::EpocResult r = timed_compile(std::move(opt), qft3, wall);
        std::printf("%12.1f %12.1f %8.4f %7zu/%zu %9.1f %9s\n", ms, r.latency_ns, r.esp,
                    fallback_count(r), r.block_reports.size(), wall,
                    r.deadline_hit ? "yes" : "no");
    }

    std::printf("\nResilience: seeded chaos (~1/4 fault rate on every site)\n");
    int degraded_runs = 0;
    const std::vector<std::string> sites = {"zx.fail",         "partition.fail",
                                            "regroup.fail",    "synth.block",
                                            "synth.compute",   "pulse.block",
                                            "pulse.gate",      "grape.nonfinite",
                                            "latency.infeasible",
                                            // silent corruption + the verifier's
                                            // own failure sites: detection,
                                            // recompute and fail-open must all
                                            // hold under the same chaos
                                            "latency.badpulse", "synth.badcircuit",
                                            "verify.equiv",     "verify.simulate",
                                            "verify.revalidate",
                                            // plan-cache path: a broken plan
                                            // must degrade to a cold compile
                                            "plan.lookup",      "plan.instantiate"};
    for (int seed = 1; seed <= 4; ++seed) {
        std::string spec;
        for (const std::string& s : sites)
            spec += (spec.empty() ? "" : ";") + s + "=%4@" + std::to_string(seed);
        util::fault::configure(spec);
        for (const auto& [name, c] : suite()) {
            double wall = 0.0;
            core::EpocOptions chaos_opt = bench_options();
            // sampled: the always-on tier — the corruption sites above are
            // inert without it, and a broken verifier must stay harmless.
            chaos_opt.verify_level = verify::VerifyLevel::sampled;
            // plan cache on, so the plan.* sites are live paths, not no-ops.
            chaos_opt.plan_cache = true;
            const core::EpocResult r = timed_compile(std::move(chaos_opt), c, wall);
            if (r.degraded) ++degraded_runs;
            if (r.num_pulses == 0 || r.latency_ns <= 0.0) {
                std::printf("  CONTRACT VIOLATION: %s seed %d produced an empty "
                            "schedule\n",
                            name.c_str(), seed);
                util::fault::clear();
                return 1;
            }
        }
        util::fault::clear();
    }
    std::printf("  %d/%zu chaos compiles degraded; all returned complete schedules\n",
                degraded_runs, 4 * suite().size());
    return 0;
}
