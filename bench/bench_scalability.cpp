// Scalability check: the paper validates EPOC on a "large and deep 160-qubit
// quantum program" (Section 4). We compile a 160-qubit GHZ chain and a
// 160-qubit trotterized Ising program end-to-end: the ZX pass, partitioning
// and synthesis are all polynomial, and QOC cost is bounded by the pulse
// library (repeated blocks hit the cache), so wall-clock stays in seconds.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <chrono>
#include <cstdio>

int main() {
    using namespace epoc;
    std::printf("Scalability: 160-qubit programs end-to-end\n\n");
    std::printf("%-12s %7s %7s | %12s %10s %8s | %10s %9s\n", "circuit", "qubits",
                "gates", "latency[ns]", "esp", "pulses", "compile[s]", "cache-hit");

    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.995;

    const bench::NamedCircuit programs[] = {
        {"ghz160", bench::ghz(160)},
        {"ising160", bench::ising(160, 2)},
        {"qaoa160", bench::qaoa(160, 1)},
    };
    for (const auto& [name, c] : programs) {
        std::fprintf(stderr, "  compiling %s...\n", name.c_str());
        core::EpocCompiler compiler(opt);
        const auto t0 = std::chrono::steady_clock::now();
        const core::EpocResult r = compiler.compile(c);
        const double s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        std::printf("%-12s %7d %7zu | %12.1f %10.4f %8zu | %10.1f %8.1f%%\n", name.c_str(),
                    c.num_qubits(), c.size(), r.latency_ns, r.esp, r.num_pulses, s,
                    100.0 * compiler.library().stats().hit_rate());
    }
    std::printf("\nThe pulse library turns repeated blocks into cache hits; QOC cost is\n"
                "independent of circuit width, as the paper's 160-qubit validation claims.\n");
    return 0;
}
