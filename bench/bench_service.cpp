// Compile-service throughput: jobs/sec through an in-process epocd daemon as
// the client count grows.
//
// A fixed four-circuit workload (the soak set) is first compiled once in
// library mode to measure the sequential baseline and the unique-work miss
// count. Then for each client count N the daemon is started fresh and N
// client threads each push the full workload for a few rounds, pipelined over
// their own connection. Because all clients share one compiler, every block
// after the first encounter is a library hit — the steady-state rate measures
// scheduling + cache lookups + wire overhead, not GRAPE. The dedup invariant
// (daemon misses == one client's unique misses) is asserted on every row.
//
// Usage: bench_service [--rounds N] [--executors N]
#include "service/daemon.h"

#include "bench_circuits/generators.h"
#include "circuit/qasm.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "service/client.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace {

using namespace epoc;
using Clock = std::chrono::steady_clock;

core::EpocOptions fast_options() {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

std::vector<std::string> workload() {
    return {circuit::to_qasm(bench::ghz(4)), circuit::to_qasm(bench::qft(3)),
            circuit::to_qasm(bench::bv(5)), circuit::to_qasm(bench::wstate(4))};
}

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

} // namespace

int main(int argc, char** argv) {
    int rounds = 4;
    int executors = 4;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--rounds") == 0) rounds = std::atoi(argv[i + 1]);
        if (std::strcmp(argv[i], "--executors") == 0)
            executors = std::atoi(argv[i + 1]);
    }

    const std::vector<std::string> circuits = workload();

    // Sequential library-mode baseline, and the unique-work denominator.
    core::EpocCompiler local(fast_options());
    const auto t0 = Clock::now();
    for (int r = 0; r < rounds; ++r)
        for (const std::string& qasm : circuits)
            local.compile(circuit::parse_qasm(qasm));
    const double seq_ms = ms_since(t0);
    const std::size_t unique_misses = local.library().stats().misses;
    const int jobs_per_client = rounds * static_cast<int>(circuits.size());
    std::printf("compile service throughput (executors=%d, %d jobs/client)\n\n",
                executors, jobs_per_client);
    std::printf("%8s %8s %10s %10s %12s %10s\n", "clients", "jobs", "wall-ms",
                "jobs/sec", "vs-seq", "dedup-ok");
    std::printf("%8s %8d %10.1f %10.1f %12s %10s\n", "(seq)", jobs_per_client,
                seq_ms, 1000.0 * jobs_per_client / seq_ms, "1.00x", "-");

    for (const int clients : {1, 2, 4}) {
        service::DaemonOptions opt;
        opt.socket_path = "/tmp/epoc_bench_service_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(clients) + ".sock";
        opt.num_executors = executors;
        opt.compiler = fast_options();
        service::EpocDaemon daemon(opt);
        daemon.start();

        std::atomic<int> failures{0};
        const auto t1 = Clock::now();
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                try {
                    service::EpocClient client(opt.socket_path);
                    std::vector<std::uint64_t> ids;
                    for (int r = 0; r < rounds; ++r)
                        for (const std::string& qasm : circuits)
                            ids.push_back(client.submit(
                                qasm, "bench" + std::to_string(c)));
                    for (const std::uint64_t id : ids)
                        if (client.wait_for(id).status != service::JobStatus::ok)
                            failures.fetch_add(1);
                } catch (...) {
                    failures.fetch_add(1);
                }
            });
        }
        for (std::thread& th : threads) th.join();
        const double wall_ms = ms_since(t1);

        std::uint64_t daemon_misses = 0;
        {
            service::EpocClient probe(opt.socket_path);
            for (const auto& [k, v] : probe.status().counters)
                if (k == "qoc.library_misses") daemon_misses = v;
        }
        daemon.stop();

        const int total_jobs = clients * jobs_per_client;
        const double jobs_per_sec = 1000.0 * total_jobs / wall_ms;
        const double speedup =
            (seq_ms * clients) / wall_ms; // vs running each client serially
        const bool dedup_ok = failures.load() == 0 && daemon_misses == unique_misses;
        std::printf("%8d %8d %10.1f %10.1f %11.2fx %10s\n", clients, total_jobs,
                    wall_ms, jobs_per_sec, speedup, dedup_ok ? "yes" : "NO");
    }
    return 0;
}
