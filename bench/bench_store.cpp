// Persistent pulse store: cold-vs-warm compile time on the Figure 9 workload.
//
// Pass 1 ("cold") compiles the 17-benchmark suite with an empty store
// directory attached: every pulse is GRAPE-generated and written back. Pass 2
// ("warm") repeats the sweep with a brand-new compiler — empty in-memory
// library — against the now-populated directory: every pulse promotes from
// disk, so the remaining compile time is ZX + synthesis + scheduling. The
// warm column is the compile time a user pays on any re-run that survives a
// process restart; the delta is the GRAPE time the store amortizes away.
//
// Each row also cross-checks the contract the tests enforce: the warm run
// does zero GRAPE runs and its schedule digest (FNV-1a of the JSON export)
// is bit-identical to the cold run's.
//
// Usage: bench_store [--store DIR]   (default: a scratch dir under /tmp,
// wiped on start so the cold pass is genuinely cold)
#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace epoc;
    namespace fs = std::filesystem;

    std::string dir;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--store") == 0) dir = argv[i + 1];
    if (dir.empty())
        dir = (fs::temp_directory_path() / "epoc-bench-store").string();
    std::error_code ec;
    fs::remove_all(dir, ec); // cold means cold
    std::printf("persistent pulse store: cold vs warm compile (store: %s)\n\n",
                dir.c_str());

    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.993;
    opt.latency.grape.max_iterations = 150;
    opt.qsearch.threshold = 1e-4;
    opt.trace_enabled = true; // for the grape_runs cross-check
    opt.pulse_store_dir = dir;

    struct Row {
        std::string name;
        double cold_ms = 0.0;
        double warm_ms = 0.0;
        std::uint64_t digest_cold = 0;
        std::uint64_t digest_warm = 0;
        std::uint64_t warm_grape_runs = 0;
    };
    std::vector<Row> rows;

    const std::vector<bench::NamedCircuit> suite = bench::figure_suite();

    {
        core::EpocCompiler cold(opt);
        for (const bench::NamedCircuit& nc : suite) {
            std::fprintf(stderr, "  cold %-10s...\n", nc.name.c_str());
            const core::EpocResult r = cold.compile(nc.circuit);
            rows.push_back({nc.name, r.compile_ms, 0.0,
                            qoc::fnv1a64(core::schedule_to_json(r.schedule)), 0, 0});
        }
    } // the cold compiler's in-memory library dies here; the directory stays

    core::EpocCompiler warm(opt);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(stderr, "  warm %-10s...\n", rows[i].name.c_str());
        warm.tracer().reset(); // per-circuit grape_runs, not cumulative
        const core::EpocResult r = warm.compile(suite[i].circuit);
        rows[i].warm_ms = r.compile_ms;
        rows[i].digest_warm = qoc::fnv1a64(core::schedule_to_json(r.schedule));
        rows[i].warm_grape_runs = r.trace.counter("qoc.grape_runs");
    }

    std::printf("%-10s %12s %12s %9s %11s %10s\n", "circuit", "cold[ms]", "warm[ms]",
                "speedup", "grape-runs", "identical");
    double total_cold = 0.0, total_warm = 0.0;
    bool all_identical = true, all_grape_free = true;
    for (const Row& r : rows) {
        const bool same = r.digest_cold == r.digest_warm;
        all_identical = all_identical && same;
        all_grape_free = all_grape_free && r.warm_grape_runs == 0;
        total_cold += r.cold_ms;
        total_warm += r.warm_ms;
        std::printf("%-10s %12.0f %12.0f %8.1fx %11llu %10s\n", r.name.c_str(),
                    r.cold_ms, r.warm_ms, r.cold_ms / std::max(r.warm_ms, 1e-9),
                    static_cast<unsigned long long>(r.warm_grape_runs),
                    same ? "yes" : "NO");
    }
    std::printf("\ntotal: cold %.1fs vs warm %.1fs -> %.1fx; warm GRAPE-free: %s; "
                "bit-identical: %s\n",
                total_cold / 1000.0, total_warm / 1000.0,
                total_cold / std::max(total_warm, 1e-9), all_grape_free ? "yes" : "NO",
                all_identical ? "yes" : "NO");
    return (all_identical && all_grape_free) ? 0 : 1;
}
