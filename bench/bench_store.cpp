// Persistent pulse store: cold-vs-warm-vs-packed compile time on the
// Figure 9 workload.
//
// Pass 1 ("cold") compiles the 17-benchmark suite with an empty store
// directory attached: every pulse is GRAPE-generated and written back. Pass 2
// ("warm") repeats the sweep with a brand-new compiler — empty in-memory
// library — against the now-populated directory: every pulse promotes from
// disk, so the remaining compile time is ZX + synthesis + scheduling. Pass 3
// ("packed") folds the warm store into a single immutable pack segment
// (store/pack.h), mounts it behind a COMPLETELY EMPTY store directory, and
// sweeps again: the cost a fresh machine pays when it cold-starts from a
// shipped warm library — pack probe + mandatory foreign re-simulation
// instead of GRAPE.
//
// Each row also cross-checks the contract the tests enforce: the warm and
// packed runs do zero GRAPE runs and their schedule digests (FNV-1a of the
// JSON export) are bit-identical to the cold run's.
//
// Usage: bench_store [--store DIR]   (default: a scratch dir under /tmp,
// wiped on start so the cold pass is genuinely cold)
#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "store/pack.h"
#include "store/pulse_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace epoc;
    namespace fs = std::filesystem;

    std::string dir;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--store") == 0) dir = argv[i + 1];
    if (dir.empty())
        dir = (fs::temp_directory_path() / "epoc-bench-store").string();
    std::error_code ec;
    fs::remove_all(dir, ec); // cold means cold
    std::printf("persistent pulse store: cold vs warm vs packed compile "
                "(store: %s)\n\n",
                dir.c_str());

    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.993;
    opt.latency.grape.max_iterations = 150;
    opt.qsearch.threshold = 1e-4;
    opt.trace_enabled = true; // for the grape_runs cross-check
    opt.pulse_store_dir = dir;

    struct Row {
        std::string name;
        double cold_ms = 0.0;
        double warm_ms = 0.0;
        double packed_ms = 0.0;
        std::uint64_t digest_cold = 0;
        std::uint64_t digest_warm = 0;
        std::uint64_t digest_packed = 0;
        std::uint64_t warm_grape_runs = 0;
        std::uint64_t packed_grape_runs = 0;
    };
    std::vector<Row> rows;

    const std::vector<bench::NamedCircuit> suite = bench::figure_suite();

    {
        core::EpocCompiler cold(opt);
        for (const bench::NamedCircuit& nc : suite) {
            std::fprintf(stderr, "  cold   %-10s...\n", nc.name.c_str());
            const core::EpocResult r = cold.compile(nc.circuit);
            Row row;
            row.name = nc.name;
            row.cold_ms = r.compile_ms;
            row.digest_cold = qoc::fnv1a64(core::schedule_to_json(r.schedule));
            rows.push_back(std::move(row));
        }
    } // the cold compiler's in-memory library dies here; the directory stays

    {
        core::EpocCompiler warm(opt);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(stderr, "  warm   %-10s...\n", rows[i].name.c_str());
            warm.tracer().reset(); // per-circuit grape_runs, not cumulative
            const core::EpocResult r = warm.compile(suite[i].circuit);
            rows[i].warm_ms = r.compile_ms;
            rows[i].digest_warm = qoc::fnv1a64(core::schedule_to_json(r.schedule));
            rows[i].warm_grape_runs = r.trace.counter("qoc.grape_runs");
        }
    }

    // Fold the warm store into one pack, mount it behind an empty local dir.
    const fs::path pack_dir = fs::path(dir + "-packs");
    const fs::path fresh_dir = fs::path(dir + "-fresh");
    fs::remove_all(pack_dir, ec);
    fs::remove_all(fresh_dir, ec);
    fs::create_directories(pack_dir);
    {
        std::vector<fs::path> files;
        for (const auto& e : fs::directory_iterator(dir))
            if (e.is_regular_file() && e.path().extension() == ".pulse")
                files.push_back(e.path());
        std::sort(files.begin(), files.end());
        std::vector<store::PackEntry> entries;
        for (const fs::path& p : files)
            if (auto pe = store::PulseStore::read_entry_file(p))
                entries.push_back(std::move(*pe));
        const std::size_t count = entries.size();
        if (!store::write_pack(pack_dir / "warm.pack", std::move(entries))) {
            std::fprintf(stderr, "bench_store: pack fold failed\n");
            return 1;
        }
        std::printf("packed %zu warm entries into %s\n\n", count,
                    (pack_dir / "warm.pack").string().c_str());
    }

    std::uint64_t pack_hits = 0;
    {
        core::EpocOptions popt = opt;
        popt.pulse_store_dir = fresh_dir.string();
        popt.pulse_pack_dirs = {pack_dir.string()};
        core::EpocCompiler packed(popt);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(stderr, "  packed %-10s...\n", rows[i].name.c_str());
            packed.tracer().reset();
            const core::EpocResult r = packed.compile(suite[i].circuit);
            rows[i].packed_ms = r.compile_ms;
            rows[i].digest_packed =
                qoc::fnv1a64(core::schedule_to_json(r.schedule));
            rows[i].packed_grape_runs = r.trace.counter("qoc.grape_runs");
            pack_hits = r.store_stats.pack_hits; // cumulative for the store
        }
    }

    std::printf("%-10s %10s %10s %10s %8s %11s %10s\n", "circuit", "cold[ms]",
                "warm[ms]", "packed[ms]", "speedup", "grape-runs", "identical");
    double total_cold = 0.0, total_warm = 0.0, total_packed = 0.0;
    bool all_identical = true, all_grape_free = true;
    for (const Row& r : rows) {
        const bool same =
            r.digest_cold == r.digest_warm && r.digest_cold == r.digest_packed;
        all_identical = all_identical && same;
        all_grape_free = all_grape_free && r.warm_grape_runs == 0 &&
                         r.packed_grape_runs == 0;
        total_cold += r.cold_ms;
        total_warm += r.warm_ms;
        total_packed += r.packed_ms;
        std::printf("%-10s %10.0f %10.0f %10.0f %7.1fx %11llu %10s\n",
                    r.name.c_str(), r.cold_ms, r.warm_ms, r.packed_ms,
                    r.cold_ms / std::max(r.warm_ms, 1e-9),
                    static_cast<unsigned long long>(r.warm_grape_runs +
                                                    r.packed_grape_runs),
                    same ? "yes" : "NO");
    }
    std::printf("\ntotal: cold %.1fs vs warm %.1fs vs packed %.1fs; pack hits "
                "%llu; warm+packed GRAPE-free: %s; bit-identical: %s\n",
                total_cold / 1000.0, total_warm / 1000.0, total_packed / 1000.0,
                static_cast<unsigned long long>(pack_hits),
                all_grape_free ? "yes" : "NO", all_identical ? "yes" : "NO");
    return (all_identical && all_grape_free) ? 0 : 1;
}
