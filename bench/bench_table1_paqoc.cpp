// Table 1: gate-based vs PAQOC-like vs EPOC on the paper's 7 programs
// (simon, bb84, bv, qaoa, decod24, dnn, ham7).
// Paper: EPOC averages -31.74% latency vs PAQOC and -76.80% vs gate-based,
// with mostly higher fidelity.
#include "bench_circuits/generators.h"
#include "epoc/baselines.h"
#include "epoc/pipeline.h"

#include <cstdio>
#include <vector>

int main() {
    using namespace epoc;
    std::printf("Table 1: latency [ns] and fidelity, 7 QASMBench-style programs\n\n");
    std::printf("%-10s | %10s %10s %10s | %9s %9s %9s\n", "circuit", "gate-based",
                "paqoc-like", "epoc", "fid(gate)", "fid(paqoc)", "fid(epoc)");

    core::GateBasedCompiler gate;
    core::PaqocLikeCompiler paqoc;
    core::EpocOptions eopt;
    eopt.regroup_opt.max_qubits = 4; // the paper regroups beyond pattern size
    core::EpocCompiler epoc_compiler(eopt);

    double sum_gate = 0.0, sum_paqoc = 0.0, sum_epoc = 0.0;
    for (const auto& [name, c] : bench::table1_suite()) {
        std::fprintf(stderr, "  compiling %s...\n", name.c_str());
        const core::EpocResult rg = gate.compile(c);
        const core::EpocResult rp = paqoc.compile(c);
        const core::EpocResult re = epoc_compiler.compile(c);
        sum_gate += rg.latency_ns;
        sum_paqoc += rp.latency_ns;
        sum_epoc += re.latency_ns;
        std::printf("%-10s | %10.1f %10.1f %10.1f | %9.3f %9.3f %9.3f\n", name.c_str(),
                    rg.latency_ns, rp.latency_ns, re.latency_ns, rg.esp, rp.esp, re.esp);
    }
    std::printf("\naverage EPOC latency vs PAQOC-like: %+.2f%%  (paper: -31.74%%)\n",
                100.0 * (sum_epoc - sum_paqoc) / sum_paqoc);
    std::printf("average EPOC latency vs gate-based: %+.2f%%  (paper: -76.80%%)\n",
                100.0 * (sum_epoc - sum_gate) / sum_gate);
    return 0;
}
