// Variational (incremental) compilation bench: the plan cache and GRAPE warm
// starting on ansatz angle sweeps — the workload the plan cache exists for.
//
// Three tables:
//   1. Incremental mode on a hardware-efficient VQE ansatz (parametric
//      rotation layers around a fixed Toffoli + CX entangler): the build
//      iteration pays for ZX, partitioning, QSearch synthesis of the 3q
//      entangler and regrouping; every later iteration re-binds the plan and
//      regenerates only the tiny angle-dependent pulses. This is the
//      headline number (>= 3x per-iteration collapse required; in practice
//      it is orders of magnitude).
//   2. Reproducible mode (warm start off, full verification) on a QAOA ring:
//      every plan-hit compile is checked bit-identical (schedule digest)
//      against a fresh cold compile at the same angles — reuse must be free.
//   3. Warm-start savings on the same QAOA sweep: total GRAPE iterations,
//      cold vs warm.
//
// Exits non-zero when the headline contract breaks: hit-iteration median
// speedup < 3x over the build iteration, or any digest mismatch.
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

namespace {

using namespace epoc;

core::EpocOptions bench_options() {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.plan_cache = true;
    // QOC-sized regrouped blocks: a wide merged block swallows the parametric
    // rotations and re-runs a large GRAPE every iteration, which is exactly
    // the cost the incremental mode exists to avoid.
    opt.regroup_opt.max_qubits = 2;
    return opt;
}

/// Hardware-efficient VQE ansatz: parametric 1q layers around a fixed
/// entangler whose QSearch synthesis dominates a cold compile.
circuit::Circuit vqe_ansatz(double a, double b) {
    circuit::Circuit c(3);
    c.ry(a, 0).ry(a + 0.1, 1).ry(a + 0.2, 2);
    c.ccx(0, 1, 2);
    c.cx(0, 1).cx(1, 2);
    c.ry(b, 0).ry(b + 0.1, 1).ry(b + 0.2, 2);
    return c;
}

/// One QAOA layer on a 3-qubit ring: every regrouped block is
/// angle-dependent, so pulse generation runs each iteration — the workload
/// for the digest oracle and the warm-start savings table.
circuit::Circuit qaoa_ring(double gamma, double beta) {
    circuit::Circuit c(3);
    c.h(0).h(1).h(2);
    c.rzz(gamma, 0, 1).rzz(gamma, 1, 2).rzz(gamma, 0, 2);
    c.rx(beta, 0).rx(beta, 1).rx(beta, 2);
    return c;
}

/// Optimizer-style angle schedule: small steps, the regime warm starting is
/// built for (the previous iterate's pulses are near-solutions).
std::pair<double, double> angles(int i) {
    return {0.8 + 0.002 * i, 0.4 - 0.001 * i};
}

std::uint64_t digest(const core::EpocResult& r) {
    return qoc::fnv1a64(core::schedule_to_json(r.schedule));
}

double compile_ms(core::EpocCompiler& compiler, const circuit::Circuit& c,
                  core::EpocResult& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = compiler.compile(c);
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     t0)
        .count();
}

double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int main() {
    constexpr int kIters = 12;

    std::printf("Variational sweep 1: incremental mode, VQE ansatz "
                "(plan + warm start)\n");
    std::printf("%4s %10s %8s %8s\n", "iter", "compile_ms", "plan", "esp");
    core::EpocCompiler incremental(bench_options());
    double build_ms = 0.0;
    std::vector<double> hit_ms;
    for (int i = 0; i < kIters; ++i) {
        const auto [a, b] = angles(i);
        core::EpocResult r;
        const double ms = compile_ms(incremental, vqe_ansatz(a, b), r);
        if (i == 0)
            build_ms = ms;
        else
            hit_ms.push_back(ms);
        std::printf("%4d %10.1f %8s %8.4f\n", i, ms, r.plan_hit ? "hit" : "build",
                    r.esp);
    }
    const double hit_median = median(hit_ms);
    const double speedup = hit_median > 0.0 ? build_ms / hit_median : 0.0;
    std::printf("build %.1f ms, hit median %.1f ms -> speedup-after-first: "
                "%.1fx\n\n",
                build_ms, hit_median, speedup);

    std::printf("Variational sweep 2: reproducible mode, QAOA ring "
                "(warm start off, verify full)\n");
    std::printf("%4s %8s %18s %6s\n", "iter", "plan", "digest", "=cold");
    core::EpocOptions ropt = bench_options();
    ropt.plan_warm_start = false;
    ropt.verify_level = verify::VerifyLevel::full;
    core::EpocCompiler planned(ropt);
    bool digests_equal = true;
    for (int i = 0; i < 6; ++i) {
        const auto [gamma, beta] = angles(i);
        core::EpocResult r;
        (void)compile_ms(planned, qaoa_ring(gamma, beta), r);
        // The reuse oracle: a fresh compiler cold-compiles the same angles
        // and must produce the same bytes.
        core::EpocCompiler fresh(ropt);
        const bool same = digest(fresh.compile(qaoa_ring(gamma, beta))) == digest(r);
        digests_equal = digests_equal && same;
        std::printf("%4d %8s   %016llx %6s\n", i, r.plan_hit ? "hit" : "build",
                    static_cast<unsigned long long>(digest(r)), same ? "yes" : "NO");
    }
    std::printf("digests-equal: %d\n\n", digests_equal ? 1 : 0);

    std::printf("Variational sweep 3: warm-start savings, QAOA ring "
                "(%d iterations)\n",
                kIters);
    std::uint64_t iters_by_mode[2] = {0, 0};
    for (const bool warm : {false, true}) {
        core::EpocOptions wopt = bench_options();
        wopt.plan_warm_start = warm;
        wopt.trace_enabled = true;
        core::EpocCompiler compiler(wopt);
        std::uint64_t total = 0;
        for (int i = 0; i < kIters; ++i) {
            const auto [gamma, beta] = angles(i);
            total = compiler.compile(qaoa_ring(gamma, beta))
                        .trace.counter("qoc.grape_iterations");
        }
        iters_by_mode[warm ? 1 : 0] = total;
        std::printf("  %-14s total GRAPE iterations: %8llu\n",
                    warm ? "warm-start" : "cold-start",
                    static_cast<unsigned long long>(total));
    }
    if (iters_by_mode[1] < iters_by_mode[0])
        std::printf("  warm start saved %.1f%% of optimizer iterations\n",
                    100.0 * (1.0 - static_cast<double>(iters_by_mode[1]) /
                                       static_cast<double>(iters_by_mode[0])));

    if (!digests_equal) {
        std::printf("CONTRACT VIOLATION: plan-hit schedule differed from a cold "
                    "compile\n");
        return 1;
    }
    if (speedup < 3.0) {
        std::printf("CONTRACT VIOLATION: hit-iteration speedup %.1fx < 3x\n",
                    speedup);
        return 1;
    }
    return 0;
}
