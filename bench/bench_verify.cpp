// Verification overhead: off vs sampled vs full compile time on the Figure 9
// workload.
//
// Three passes over the 17-benchmark suite, one per verify level, each with a
// fresh compiler (empty caches) so every pass pays the same GRAPE cost and
// the delta is purely the audit work: stage-equivalence oracles, per-block
// synthesis checks, and pulse re-simulation. The claim this bench guards is
// twofold:
//
//   * `off` is free — the verifier is construction-time dead weight; and
//   * `sampled` is cheap enough to leave on (< 10% wall-clock over `off` on
//     this workload), which is why it is the recommended always-on tier.
//
// Each row also cross-checks the semantics the tests enforce: all three
// levels ship bit-identical schedules (digest equality — audits never perturb
// a clean compile), and no clean compile ever reports an audit failure.
//
// Usage: bench_verify
#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

int main() {
    using namespace epoc;

    core::EpocOptions base;
    base.latency.fidelity_threshold = 0.993;
    base.latency.grape.max_iterations = 150;
    base.qsearch.threshold = 1e-4;

    struct Row {
        std::string name;
        double ms[3] = {0.0, 0.0, 0.0}; // off, sampled, full
        std::uint64_t digest[3] = {0, 0, 0};
        std::size_t checks[3] = {0, 0, 0};
        std::size_t failed = 0; // summed across levels; must stay 0
    };
    const verify::VerifyLevel levels[3] = {verify::VerifyLevel::off,
                                           verify::VerifyLevel::sampled,
                                           verify::VerifyLevel::full};

    const std::vector<bench::NamedCircuit> suite = bench::figure_suite();
    std::vector<Row> rows(suite.size());

    std::printf("verification overhead: off vs sampled vs full (Fig. 9 suite)\n\n");
    for (int li = 0; li < 3; ++li) {
        core::EpocOptions opt = base;
        opt.verify_level = levels[li];
        core::EpocCompiler compiler(opt); // fresh caches per level: equal GRAPE cost
        for (std::size_t i = 0; i < suite.size(); ++i) {
            std::fprintf(stderr, "  %-7s %-10s...\n", verify::level_name(levels[li]),
                         suite[i].name.c_str());
            const core::EpocResult r = compiler.compile(suite[i].circuit);
            rows[i].name = suite[i].name;
            rows[i].ms[li] = r.compile_ms;
            rows[i].digest[li] = qoc::fnv1a64(core::schedule_to_json(r.schedule));
            rows[i].checks[li] = r.verify.checks;
            rows[i].failed += r.verify.failed + r.verify.revalidate_rejects;
        }
    }

    std::printf("%-10s %9s %12s %12s %8s %8s %10s\n", "circuit", "off[ms]",
                "sampled[ms]", "full[ms]", "ovh-smp", "ovh-full", "identical");
    double total[3] = {0.0, 0.0, 0.0};
    bool all_identical = true, all_clean = true;
    for (const Row& r : rows) {
        const bool same = r.digest[0] == r.digest[1] && r.digest[1] == r.digest[2];
        all_identical = all_identical && same;
        all_clean = all_clean && r.failed == 0;
        for (int li = 0; li < 3; ++li) total[li] += r.ms[li];
        const double base_ms = std::max(r.ms[0], 1e-9);
        std::printf("%-10s %9.0f %12.0f %12.0f %+7.1f%% %+7.1f%% %10s\n",
                    r.name.c_str(), r.ms[0], r.ms[1], r.ms[2],
                    (r.ms[1] / base_ms - 1.0) * 100.0,
                    (r.ms[2] / base_ms - 1.0) * 100.0, same ? "yes" : "NO");
    }
    const double base_total = std::max(total[0], 1e-9);
    const double sampled_overhead = (total[1] / base_total - 1.0) * 100.0;
    std::printf("\ntotal: off %.1fs, sampled %.1fs (%+.1f%%), full %.1fs (%+.1f%%); "
                "bit-identical: %s; clean: %s\n",
                total[0] / 1000.0, total[1] / 1000.0, sampled_overhead,
                total[2] / 1000.0, (total[2] / base_total - 1.0) * 100.0,
                all_identical ? "yes" : "NO", all_clean ? "yes" : "NO");
    std::printf("sampled-overhead-budget: %s (%.1f%% vs 10%% ceiling)\n",
                sampled_overhead < 10.0 ? "PASS" : "FAIL", sampled_overhead);
    return (all_identical && all_clean && sampled_overhead < 10.0) ? 0 : 1;
}
