// Shared harness for the Figure 8/9/10 benches: run the 17-benchmark suite
// through the EPOC pipeline with and without the regrouping step, once, and
// report rows. Each figure binary prints its own column of the same sweep.
//
// Passing `--trace <file>` to a figure binary (forwarded here through
// `trace_arg`) enables the tracer on both compiler arms and writes Chrome
// trace_event JSON covering the whole sweep: the grouped arm to <file>, the
// no-grouping arm to <file>.nogroup.json.
#pragma once

#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace epoc::benchharness {

struct SuiteRow {
    std::string name;
    core::EpocResult grouped;
    core::EpocResult ungrouped;
};

/// Extract the value of `--trace <file>` from argv; empty when absent.
inline std::string trace_arg(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
    return {};
}

inline core::EpocOptions suite_options(bool regroup, bool trace = false) {
    core::EpocOptions opt;
    opt.regroup_enabled = regroup;
    opt.trace_enabled = trace;
    opt.latency.fidelity_threshold = 0.993;
    opt.latency.grape.max_iterations = 150;
    opt.qsearch.threshold = 1e-4;
    return opt;
}

inline void write_trace(const core::EpocResult& r, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return;
    }
    out << r.trace.to_chrome_json();
    std::fprintf(stderr, "wrote Chrome trace (%zu spans, %zu counters) to %s\n",
                 r.trace.spans.size(), r.trace.counters.size(), path.c_str());
}

inline std::vector<SuiteRow> run_grouping_suite(const std::string& trace_path = {}) {
    const bool trace = !trace_path.empty();
    std::vector<SuiteRow> rows;
    // One compiler per arm: pulse libraries persist across circuits, exactly
    // like the paper's reusable pulse database. Traces accumulate the same
    // way, so the last row's report covers the whole sweep.
    core::EpocCompiler grouped(suite_options(true, trace));
    core::EpocCompiler ungrouped(suite_options(false, trace));
    for (const auto& [name, circuit] : bench::figure_suite()) {
        SuiteRow row;
        row.name = name;
        std::fprintf(stderr, "  compiling %-10s (grouped)...\n", name.c_str());
        row.grouped = grouped.compile(circuit);
        std::fprintf(stderr, "  compiling %-10s (no grouping)...\n", name.c_str());
        row.ungrouped = ungrouped.compile(circuit);
        rows.push_back(std::move(row));
    }
    if (trace && !rows.empty()) {
        write_trace(rows.back().grouped, trace_path);
        write_trace(rows.back().ungrouped, trace_path + ".nogroup.json");
    }
    return rows;
}

} // namespace epoc::benchharness
