// Shared harness for the Figure 8/9/10 benches: run the 17-benchmark suite
// through the EPOC pipeline with and without the regrouping step, once, and
// report rows. Each figure binary prints its own column of the same sweep.
#pragma once

#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>
#include <string>
#include <vector>

namespace epoc::benchharness {

struct SuiteRow {
    std::string name;
    core::EpocResult grouped;
    core::EpocResult ungrouped;
};

inline core::EpocOptions suite_options(bool regroup) {
    core::EpocOptions opt;
    opt.regroup_enabled = regroup;
    opt.latency.fidelity_threshold = 0.993;
    opt.latency.grape.max_iterations = 150;
    opt.qsearch.threshold = 1e-4;
    return opt;
}

inline std::vector<SuiteRow> run_grouping_suite() {
    std::vector<SuiteRow> rows;
    // One compiler per arm: pulse libraries persist across circuits, exactly
    // like the paper's reusable pulse database.
    core::EpocCompiler grouped(suite_options(true));
    core::EpocCompiler ungrouped(suite_options(false));
    for (const auto& [name, circuit] : bench::figure_suite()) {
        SuiteRow row;
        row.name = name;
        std::fprintf(stderr, "  compiling %-10s (grouped)...\n", name.c_str());
        row.grouped = grouped.compile(circuit);
        std::fprintf(stderr, "  compiling %-10s (no grouping)...\n", name.c_str());
        row.ungrouped = ungrouped.compile(circuit);
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace epoc::benchharness
