# Empty dependencies file for bench_ablation_phase_cache.
# This may be replaced when dependencies are built.
