file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regroup.dir/bench_ablation_regroup.cpp.o"
  "CMakeFiles/bench_ablation_regroup.dir/bench_ablation_regroup.cpp.o.d"
  "bench_ablation_regroup"
  "bench_ablation_regroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
