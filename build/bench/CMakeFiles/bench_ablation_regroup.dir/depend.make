# Empty dependencies file for bench_ablation_regroup.
# This may be replaced when dependencies are built.
