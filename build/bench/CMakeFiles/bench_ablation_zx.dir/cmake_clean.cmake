file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zx.dir/bench_ablation_zx.cpp.o"
  "CMakeFiles/bench_ablation_zx.dir/bench_ablation_zx.cpp.o.d"
  "bench_ablation_zx"
  "bench_ablation_zx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
