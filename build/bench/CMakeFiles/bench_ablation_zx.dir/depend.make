# Empty dependencies file for bench_ablation_zx.
# This may be replaced when dependencies are built.
