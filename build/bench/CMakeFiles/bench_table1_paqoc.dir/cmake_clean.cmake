file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_paqoc.dir/bench_table1_paqoc.cpp.o"
  "CMakeFiles/bench_table1_paqoc.dir/bench_table1_paqoc.cpp.o.d"
  "bench_table1_paqoc"
  "bench_table1_paqoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_paqoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
