# Empty compiler generated dependencies file for compare_compilers.
# This may be replaced when dependencies are built.
