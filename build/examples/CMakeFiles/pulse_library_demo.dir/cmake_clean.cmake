file(REMOVE_RECURSE
  "CMakeFiles/pulse_library_demo.dir/pulse_library_demo.cpp.o"
  "CMakeFiles/pulse_library_demo.dir/pulse_library_demo.cpp.o.d"
  "pulse_library_demo"
  "pulse_library_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_library_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
