# Empty dependencies file for pulse_library_demo.
# This may be replaced when dependencies are built.
