file(REMOVE_RECURSE
  "CMakeFiles/routed_compile.dir/routed_compile.cpp.o"
  "CMakeFiles/routed_compile.dir/routed_compile.cpp.o.d"
  "routed_compile"
  "routed_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routed_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
