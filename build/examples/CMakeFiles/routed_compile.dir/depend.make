# Empty dependencies file for routed_compile.
# This may be replaced when dependencies are built.
