
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/zx_optimizer_demo.cpp" "examples/CMakeFiles/zx_optimizer_demo.dir/zx_optimizer_demo.cpp.o" "gcc" "examples/CMakeFiles/zx_optimizer_demo.dir/zx_optimizer_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_bench_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_zx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_qoc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
