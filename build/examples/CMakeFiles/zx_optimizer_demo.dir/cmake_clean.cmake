file(REMOVE_RECURSE
  "CMakeFiles/zx_optimizer_demo.dir/zx_optimizer_demo.cpp.o"
  "CMakeFiles/zx_optimizer_demo.dir/zx_optimizer_demo.cpp.o.d"
  "zx_optimizer_demo"
  "zx_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zx_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
