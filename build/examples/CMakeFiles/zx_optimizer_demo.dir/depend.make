# Empty dependencies file for zx_optimizer_demo.
# This may be replaced when dependencies are built.
