
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_circuits/generators.cpp" "src/CMakeFiles/epoc_bench_circuits.dir/bench_circuits/generators.cpp.o" "gcc" "src/CMakeFiles/epoc_bench_circuits.dir/bench_circuits/generators.cpp.o.d"
  "/root/repo/src/bench_circuits/random_circuits.cpp" "src/CMakeFiles/epoc_bench_circuits.dir/bench_circuits/random_circuits.cpp.o" "gcc" "src/CMakeFiles/epoc_bench_circuits.dir/bench_circuits/random_circuits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
