file(REMOVE_RECURSE
  "CMakeFiles/epoc_bench_circuits.dir/bench_circuits/generators.cpp.o"
  "CMakeFiles/epoc_bench_circuits.dir/bench_circuits/generators.cpp.o.d"
  "CMakeFiles/epoc_bench_circuits.dir/bench_circuits/random_circuits.cpp.o"
  "CMakeFiles/epoc_bench_circuits.dir/bench_circuits/random_circuits.cpp.o.d"
  "libepoc_bench_circuits.a"
  "libepoc_bench_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
