file(REMOVE_RECURSE
  "libepoc_bench_circuits.a"
)
