# Empty dependencies file for epoc_bench_circuits.
# This may be replaced when dependencies are built.
