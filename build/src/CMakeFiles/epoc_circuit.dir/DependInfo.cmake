
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/dag.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/dag.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/dag.cpp.o.d"
  "/root/repo/src/circuit/decompose.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/decompose.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/decompose.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/peephole.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/peephole.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/peephole.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/qasm.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/qasm.cpp.o.d"
  "/root/repo/src/circuit/routing.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/routing.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/routing.cpp.o.d"
  "/root/repo/src/circuit/unitary.cpp" "src/CMakeFiles/epoc_circuit.dir/circuit/unitary.cpp.o" "gcc" "src/CMakeFiles/epoc_circuit.dir/circuit/unitary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
