file(REMOVE_RECURSE
  "CMakeFiles/epoc_circuit.dir/circuit/circuit.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/circuit.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/dag.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/dag.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/decompose.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/decompose.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/gate.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/gate.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/peephole.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/peephole.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/qasm.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/qasm.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/routing.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/routing.cpp.o.d"
  "CMakeFiles/epoc_circuit.dir/circuit/unitary.cpp.o"
  "CMakeFiles/epoc_circuit.dir/circuit/unitary.cpp.o.d"
  "libepoc_circuit.a"
  "libepoc_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
