file(REMOVE_RECURSE
  "libepoc_circuit.a"
)
