# Empty compiler generated dependencies file for epoc_circuit.
# This may be replaced when dependencies are built.
