
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epoc/baselines.cpp" "src/CMakeFiles/epoc_core.dir/epoc/baselines.cpp.o" "gcc" "src/CMakeFiles/epoc_core.dir/epoc/baselines.cpp.o.d"
  "/root/repo/src/epoc/export.cpp" "src/CMakeFiles/epoc_core.dir/epoc/export.cpp.o" "gcc" "src/CMakeFiles/epoc_core.dir/epoc/export.cpp.o.d"
  "/root/repo/src/epoc/pipeline.cpp" "src/CMakeFiles/epoc_core.dir/epoc/pipeline.cpp.o" "gcc" "src/CMakeFiles/epoc_core.dir/epoc/pipeline.cpp.o.d"
  "/root/repo/src/epoc/regroup.cpp" "src/CMakeFiles/epoc_core.dir/epoc/regroup.cpp.o" "gcc" "src/CMakeFiles/epoc_core.dir/epoc/regroup.cpp.o.d"
  "/root/repo/src/epoc/scheduler.cpp" "src/CMakeFiles/epoc_core.dir/epoc/scheduler.cpp.o" "gcc" "src/CMakeFiles/epoc_core.dir/epoc/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_zx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_qoc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
