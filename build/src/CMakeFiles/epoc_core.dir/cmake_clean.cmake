file(REMOVE_RECURSE
  "CMakeFiles/epoc_core.dir/epoc/baselines.cpp.o"
  "CMakeFiles/epoc_core.dir/epoc/baselines.cpp.o.d"
  "CMakeFiles/epoc_core.dir/epoc/export.cpp.o"
  "CMakeFiles/epoc_core.dir/epoc/export.cpp.o.d"
  "CMakeFiles/epoc_core.dir/epoc/pipeline.cpp.o"
  "CMakeFiles/epoc_core.dir/epoc/pipeline.cpp.o.d"
  "CMakeFiles/epoc_core.dir/epoc/regroup.cpp.o"
  "CMakeFiles/epoc_core.dir/epoc/regroup.cpp.o.d"
  "CMakeFiles/epoc_core.dir/epoc/scheduler.cpp.o"
  "CMakeFiles/epoc_core.dir/epoc/scheduler.cpp.o.d"
  "libepoc_core.a"
  "libepoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
