file(REMOVE_RECURSE
  "libepoc_core.a"
)
