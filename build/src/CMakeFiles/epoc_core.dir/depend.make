# Empty dependencies file for epoc_core.
# This may be replaced when dependencies are built.
