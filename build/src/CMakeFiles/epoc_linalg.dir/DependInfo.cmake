
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/eigen.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/eigen.cpp.o.d"
  "/root/repo/src/linalg/expm.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/expm.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/expm.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/phase.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/phase.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/phase.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/random_unitary.cpp" "src/CMakeFiles/epoc_linalg.dir/linalg/random_unitary.cpp.o" "gcc" "src/CMakeFiles/epoc_linalg.dir/linalg/random_unitary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
