file(REMOVE_RECURSE
  "CMakeFiles/epoc_linalg.dir/linalg/eigen.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/eigen.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/expm.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/expm.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/phase.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/phase.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/qr.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/qr.cpp.o.d"
  "CMakeFiles/epoc_linalg.dir/linalg/random_unitary.cpp.o"
  "CMakeFiles/epoc_linalg.dir/linalg/random_unitary.cpp.o.d"
  "libepoc_linalg.a"
  "libepoc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
