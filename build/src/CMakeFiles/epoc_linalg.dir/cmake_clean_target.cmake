file(REMOVE_RECURSE
  "libepoc_linalg.a"
)
