# Empty compiler generated dependencies file for epoc_linalg.
# This may be replaced when dependencies are built.
