file(REMOVE_RECURSE
  "CMakeFiles/epoc_opt.dir/opt/adam.cpp.o"
  "CMakeFiles/epoc_opt.dir/opt/adam.cpp.o.d"
  "CMakeFiles/epoc_opt.dir/opt/lbfgs.cpp.o"
  "CMakeFiles/epoc_opt.dir/opt/lbfgs.cpp.o.d"
  "libepoc_opt.a"
  "libepoc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
