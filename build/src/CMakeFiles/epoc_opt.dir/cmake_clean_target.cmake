file(REMOVE_RECURSE
  "libepoc_opt.a"
)
