# Empty dependencies file for epoc_opt.
# This may be replaced when dependencies are built.
