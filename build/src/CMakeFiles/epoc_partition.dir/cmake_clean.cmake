file(REMOVE_RECURSE
  "CMakeFiles/epoc_partition.dir/partition/partition.cpp.o"
  "CMakeFiles/epoc_partition.dir/partition/partition.cpp.o.d"
  "libepoc_partition.a"
  "libepoc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
