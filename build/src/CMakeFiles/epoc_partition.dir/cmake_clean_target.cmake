file(REMOVE_RECURSE
  "libepoc_partition.a"
)
