# Empty dependencies file for epoc_partition.
# This may be replaced when dependencies are built.
