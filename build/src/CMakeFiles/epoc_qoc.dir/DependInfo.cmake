
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qoc/crab.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/crab.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/crab.cpp.o.d"
  "/root/repo/src/qoc/decoherence.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/decoherence.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/decoherence.cpp.o.d"
  "/root/repo/src/qoc/grape.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/grape.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/grape.cpp.o.d"
  "/root/repo/src/qoc/hamiltonian.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/hamiltonian.cpp.o.d"
  "/root/repo/src/qoc/latency_search.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/latency_search.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/latency_search.cpp.o.d"
  "/root/repo/src/qoc/pulse_library.cpp" "src/CMakeFiles/epoc_qoc.dir/qoc/pulse_library.cpp.o" "gcc" "src/CMakeFiles/epoc_qoc.dir/qoc/pulse_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
