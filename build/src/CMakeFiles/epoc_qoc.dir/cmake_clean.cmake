file(REMOVE_RECURSE
  "CMakeFiles/epoc_qoc.dir/qoc/crab.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/crab.cpp.o.d"
  "CMakeFiles/epoc_qoc.dir/qoc/decoherence.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/decoherence.cpp.o.d"
  "CMakeFiles/epoc_qoc.dir/qoc/grape.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/grape.cpp.o.d"
  "CMakeFiles/epoc_qoc.dir/qoc/hamiltonian.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/hamiltonian.cpp.o.d"
  "CMakeFiles/epoc_qoc.dir/qoc/latency_search.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/latency_search.cpp.o.d"
  "CMakeFiles/epoc_qoc.dir/qoc/pulse_library.cpp.o"
  "CMakeFiles/epoc_qoc.dir/qoc/pulse_library.cpp.o.d"
  "libepoc_qoc.a"
  "libepoc_qoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_qoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
