file(REMOVE_RECURSE
  "libepoc_qoc.a"
)
