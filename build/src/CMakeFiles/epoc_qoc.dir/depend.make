# Empty dependencies file for epoc_qoc.
# This may be replaced when dependencies are built.
