file(REMOVE_RECURSE
  "CMakeFiles/epoc_synthesis.dir/synthesis/instantiate.cpp.o"
  "CMakeFiles/epoc_synthesis.dir/synthesis/instantiate.cpp.o.d"
  "CMakeFiles/epoc_synthesis.dir/synthesis/kak.cpp.o"
  "CMakeFiles/epoc_synthesis.dir/synthesis/kak.cpp.o.d"
  "CMakeFiles/epoc_synthesis.dir/synthesis/leap.cpp.o"
  "CMakeFiles/epoc_synthesis.dir/synthesis/leap.cpp.o.d"
  "CMakeFiles/epoc_synthesis.dir/synthesis/qsearch.cpp.o"
  "CMakeFiles/epoc_synthesis.dir/synthesis/qsearch.cpp.o.d"
  "CMakeFiles/epoc_synthesis.dir/synthesis/vug.cpp.o"
  "CMakeFiles/epoc_synthesis.dir/synthesis/vug.cpp.o.d"
  "libepoc_synthesis.a"
  "libepoc_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
