file(REMOVE_RECURSE
  "libepoc_synthesis.a"
)
