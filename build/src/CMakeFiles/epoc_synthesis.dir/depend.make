# Empty dependencies file for epoc_synthesis.
# This may be replaced when dependencies are built.
