
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zx/circuit_to_zx.cpp" "src/CMakeFiles/epoc_zx.dir/zx/circuit_to_zx.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/circuit_to_zx.cpp.o.d"
  "/root/repo/src/zx/extract.cpp" "src/CMakeFiles/epoc_zx.dir/zx/extract.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/extract.cpp.o.d"
  "/root/repo/src/zx/gf2.cpp" "src/CMakeFiles/epoc_zx.dir/zx/gf2.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/gf2.cpp.o.d"
  "/root/repo/src/zx/graph.cpp" "src/CMakeFiles/epoc_zx.dir/zx/graph.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/graph.cpp.o.d"
  "/root/repo/src/zx/optimize.cpp" "src/CMakeFiles/epoc_zx.dir/zx/optimize.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/optimize.cpp.o.d"
  "/root/repo/src/zx/simplify.cpp" "src/CMakeFiles/epoc_zx.dir/zx/simplify.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/simplify.cpp.o.d"
  "/root/repo/src/zx/tensor.cpp" "src/CMakeFiles/epoc_zx.dir/zx/tensor.cpp.o" "gcc" "src/CMakeFiles/epoc_zx.dir/zx/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epoc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/epoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
