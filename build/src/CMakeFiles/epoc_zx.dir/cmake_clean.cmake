file(REMOVE_RECURSE
  "CMakeFiles/epoc_zx.dir/zx/circuit_to_zx.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/circuit_to_zx.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/extract.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/extract.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/gf2.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/gf2.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/graph.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/graph.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/optimize.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/optimize.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/simplify.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/simplify.cpp.o.d"
  "CMakeFiles/epoc_zx.dir/zx/tensor.cpp.o"
  "CMakeFiles/epoc_zx.dir/zx/tensor.cpp.o.d"
  "libepoc_zx.a"
  "libepoc_zx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoc_zx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
