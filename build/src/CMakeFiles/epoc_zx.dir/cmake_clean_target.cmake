file(REMOVE_RECURSE
  "libepoc_zx.a"
)
