# Empty dependencies file for epoc_zx.
# This may be replaced when dependencies are built.
