file(REMOVE_RECURSE
  "CMakeFiles/test_crab.dir/test_crab.cpp.o"
  "CMakeFiles/test_crab.dir/test_crab.cpp.o.d"
  "test_crab"
  "test_crab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
