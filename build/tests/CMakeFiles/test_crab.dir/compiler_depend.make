# Empty compiler generated dependencies file for test_crab.
# This may be replaced when dependencies are built.
