file(REMOVE_RECURSE
  "CMakeFiles/test_kak.dir/test_kak.cpp.o"
  "CMakeFiles/test_kak.dir/test_kak.cpp.o.d"
  "test_kak"
  "test_kak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
