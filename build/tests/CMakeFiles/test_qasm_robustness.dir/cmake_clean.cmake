file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_robustness.dir/test_qasm_robustness.cpp.o"
  "CMakeFiles/test_qasm_robustness.dir/test_qasm_robustness.cpp.o.d"
  "test_qasm_robustness"
  "test_qasm_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
