# Empty compiler generated dependencies file for test_qasm_robustness.
# This may be replaced when dependencies are built.
