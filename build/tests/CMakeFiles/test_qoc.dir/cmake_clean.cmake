file(REMOVE_RECURSE
  "CMakeFiles/test_qoc.dir/test_qoc.cpp.o"
  "CMakeFiles/test_qoc.dir/test_qoc.cpp.o.d"
  "test_qoc"
  "test_qoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
