# Empty compiler generated dependencies file for test_qoc.
# This may be replaced when dependencies are built.
