file(REMOVE_RECURSE
  "CMakeFiles/test_zx.dir/test_zx.cpp.o"
  "CMakeFiles/test_zx.dir/test_zx.cpp.o.d"
  "test_zx"
  "test_zx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
