# Empty compiler generated dependencies file for test_zx.
# This may be replaced when dependencies are built.
