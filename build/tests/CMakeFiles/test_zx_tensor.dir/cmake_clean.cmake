file(REMOVE_RECURSE
  "CMakeFiles/test_zx_tensor.dir/test_zx_tensor.cpp.o"
  "CMakeFiles/test_zx_tensor.dir/test_zx_tensor.cpp.o.d"
  "test_zx_tensor"
  "test_zx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
