// Compare the four pulse-generation flows on one program: traditional
// gate-based, AccQOC-like, PAQOC-like, and EPOC. The ordering of the latency
// column is the paper's headline result in miniature.
//
// Usage: compare_compilers [--trace out.json] [--deadline-ms N]
//   --trace enables the EPOC compiler's tracer and writes a Chrome
//   trace_event file (load it in chrome://tracing or https://ui.perfetto.dev)
//   with one slice per pipeline stage and per-block synthesis/GRAPE region,
//   plus cache hit/miss counters. A flat text digest is printed to stderr.
//   --deadline-ms bounds the EPOC compile's wall clock: on expiry the
//   degradation ladder ships the best schedule the budget allowed and the
//   row is marked "degraded". EPOC_FAULT_INJECT (see util/fault_injection.h)
//   is honoured, so this binary doubles as a chaos-testing harness.
//   --store DIR attaches the persistent pulse store (store/pulse_store.h) to
//   the EPOC compiler and prints its hit/miss/write counters plus a schedule
//   digest (FNV-1a of the JSON export). Run the binary twice against one
//   directory: the second run reports zero GRAPE runs and the identical
//   digest — the bit-identity check CI scripts against.
//   --verify LEVEL (off|sampled|full) enables independent output auditing
//   (src/verify/verify.h) on the EPOC compile and prints a `verify:` summary
//   line plus the schedule digest. A clean full-verify run reports zero
//   failures and the same digest as a --verify off run.
//   --corrupt-store-entries rewrites every existing store entry with zeroed
//   amplitudes but intact checksums (the post-checksum corruption only
//   re-simulation can catch) *before* compiling. Against a warm directory
//   with --verify=full, CI asserts detection (rejected/invalidated > 0) and
//   digest equality with the clean run.
//   --sweep replaces the one-shot comparison with the variational demo: a
//   QAOA angle sweep compiled incrementally through the plan cache. Prints
//   grep-friendly `sweep-*` lines — plan hits on every iteration after the
//   first, bit-identical schedules vs per-iteration fresh cold compiles
//   (warm start off), and the warm-vs-cold total GRAPE iteration counts —
//   the assertions the CI variational job scripts against.
//   --backend NAME targets a hardware backend from the built-in registry
//   (linear-5, ring-8, grid-3x3, heavy-hex-7, full-N): the EPOC compile
//   becomes topology-aware — partitions respect the coupling map, bridging
//   gates route along shortest paths, and every pulse comes from that
//   backend's edge-resolved Hamiltonians (so its library/store entries never
//   collide with another backend's).
#include "backend/backend.h"
#include "bench_circuits/generators.h"
#include "epoc/baselines.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

namespace {

/// The --sweep variational demo: one QAOA structure, `iters` angle updates,
/// compiled incrementally. Returns non-zero when any sweep contract breaks.
int run_sweep() {
    using namespace epoc;
    constexpr int kIters = 8;
    const auto qaoa = [](int i) {
        const double gamma = 0.8 + 0.002 * i;
        const double beta = 0.4 - 0.001 * i;
        circuit::Circuit c(2);
        c.h(0).h(1);
        c.rzz(gamma, 0, 1);
        c.rx(beta, 0).rx(beta, 1);
        return c;
    };
    core::EpocOptions base;
    base.latency.fidelity_threshold = 0.99;
    base.latency.grape.max_iterations = 120;
    base.qsearch.threshold = 1e-4;
    base.qsearch.instantiate.restarts = 2;
    base.plan_cache = true;

    // Reproducible mode: warm start off, every plan hit checked bit-identical
    // against a fresh cold compile at the same angles.
    core::EpocOptions ropt = base;
    ropt.plan_warm_start = false;
    core::EpocCompiler planned(ropt);
    int hits = 0;
    bool digests_equal = true;
    std::uint64_t last_digest = 0;
    for (int i = 0; i < kIters; ++i) {
        const core::EpocResult r = planned.compile(qaoa(i));
        if (r.plan_hit) ++hits;
        core::EpocCompiler fresh(ropt);
        const core::EpocResult cold = fresh.compile(qaoa(i));
        last_digest = qoc::fnv1a64(core::schedule_to_json(r.schedule));
        digests_equal = digests_equal &&
                        last_digest == qoc::fnv1a64(core::schedule_to_json(cold.schedule));
    }

    // Warm-vs-cold GRAPE work for the same sweep (counters accumulate across
    // compiles, so the final report totals the run).
    std::uint64_t grape_iters[2] = {0, 0};
    for (const bool warm : {false, true}) {
        core::EpocOptions wopt = base;
        wopt.plan_warm_start = warm;
        wopt.trace_enabled = true;
        core::EpocCompiler compiler(wopt);
        for (int i = 0; i < kIters; ++i)
            grape_iters[warm ? 1 : 0] =
                compiler.compile(qaoa(i)).trace.counter("qoc.grape_iterations");
    }

    std::printf("sweep-iterations: %d\n", kIters);
    std::printf("sweep-plan-hits: %d/%d\n", hits, kIters - 1);
    std::printf("sweep-digest-equal: %d\n", digests_equal ? 1 : 0);
    std::printf("sweep-grape-iterations: warm=%llu cold=%llu\n",
                static_cast<unsigned long long>(grape_iters[1]),
                static_cast<unsigned long long>(grape_iters[0]));
    std::printf("sweep-warm-reduced: %d\n", grape_iters[1] < grape_iters[0] ? 1 : 0);
    std::printf("schedule-digest: %016llx\n",
                static_cast<unsigned long long>(last_digest));
    return (hits == kIters - 1 && digests_equal && grape_iters[1] < grape_iters[0])
               ? 0
               : 1;
}

} // namespace

int main(int argc, char** argv) {
    using namespace epoc;
    std::string trace_path;
    std::string store_dir;
    std::vector<std::string> pack_dirs;
    std::string backend_name;
    double deadline_ms = 0.0;
    verify::VerifyLevel verify_level = verify::VerifyLevel::unset;
    bool corrupt_store = false;
    bool sweep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
            deadline_ms = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
            store_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--packs") == 0 && i + 1 < argc) {
            // Colon-separated read-only pack directories, probed in order
            // behind the local store tier (same syntax as EPOC_PULSE_PACKS).
            const std::string spec = argv[++i];
            std::size_t begin = 0;
            while (begin <= spec.size()) {
                const std::size_t end = spec.find(':', begin);
                const std::string dir = spec.substr(
                    begin, end == std::string::npos ? end : end - begin);
                if (!dir.empty()) pack_dirs.push_back(dir);
                if (end == std::string::npos) break;
                begin = end + 1;
            }
        } else if (std::strcmp(argv[i], "--verify") == 0 && i + 1 < argc) {
            try {
                verify_level = verify::level_from_name(argv[++i]);
            } catch (const std::invalid_argument&) {
                std::fprintf(stderr, "--verify wants off|sampled|full, got %s\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--corrupt-store-entries") == 0) {
            corrupt_store = true;
        } else if (std::strcmp(argv[i], "--sweep") == 0) {
            sweep = true;
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend_name = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace out.json] [--deadline-ms N] [--store DIR] "
                         "[--packs DIR[:DIR...]] [--verify off|sampled|full] "
                         "[--corrupt-store-entries] [--sweep] [--backend NAME]\n",
                         argv[0]);
            return 2;
        }
    }
    std::shared_ptr<const backend::Backend> be;
    if (!backend_name.empty()) {
        backend::BackendRegistry registry;
        be = registry.find(backend_name);
        if (be == nullptr) {
            std::fprintf(stderr, "unknown backend '%s'; built-ins:",
                         backend_name.c_str());
            for (const std::string& n : registry.names())
                std::fprintf(stderr, " %s", n.c_str());
            std::fprintf(stderr, " full-N\n");
            return 2;
        }
    }
    if (corrupt_store && store_dir.empty()) {
        std::fprintf(stderr, "--corrupt-store-entries requires --store DIR\n");
        return 2;
    }
    util::fault::configure_from_env();
    if (sweep) return run_sweep();

    const circuit::Circuit c = bench::simon(2);
    std::printf("program: simon (%d qubits, %zu gates, depth %d)\n\n", c.num_qubits(),
                c.size(), c.depth());

    core::GateBasedCompiler gate;
    const core::EpocResult rg = gate.compile(c);

    core::AccqocOptions aopt;
    core::AccqocLikeCompiler accqoc(aopt);
    const core::EpocResult ra = accqoc.compile(c);

    core::PaqocLikeCompiler paqoc;
    const core::EpocResult rp = paqoc.compile(c);

    core::EpocOptions eopt;
    eopt.regroup_opt.max_qubits = 4;
    // The store line reports GRAPE-run counts, which come from the tracer.
    eopt.trace_enabled = !trace_path.empty() || !store_dir.empty();
    eopt.deadline_ms = deadline_ms;
    eopt.pulse_store_dir = store_dir;
    eopt.pulse_pack_dirs = pack_dirs;
    eopt.verify_level = verify_level;
    eopt.backend = be;
    if (be != nullptr)
        std::printf("backend: %s (%d qubits, %zu edges)\n\n", be->name.c_str(),
                    be->coupling.num_qubits(), be->coupling.edges().size());
    core::EpocCompiler epoc_compiler(eopt);
    if (corrupt_store && epoc_compiler.store() != nullptr) {
        const std::size_t n = epoc_compiler.store()->corrupt_all_entries_for_test();
        std::fprintf(stderr, "corrupted %zu store entries (post-checksum)\n", n);
    }
    const core::EpocResult re = epoc_compiler.compile(c);
    if (re.degraded) {
        std::size_t fallbacks = 0;
        for (const core::BlockReport& br : re.block_reports)
            if (!br.status.ok()) ++fallbacks;
        std::fprintf(stderr,
                     "epoc: degraded compile (%s; %zu/%zu blocks fell back%s)\n",
                     re.status.to_string().c_str(), fallbacks,
                     re.block_reports.size(), re.deadline_hit ? "; deadline hit" : "");
    }

    std::printf("%-12s %12s %10s %8s %12s\n", "flow", "latency[ns]", "fidelity",
                "pulses", "compile[ms]");
    const auto row = [](const char* name, const core::EpocResult& r) {
        std::printf("%-12s %12.1f %10.4f %8zu %12.0f\n", name, r.latency_ns, r.esp,
                    r.num_pulses, r.compile_ms);
    };
    row("gate-based", rg);
    row("accqoc-like", ra);
    row("paqoc-like", rp);
    row("epoc", re);

    std::printf("\nEPOC latency vs gate-based: %+.1f%%   vs PAQOC-like: %+.1f%%\n",
                100.0 * (re.latency_ns - rg.latency_ns) / rg.latency_ns,
                100.0 * (re.latency_ns - rp.latency_ns) / rp.latency_ns);

    if (re.store_enabled) {
        const auto& ss = re.store_stats;
        std::printf("store: hits=%zu misses=%zu writes=%zu corrupt=%zu evicted=%zu "
                    "invalidated=%zu rejected=%zu bytes=%llu grape_runs=%llu\n",
                    ss.hits, ss.misses, ss.writes, ss.corrupt, ss.evicted,
                    ss.invalidated, re.library_stats.store_rejected,
                    static_cast<unsigned long long>(ss.bytes),
                    static_cast<unsigned long long>(
                        re.trace.counter("qoc.grape_runs")));
        // Pack-tier line (grep-friendly; the cold-start-with-pack CI job
        // asserts pack_hits > 0 and suspect/denied behaviour on this line).
        std::printf("packs: open=%zu entries=%zu pack_hits=%zu denied=%zu "
                    "corrupt=%zu suspect=%zu quarantine_evicted=%zu "
                    "pack_revalidations=%zu\n",
                    ss.packs_open, ss.pack_entries, ss.pack_hits, ss.pack_denied,
                    ss.pack_corrupt, ss.pack_suspect, ss.quarantine_evicted,
                    re.verify.pack_revalidations);
    }

    if (re.verify.level >= verify::VerifyLevel::sampled) {
        // One grep-friendly line per run — the CI jobs assert on these fields.
        std::printf("verify: level=%s checks=%zu passed=%zu failed=%zu unverified=%zu "
                    "skipped=%zu revalidations=%zu rejects=%zu recomputes=%zu "
                    "budget=%.3e clean=%s\n",
                    verify::level_name(re.verify.level), re.verify.checks,
                    re.verify.passed, re.verify.failed, re.verify.unverified,
                    re.verify.skipped, re.verify.revalidations,
                    re.verify.revalidate_rejects, re.verify.recomputes,
                    re.verify.error_budget, re.verify.clean() ? "yes" : "no");
    }

    if (re.store_enabled || re.verify.level >= verify::VerifyLevel::sampled) {
        // Digest of the full JSON schedule: equal digests <=> bit-identical
        // schedules — the contract a warm (or audited, or corrupted-then-
        // recomputed) run must uphold against the clean run.
        std::printf("schedule-digest: %016llx\n",
                    static_cast<unsigned long long>(
                        qoc::fnv1a64(core::schedule_to_json(re.schedule))));
    }

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
            return 1;
        }
        out << re.trace.to_chrome_json();
        std::fprintf(stderr, "\nwrote Chrome trace (%zu spans, %zu counters) to %s\n",
                     re.trace.spans.size(), re.trace.counters.size(),
                     trace_path.c_str());
        std::fputs(re.trace.summary().c_str(), stderr);
    }
    return 0;
}
