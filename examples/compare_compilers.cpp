// Compare the four pulse-generation flows on one program: traditional
// gate-based, AccQOC-like, PAQOC-like, and EPOC. The ordering of the latency
// column is the paper's headline result in miniature.
#include "bench_circuits/generators.h"
#include "epoc/baselines.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main() {
    using namespace epoc;
    const circuit::Circuit c = bench::simon(2);
    std::printf("program: simon (%d qubits, %zu gates, depth %d)\n\n", c.num_qubits(),
                c.size(), c.depth());

    core::GateBasedCompiler gate;
    const core::EpocResult rg = gate.compile(c);

    core::AccqocOptions aopt;
    core::AccqocLikeCompiler accqoc(aopt);
    const core::EpocResult ra = accqoc.compile(c);

    core::PaqocLikeCompiler paqoc;
    const core::EpocResult rp = paqoc.compile(c);

    core::EpocOptions eopt;
    eopt.regroup_opt.max_qubits = 4;
    core::EpocCompiler epoc_compiler(eopt);
    const core::EpocResult re = epoc_compiler.compile(c);

    std::printf("%-12s %12s %10s %8s %12s\n", "flow", "latency[ns]", "fidelity",
                "pulses", "compile[ms]");
    const auto row = [](const char* name, const core::EpocResult& r) {
        std::printf("%-12s %12.1f %10.4f %8zu %12.0f\n", name, r.latency_ns, r.esp,
                    r.num_pulses, r.compile_ms);
    };
    row("gate-based", rg);
    row("accqoc-like", ra);
    row("paqoc-like", rp);
    row("epoc", re);

    std::printf("\nEPOC latency vs gate-based: %+.1f%%   vs PAQOC-like: %+.1f%%\n",
                100.0 * (re.latency_ns - rg.latency_ns) / rg.latency_ns,
                100.0 * (re.latency_ns - rp.latency_ns) / rp.latency_ns);
    return 0;
}
