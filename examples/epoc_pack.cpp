// epoc_pack: build, inspect, verify, merge and unpack immutable pulse-pack
// segments (store/pack.h) — the tooling side of shipping a warm library.
//
// The workflow: run any compiler with --store DIR until the store is warm,
// `epoc_pack create DIR lib.pack` to fold the loose entries into one
// artifact, `epoc_pack verify lib.pack` as the ingest gate, then mount the
// pack's directory on other machines via EPOC_PULSE_PACKS / --packs /
// epocd --pack-dir. Fleets with several warm stores `merge` them (first pack
// wins on duplicate keys, matching the store's probe order).
//
// Usage:
//   epoc_pack create <store-dir> <out.pack>   fold a store's loose entries
//   epoc_pack list <pack>                     index + per-entry summary
//   epoc_pack verify <pack>                   deep integrity check (exit 1 on
//                                             any damage)
//   epoc_pack merge <out.pack> <in.pack>...   combine packs, first-wins dedup
//   epoc_pack extract <pack> <store-dir>      unpack into loose entries
//   epoc_pack corrupt-for-test <pack>         flip a payload byte in every
//                                             entry, in place (tests/CI only:
//                                             proves quarantine + recompute)
//
// Every subcommand validates what it reads — `create` skips unparseable
// loose entries (reporting them), `merge`/`extract` refuse packs whose
// entries fail integrity — so a pack built here always passes `verify`.
#include "store/pack.h"
#include "store/pulse_store.h"

#include "qoc/pulse_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;
using epoc::store::PackEntry;
using epoc::store::PackReader;

int usage() {
    std::fprintf(stderr,
                 "usage: epoc_pack create <store-dir> <out.pack>\n"
                 "       epoc_pack list <pack>\n"
                 "       epoc_pack verify <pack>\n"
                 "       epoc_pack merge <out.pack> <in.pack>...\n"
                 "       epoc_pack extract <pack> <store-dir>\n"
                 "       epoc_pack corrupt-for-test <pack>\n");
    return 2;
}

std::shared_ptr<PackReader> open_or_die(const std::string& path) {
    std::string error;
    std::shared_ptr<PackReader> pack = PackReader::open(path, &error);
    if (pack == nullptr)
        std::fprintf(stderr, "epoc_pack: cannot open %s: %s\n", path.c_str(),
                     error.c_str());
    return pack;
}

bool publish(const std::string& out, std::vector<PackEntry> entries) {
    std::string error;
    if (!epoc::store::write_pack(out, std::move(entries), &error)) {
        std::fprintf(stderr, "epoc_pack: cannot write %s: %s\n", out.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

int cmd_create(const std::string& store_dir, const std::string& out) {
    std::error_code ec;
    if (!fs::is_directory(store_dir, ec)) {
        std::fprintf(stderr, "epoc_pack: %s is not a directory\n", store_dir.c_str());
        return 1;
    }
    // Deterministic artifact: same store contents -> same pack bytes, so
    // digests of shipped libraries are comparable across builders.
    std::vector<fs::path> files;
    for (fs::directory_iterator it(store_dir, ec), end; !ec && it != end;
         it.increment(ec))
        if (it->is_regular_file() && it->path().extension() == ".pulse")
            files.push_back(it->path());
    std::sort(files.begin(), files.end());
    std::vector<PackEntry> entries;
    std::size_t skipped = 0;
    for (const fs::path& p : files) {
        if (std::optional<PackEntry> e = epoc::store::PulseStore::read_entry_file(p))
            entries.push_back(std::move(*e));
        else
            ++skipped; // damaged or foreign-version entry: report, don't ship
    }
    if (skipped > 0)
        std::fprintf(stderr, "epoc_pack: skipped %zu unparseable entries\n", skipped);
    if (entries.empty()) {
        std::fprintf(stderr, "epoc_pack: no valid entries in %s\n", store_dir.c_str());
        return 1;
    }
    const std::size_t count = entries.size();
    if (!publish(out, std::move(entries))) return 1;
    std::printf("packed %zu entries into %s\n", count, out.c_str());
    return 0;
}

int cmd_list(const std::string& path) {
    std::shared_ptr<PackReader> pack = open_or_die(path);
    if (pack == nullptr) return 1;
    std::printf("%s: %zu entries, %zu bytes, %s\n", path.c_str(),
                pack->entry_count(), pack->size_bytes(),
                pack->mapped() ? "mmap" : "buffered");
    if (const std::optional<std::uint64_t> ck = epoc::qoc::fnv1a64_file(path))
        std::printf("file-checksum: %016llx\n",
                    static_cast<unsigned long long>(*ck));
    const bool clean = pack->for_each([](const std::string& key,
                                         const std::string& payload) {
        std::printf("  %016llx  payload=%zu  key=%.60s%s\n",
                    static_cast<unsigned long long>(epoc::qoc::fnv1a64(key)),
                    payload.size(), key.c_str(), key.size() > 60 ? "..." : "");
        return true;
    });
    if (!clean) {
        std::fprintf(stderr, "epoc_pack: entry integrity failure in %s\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

int cmd_verify(const std::string& path) {
    std::shared_ptr<PackReader> pack = open_or_die(path);
    if (pack == nullptr) return 1;
    std::string error;
    if (!pack->deep_verify(&error)) {
        std::fprintf(stderr, "epoc_pack: %s FAILED verification: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("%s: OK (%zu entries)\n", path.c_str(), pack->entry_count());
    return 0;
}

int cmd_merge(const std::string& out, const std::vector<std::string>& inputs) {
    // First-wins on duplicate keys, in argument order — the same precedence
    // the store's probe order gives a pack listed first. write_pack dedups;
    // we only concatenate in order here.
    std::vector<PackEntry> entries;
    for (const std::string& in : inputs) {
        std::shared_ptr<PackReader> pack = open_or_die(in);
        if (pack == nullptr) return 1;
        const bool clean =
            pack->for_each([&](const std::string& key, const std::string& payload) {
                entries.push_back(PackEntry{key, payload});
                return true;
            });
        if (!clean) {
            std::fprintf(stderr, "epoc_pack: entry integrity failure in %s\n",
                         in.c_str());
            return 1;
        }
    }
    const std::size_t total = entries.size();
    if (!publish(out, std::move(entries))) return 1;
    std::shared_ptr<PackReader> merged = open_or_die(out);
    if (merged == nullptr) return 1;
    std::printf("merged %zu inputs (%zu entries, %zu after dedup) into %s\n",
                inputs.size(), total, merged->entry_count(), out.c_str());
    return 0;
}

int cmd_extract(const std::string& path, const std::string& store_dir) {
    std::shared_ptr<PackReader> pack = open_or_die(path);
    if (pack == nullptr) return 1;
    // Publish through a real PulseStore so extraction inherits the atomic
    // rename discipline and the extracted dir is immediately a valid store.
    epoc::store::PulseStoreOptions sopt;
    sopt.dir = store_dir;
    sopt.max_bytes = 0; // tooling must not evict what it just extracted
    std::unique_ptr<epoc::store::PulseStore> store;
    try {
        store = std::make_unique<epoc::store::PulseStore>(std::move(sopt));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "epoc_pack: %s\n", e.what());
        return 1;
    }
    std::size_t extracted = 0, undecodable = 0;
    const bool clean =
        pack->for_each([&](const std::string& key, const std::string& payload) {
            if (const std::optional<epoc::qoc::LatencyResult> r =
                    epoc::qoc::decode_latency_result(payload)) {
                store->store(key, *r);
                ++extracted;
            } else {
                ++undecodable;
            }
            return true;
        });
    if (!clean) {
        std::fprintf(stderr, "epoc_pack: entry integrity failure in %s\n",
                     path.c_str());
        return 1;
    }
    if (undecodable > 0)
        std::fprintf(stderr, "epoc_pack: %zu entries did not decode\n", undecodable);
    const auto ss = store->stats();
    if (ss.writes != extracted) {
        std::fprintf(stderr, "epoc_pack: only %zu of %zu entries written\n",
                     ss.writes, extracted);
        return 1;
    }
    std::printf("extracted %zu entries into %s\n", extracted, store_dir.c_str());
    return 0;
}

int cmd_corrupt_for_test(const std::string& path) {
    // Doctor the pack the way CI needs: flip one payload byte in EVERY entry
    // without touching lengths or re-checksumming. The file still *opens*
    // (header and index are untouched), so whichever entry a compile probes
    // first trips the per-entry checksum -> suspect -> quarantine ->
    // recompute, regardless of probe order.
    std::shared_ptr<PackReader> pack = open_or_die(path);
    if (pack == nullptr) return 1;
    struct Target {
        std::uint64_t offset; // absolute file offset of the byte to flip
    };
    std::vector<Target> targets;
    std::uint64_t cursor = 8 + 4 + 8 + 8; // header size; records follow
    const bool clean =
        pack->for_each([&](const std::string& key, const std::string& payload) {
            // Record layout: key_len u64, key, payload_len u64, payload, ck.
            const std::uint64_t payload_at = cursor + 8 + key.size() + 8;
            if (!payload.empty()) targets.push_back(Target{payload_at});
            cursor = payload_at + payload.size() + 8;
            return true;
        });
    if (!clean) {
        std::fprintf(stderr, "epoc_pack: %s is already damaged\n", path.c_str());
        return 1;
    }
    pack.reset(); // drop the mapping before writing in place
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "epoc_pack: cannot reopen %s for writing\n",
                     path.c_str());
        return 1;
    }
    for (const Target& t : targets) {
        f.seekg(static_cast<std::streamoff>(t.offset));
        char b;
        if (!f.read(&b, 1)) break;
        b = static_cast<char>(b ^ 0x5a);
        f.seekp(static_cast<std::streamoff>(t.offset));
        if (!f.write(&b, 1)) break;
    }
    f.flush();
    if (!f) {
        std::fprintf(stderr, "epoc_pack: write failure doctoring %s\n", path.c_str());
        return 1;
    }
    std::printf("doctored %zu entries in %s (payload byte flipped, checksums "
                "left stale)\n",
                targets.size(), path.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "create" && argc == 4) return cmd_create(argv[2], argv[3]);
    if (cmd == "list" && argc == 3) return cmd_list(argv[2]);
    if (cmd == "verify" && argc == 3) return cmd_verify(argv[2]);
    if (cmd == "merge" && argc >= 4)
        return cmd_merge(argv[2], std::vector<std::string>(argv + 3, argv + argc));
    if (cmd == "extract" && argc == 4) return cmd_extract(argv[2], argv[3]);
    if (cmd == "corrupt-for-test" && argc == 3) return cmd_corrupt_for_test(argv[2]);
    return usage();
}
