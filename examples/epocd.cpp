// epocd: the EPOC compile-service daemon.
//
// Starts a long-running compile service on a local (AF_UNIX) socket and
// serves jobs from any number of epocd_client processes until one of them
// sends a shutdown request — or the process receives SIGTERM/SIGINT, which
// triggers the same graceful drain: stop admitting, answer queued jobs as
// cancelled, flush responses to connected clients, exit 0. All clients share
// one compiler — one pulse library, synthesis cache and plan cache — so
// identical blocks from different clients are GRAPE'd exactly once (the
// status endpoint's qoc.library_misses counts unique work, not requests).
//
// Usage: epocd --socket PATH [options]
//   --socket PATH       listening socket path (default /tmp/epocd.sock)
//   --executors N       concurrent compile jobs (default 2)
//   --threads N         compiler worker threads per job batch (default 0 =
//                       hardware concurrency)
//   --max-pending N     admission bound on queued+running jobs (default 256)
//   --store DIR         attach the persistent pulse store
//   --pack-dir DIR      layer a read-only shared pack directory (immutable
//                       *.pack warm-library segments) behind the store
//                       (repeatable, probed in order; requires --store or
//                       EPOC_PULSE_STORE); hit rates appear in the status
//                       endpoint as store.pack.* counters
//   --drain-ms MS       shutdown drain budget: how long stop() waits for
//                       executors to answer the queue (default 10000)
//   --fast              cheap search settings (CI/smoke: same flag on the
//                       client keeps library-mode digests comparable)
//   --backend-json FILE register a custom hardware backend from a JSON file
//                       (repeatable) on top of the built-in registry; jobs
//                       name it via the client's --backend flag
//
// Exits 0 on a clean shutdown (client-requested or signal-driven); prints
// the final counter snapshot on the way out.
#include "service/daemon.h"

#include "backend/backend.h"
#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

namespace {

void apply_fast_options(epoc::core::EpocOptions& opt) {
    // Must match epocd_client's --fast exactly: digest comparisons between
    // daemon compiles and the client's local library-mode compiles are only
    // meaningful when both compilers run the same search configuration.
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
}

// Signal handlers may only touch lock-free state: set the flag, return, and
// let the main loop (which polls between bounded waits) drive the drain.
std::atomic<int> g_signal{0};

extern "C" void on_signal(int sig) { g_signal.store(sig); }

} // namespace

int main(int argc, char** argv) {
    epoc::service::DaemonOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            opt.socket_path = argv[++i];
        } else if (arg == "--executors" && has_value) {
            opt.num_executors = std::atoi(argv[++i]);
        } else if (arg == "--threads" && has_value) {
            opt.compiler.num_threads = std::atoi(argv[++i]);
        } else if (arg == "--max-pending" && has_value) {
            opt.admission.max_pending =
                static_cast<std::size_t>(std::atol(argv[++i]));
        } else if (arg == "--store" && has_value) {
            opt.compiler.pulse_store_dir = argv[++i];
        } else if (arg == "--pack-dir" && has_value) {
            opt.compiler.pulse_pack_dirs.push_back(argv[++i]);
        } else if (arg == "--drain-ms" && has_value) {
            opt.drain_ms = std::atof(argv[++i]);
        } else if (arg == "--fast") {
            apply_fast_options(opt.compiler);
        } else if (arg == "--backend-json" && has_value) {
            const char* path = argv[++i];
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "epocd: cannot read backend file %s\n", path);
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            if (opt.backends == nullptr)
                opt.backends = std::make_shared<epoc::backend::BackendRegistry>();
            try {
                const auto be = opt.backends->register_json(text.str());
                std::printf("epocd: registered backend '%s' (%d qubits)\n",
                            be->name.c_str(), be->coupling.num_qubits());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "epocd: bad backend file %s: %s\n", path,
                             e.what());
                return 2;
            }
        } else {
            std::fprintf(stderr, "epocd: unknown or incomplete option: %s\n",
                         arg.c_str());
            return 2;
        }
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    // Chaos hook: EPOC_FAULT_INJECT arms transport/store fault sites (the
    // chaos-soak CI job runs the daemon with service.* sites at a few
    // percent and still demands bit-identical digests from retrying clients).
    epoc::util::fault::configure_from_env();

    try {
        epoc::service::EpocDaemon daemon(opt);
        daemon.start();
        std::printf("epocd: listening on %s (executors=%d)\n",
                    daemon.socket_path().c_str(), opt.num_executors);
        std::fflush(stdout);
        // Serve until a client's shutdown request or a signal. The bounded
        // wait is the polling point the async-signal-safety rule forces:
        // the handler only sets g_signal, this loop notices within ~100ms.
        while (!daemon.wait_for(100.0)) {
            if (g_signal.load() != 0) break;
        }
        const int sig = g_signal.load();
        if (sig != 0)
            std::printf("epocd: caught signal %d, draining\n", sig);
        else
            std::printf("epocd: shutdown requested, draining\n");
        std::fflush(stdout);
        const auto t0 = std::chrono::steady_clock::now();
        daemon.stop();
        const double drain_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::printf("epocd: drained in %.0f ms\n", drain_ms);
        for (const auto& [key, value] : daemon.status().counters)
            std::printf("epocd: %s = %llu\n", key.c_str(),
                        static_cast<unsigned long long>(value));
        std::printf("epocd: clean exit\n");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "epocd: fatal: %s\n", e.what());
        return 1;
    }
}
