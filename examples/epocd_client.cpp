// epocd_client: exercise a running epocd daemon.
//
// Modes (all need --socket PATH, default /tmp/epocd.sock):
//
//   --qasm FILE         compile one QASM file, print the response
//   --soak              the CI soak workload: compile a fixed circuit set
//                       locally (library mode) for baseline digests, then
//                       submit the same circuits to the daemon repeatedly
//                       with mixed priorities — plus a pair of
//                       deliberately-infeasible-deadline jobs — and assert:
//                       every job got a response, compiled digests are
//                       bit-identical to library mode, infeasible jobs were
//                       shed (not errored). Prints grep-friendly soak-*
//                       lines; exit 0 iff every assertion held.
//   --expect-dedup      assert the daemon's library misses equal the unique
//                       work of ONE local compile of the soak set (cross-
//                       client dedup: N clients' identical blocks were
//                       GRAPE'd once), and that hits landed. Run after soak.
//   --status            print the daemon's counter snapshot
//   --shutdown          ask the daemon to exit
//
// Common options:
//   --tenant NAME       accounting bucket (default "default")
//   --backend NAME      hardware backend for --qasm jobs (resolved against
//                       the daemon's registry; an unknown name comes back as
//                       an invalid_input response, exit 1)
//   --fast              cheap search settings — must match the daemon's
//   --retry-ms N        keep retrying the initial connect for N ms (default
//                       5000; lets CI start daemon and client back-to-back)
//   --retry             enable the client resilience layer (reconnect with
//                       backoff + idempotent re-submission) — the chaos-soak
//                       CI job runs --soak --retry against a fault-injected
//                       daemon and still expects bit-identical digests
#include "service/client.h"

#include "bench_circuits/generators.h"
#include "circuit/qasm.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace epoc;

void apply_fast_options(core::EpocOptions& opt) {
    // Keep in lockstep with epocd's --fast (digest comparability).
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
}

/// The soak circuit set, as (name, qasm) — shared blocks across circuits and
/// across the clients running this same workload are the dedup fodder.
std::vector<std::pair<std::string, std::string>> soak_circuits() {
    std::vector<std::pair<std::string, std::string>> out;
    out.emplace_back("ghz4", circuit::to_qasm(bench::ghz(4)));
    out.emplace_back("qft3", circuit::to_qasm(bench::qft(3)));
    out.emplace_back("bv5", circuit::to_qasm(bench::bv(5)));
    out.emplace_back("wstate4", circuit::to_qasm(bench::wstate(4)));
    return out;
}

std::uint64_t local_digest(core::EpocCompiler& compiler, const std::string& qasm) {
    const core::EpocResult r = compiler.compile(circuit::parse_qasm(qasm));
    return qoc::fnv1a64(core::schedule_to_json(r.schedule));
}

std::unique_ptr<service::EpocClient> connect_with_retry(
    const std::string& path, int retry_ms, const service::ClientOptions& copt) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(retry_ms);
    for (;;) {
        try {
            return std::make_unique<service::EpocClient>(path, copt);
        } catch (const std::exception&) {
            if (std::chrono::steady_clock::now() >= give_up) throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

std::uint64_t counter(const service::StatusResponse& s, const std::string& key) {
    for (const auto& [k, v] : s.counters)
        if (k == key) return v;
    return 0;
}

int run_soak(service::EpocClient& client, const core::EpocOptions& local_opt,
             const std::string& tenant) {
    const auto circuits = soak_circuits();

    // Library-mode ground truth: one private in-process compiler.
    core::EpocCompiler local(local_opt);
    std::map<std::string, std::uint64_t> baseline;
    for (const auto& [name, qasm] : circuits)
        baseline[name] = local_digest(local, qasm);

    // Pipeline the daemon jobs: several rounds, priorities alternating so
    // the fair queue sees mixed levels, everything submitted before anything
    // is collected (responses arrive out of order; ids correlate).
    constexpr int kRounds = 3;
    std::vector<std::pair<std::uint64_t, std::string>> in_flight; // id, name
    for (int round = 0; round < kRounds; ++round)
        for (std::size_t i = 0; i < circuits.size(); ++i) {
            const std::int32_t priority = static_cast<std::int32_t>(i % 2);
            in_flight.emplace_back(
                client.submit(circuits[i].second, tenant, priority),
                circuits[i].first);
        }
    // Two jobs whose budget is spent on arrival: the admission controller
    // must shed them as responses, never as errors or hangs.
    const std::uint64_t doomed_a =
        client.submit(circuits[0].second, tenant, 0, 0.0001);
    const std::uint64_t doomed_b =
        client.submit(circuits[1].second, tenant, 1, 0.0001);

    int failures = 0;
    int ok_jobs = 0;
    for (const auto& [id, name] : in_flight) {
        const service::JobResponse resp = client.wait_for(id);
        if (resp.status != service::JobStatus::ok) {
            std::printf("soak-FAIL: %s -> %s (%s)\n", name.c_str(),
                        service::job_status_name(resp.status),
                        resp.detail.c_str());
            ++failures;
            continue;
        }
        if (resp.degraded) {
            std::printf("soak-FAIL: %s degraded (%llu/%llu blocks): %s\n",
                        name.c_str(),
                        static_cast<unsigned long long>(resp.blocks_degraded),
                        static_cast<unsigned long long>(resp.blocks_total),
                        resp.detail.c_str());
            ++failures;
            continue;
        }
        if (resp.digest != baseline[name]) {
            std::printf("soak-FAIL: %s digest %016llx != local %016llx\n",
                        name.c_str(),
                        static_cast<unsigned long long>(resp.digest),
                        static_cast<unsigned long long>(baseline[name]));
            ++failures;
            continue;
        }
        ++ok_jobs;
    }
    for (const std::uint64_t id : {doomed_a, doomed_b}) {
        const service::JobResponse resp = client.wait_for(id);
        if (resp.status != service::JobStatus::shed_deadline) {
            std::printf("soak-FAIL: doomed job %llu -> %s, want shed_deadline\n",
                        static_cast<unsigned long long>(id),
                        service::job_status_name(resp.status));
            ++failures;
        }
    }

    std::printf("soak-jobs: %zu ok: %d shed: 2 failures: %d\n", in_flight.size(),
                ok_jobs, failures);
    std::printf("soak-digest-match: %d\n", failures == 0 ? 1 : 0);
    std::printf("local-library-misses: %zu\n", local.library().stats().misses);
    // 1 on a clean run; >1 means the resilience layer reconnected (the chaos
    // job greps this to confirm faults actually landed on the wire).
    std::printf("client-connects: %d\n", client.connects());
    return failures == 0 ? 0 : 1;
}

int run_expect_dedup(service::EpocClient& client,
                     const core::EpocOptions& local_opt) {
    // Unique work in the soak set, measured locally: one compile of each
    // circuit on a fresh compiler misses once per unique pulse key.
    core::EpocCompiler local(local_opt);
    for (const auto& [name, qasm] : soak_circuits())
        local_digest(local, qasm);
    const std::size_t unique_misses = local.library().stats().misses;

    const service::StatusResponse s = client.status();
    const std::uint64_t daemon_misses = counter(s, "qoc.library_misses");
    const std::uint64_t daemon_hits = counter(s, "qoc.library_hits");
    std::printf("dedup-unique-misses: %zu daemon-misses: %llu daemon-hits: %llu\n",
                unique_misses, static_cast<unsigned long long>(daemon_misses),
                static_cast<unsigned long long>(daemon_hits));
    // Single-flight makes the daemon's miss count equal the unique key count
    // however many clients raced: more misses means dedup broke, fewer means
    // work was skipped. Hits must exist because every client after the first
    // (and every repeat round) reuses the same entries.
    const bool ok = daemon_misses == unique_misses && daemon_hits > 0;
    std::printf("dedup-ok: %d\n", ok ? 1 : 0);
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path = "/tmp/epocd.sock";
    std::string tenant = "default";
    std::string qasm_file;
    std::string backend_name;
    std::string mode = "qasm";
    int retry_ms = 5000;
    service::ClientOptions copt;
    core::EpocOptions local_opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            socket_path = argv[++i];
        } else if (arg == "--tenant" && has_value) {
            tenant = argv[++i];
        } else if (arg == "--backend" && has_value) {
            backend_name = argv[++i];
        } else if (arg == "--qasm" && has_value) {
            qasm_file = argv[++i];
            mode = "qasm";
        } else if (arg == "--soak") {
            mode = "soak";
        } else if (arg == "--expect-dedup") {
            mode = "expect-dedup";
        } else if (arg == "--status") {
            mode = "status";
        } else if (arg == "--shutdown") {
            mode = "shutdown";
        } else if (arg == "--fast") {
            apply_fast_options(local_opt);
        } else if (arg == "--retry-ms" && has_value) {
            retry_ms = std::atoi(argv[++i]);
        } else if (arg == "--retry") {
            copt.retry = true;
            // Chaos soak: fault sites at a few % each produce dozens of small
            // reconnect events over one soak run — the budget has to cover the
            // whole workload, not a single outage (20 was observed exhausted
            // mid-soak under service.accept=%5 + read/write=%7).
            copt.max_reconnects = 100;
        } else {
            std::fprintf(stderr, "epocd_client: unknown option: %s\n",
                         arg.c_str());
            return 2;
        }
    }

    try {
        const auto client = connect_with_retry(socket_path, retry_ms, copt);
        if (mode == "soak") return run_soak(*client, local_opt, tenant);
        if (mode == "expect-dedup") return run_expect_dedup(*client, local_opt);
        if (mode == "status") {
            for (const auto& [key, value] : client->status().counters)
                std::printf("%s = %llu\n", key.c_str(),
                            static_cast<unsigned long long>(value));
            return 0;
        }
        if (mode == "shutdown") {
            client->shutdown_server();
            std::printf("shutdown acknowledged\n");
            return 0;
        }
        if (qasm_file.empty()) {
            std::fprintf(stderr,
                         "epocd_client: pass --qasm FILE, --soak, "
                         "--expect-dedup, --status or --shutdown\n");
            return 2;
        }
        std::ifstream in(qasm_file);
        if (!in) {
            std::fprintf(stderr, "epocd_client: cannot read %s\n",
                         qasm_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        const service::JobResponse resp =
            client->compile(text.str(), tenant, 0, 0.0, backend_name);
        std::printf("status: %s%s\n", service::job_status_name(resp.status),
                    resp.degraded ? " (degraded)" : "");
        if (!resp.detail.empty()) std::printf("detail: %s\n", resp.detail.c_str());
        std::printf("digest: %016llx\nlatency-ns: %.3f\nesp: %.6f\n"
                    "pulses: %llu\ncompile-ms: %.1f\n",
                    static_cast<unsigned long long>(resp.digest),
                    resp.latency_ns, resp.esp,
                    static_cast<unsigned long long>(resp.num_pulses),
                    resp.compile_ms);
        return resp.status == service::JobStatus::ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "epocd_client: %s\n", e.what());
        return 1;
    }
}
