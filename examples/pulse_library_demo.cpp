// Pulse-library demo (paper Section 3.4): the lookup table that accelerates
// repeated QOC, the benefit of EPOC's global-phase-aware matching, and the
// persistent on-disk tier that lets the table outlive the process.
#include "circuit/gate.h"
#include "qoc/pulse_library.h"
#include "store/pulse_store.h"

#include <complex>
#include <cstdio>
#include <filesystem>

int main() {
    using namespace epoc;
    const auto h1 = qoc::make_block_hamiltonian(1);
    qoc::LatencySearchOptions opt;
    opt.fidelity_threshold = 0.995;

    qoc::PulseLibrary phase_aware(true);
    qoc::PulseLibrary phase_oblivious(false);

    const linalg::Matrix gates[] = {
        circuit::hadamard(),
        circuit::pauli_x(),
        circuit::kind_matrix(circuit::GateKind::SX, {}),
    };

    std::printf("generating pulses for 3 gates and 3 phase-shifted copies...\n\n");
    for (const auto& g : gates) {
        const auto r = phase_aware.get_or_generate(h1, g, opt);
        phase_oblivious.get_or_generate(h1, g, opt);
        std::printf("  pulse: %2d slots, %5.1f ns, fidelity %.4f\n", r->pulse.num_slots(),
                    r->pulse.duration(), r->pulse.fidelity);
    }
    for (const auto& g : gates) {
        linalg::Matrix shifted = g;
        shifted *= std::polar(1.0, 0.9); // same operation, different global phase
        phase_aware.get_or_generate(h1, shifted, opt);
        phase_oblivious.get_or_generate(h1, shifted, opt);
    }

    std::printf("\nphase-aware lookup (EPOC):      %zu entries, hit rate %.0f%%\n",
                phase_aware.size(), 100.0 * phase_aware.stats().hit_rate());
    std::printf("phase-oblivious lookup (prior): %zu entries, hit rate %.0f%%\n",
                phase_oblivious.size(), 100.0 * phase_oblivious.stats().hit_rate());
    std::printf("\nEPOC recognises phase-shifted duplicates; the exact-matrix table\n"
                "regenerates every one of them from scratch.\n");

    // --- Act two: persistence. The in-memory table dies with the process;
    // the on-disk store (store/pulse_store.h) does not. Fill it through one
    // library, throw that library away, and watch a brand-new one promote
    // every entry from disk without a single GRAPE run.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "epoc-pulse-store-demo";
    std::printf("\npersistent store demo (dir: %s)\n", dir.string().c_str());
    store::PulseStore store({dir.string()});
    {
        qoc::PulseLibrary writer(true);
        writer.set_store(&store);
        for (const auto& g : gates) writer.get_or_generate(h1, g, opt);
        std::printf("  writer library:  %zu generated, %zu written to disk "
                    "(%zu already there)\n",
                    writer.stats().store_misses, writer.stats().store_writes,
                    writer.stats().store_hits);
    } // writer's in-memory table is gone here

    qoc::PulseLibrary reader(true); // cold memory, warm disk
    reader.set_store(&store);
    for (const auto& g : gates) reader.get_or_generate(h1, g, opt);
    std::printf("  fresh library:   %zu disk hits, %zu GRAPE runs -- every pulse\n"
                "                   promoted from the store, bit-identical to the\n"
                "                   run that wrote it\n",
                reader.stats().store_hits, reader.stats().store_misses);
    std::printf("  store totals:    hits=%zu misses=%zu writes=%zu (%llu bytes)\n",
                store.stats().hits, store.stats().misses, store.stats().writes,
                static_cast<unsigned long long>(store.stats().bytes));
    std::printf("\nre-run this demo: the writer library now reports disk hits too.\n"
                "EpocOptions::pulse_store_dir (or EPOC_PULSE_STORE) arms the same\n"
                "tier inside the full compiler.\n");
    return 0;
}
