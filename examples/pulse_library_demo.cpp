// Pulse-library demo (paper Section 3.4): the lookup table that accelerates
// repeated QOC, and the benefit of EPOC's global-phase-aware matching.
#include "circuit/gate.h"
#include "qoc/pulse_library.h"

#include <complex>
#include <cstdio>

int main() {
    using namespace epoc;
    const auto h1 = qoc::make_block_hamiltonian(1);
    qoc::LatencySearchOptions opt;
    opt.fidelity_threshold = 0.995;

    qoc::PulseLibrary phase_aware(true);
    qoc::PulseLibrary phase_oblivious(false);

    const linalg::Matrix gates[] = {
        circuit::hadamard(),
        circuit::pauli_x(),
        circuit::kind_matrix(circuit::GateKind::SX, {}),
    };

    std::printf("generating pulses for 3 gates and 3 phase-shifted copies...\n\n");
    for (const auto& g : gates) {
        const auto r = phase_aware.get_or_generate(h1, g, opt);
        phase_oblivious.get_or_generate(h1, g, opt);
        std::printf("  pulse: %2d slots, %5.1f ns, fidelity %.4f\n", r->pulse.num_slots(),
                    r->pulse.duration(), r->pulse.fidelity);
    }
    for (const auto& g : gates) {
        linalg::Matrix shifted = g;
        shifted *= std::polar(1.0, 0.9); // same operation, different global phase
        phase_aware.get_or_generate(h1, shifted, opt);
        phase_oblivious.get_or_generate(h1, shifted, opt);
    }

    std::printf("\nphase-aware lookup (EPOC):      %zu entries, hit rate %.0f%%\n",
                phase_aware.size(), 100.0 * phase_aware.stats().hit_rate());
    std::printf("phase-oblivious lookup (prior): %zu entries, hit rate %.0f%%\n",
                phase_oblivious.size(), 100.0 * phase_oblivious.stats().hit_rate());
    std::printf("\nEPOC recognises phase-shifted duplicates; the exact-matrix table\n"
                "regenerates every one of them from scratch.\n");
    return 0;
}
