// Quickstart: compile a GHZ-state circuit to microwave pulses with EPOC.
//
//   $ ./quickstart
//
// Walks the whole pipeline -- ZX optimization, partitioning, synthesis,
// regrouping, GRAPE -- and prints the resulting pulse schedule.
#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main() {
    using namespace epoc;

    // 1. Build (or parse -- see circuit/qasm.h) a circuit.
    const circuit::Circuit c = bench::ghz(3);
    std::printf("input circuit:\n%s\n", c.to_string().c_str());

    // 2. Configure the compiler. Defaults are sensible; here we ask for a
    //    0.995 pulse fidelity threshold.
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.995;

    // 3. Compile.
    core::EpocCompiler compiler(opt);
    const core::EpocResult r = compiler.compile(c);

    // 4. Inspect the result.
    std::printf("depth: %d -> %d after ZX optimization\n", r.depth_original,
                r.depth_after_zx);
    std::printf("synthesized to %zu U3/CX gates in %zu blocks\n", r.synthesized_gates,
                r.num_blocks);
    std::printf("pulse schedule (%zu pulses, latency %.1f ns, ESP %.4f):\n",
                r.num_pulses, r.latency_ns, r.esp);
    for (const core::ScheduledPulse& p : r.schedule.pulses) {
        std::printf("  [%6.1f, %6.1f] ns  qubits", p.start, p.end);
        for (const int q : p.job.qubits) std::printf(" %d", q);
        std::printf("  fid %.4f  (%s)\n", p.job.fidelity, p.job.label.c_str());
    }
    std::printf("compile time: %.0f ms (zx %.0f, synth %.0f, qoc %.0f)\n", r.compile_ms,
                r.zx_ms, r.synthesis_ms, r.qoc_ms);
    return 0;
}
