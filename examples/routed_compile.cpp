// Full traditional-flow demo (paper Figure 1 left column, then EPOC):
// parse an OpenQASM program, map/route it onto a linear-coupling device,
// then generate pulses with EPOC and print the timeline.
#include "circuit/qasm.h"
#include "circuit/routing.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace epoc;

    circuit::Circuit logical;
    if (argc > 1) {
        try {
            logical = circuit::parse_qasm_file(argv[1]);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        std::printf("parsed %s: %d qubits, %zu gates\n", argv[1], logical.num_qubits(),
                    logical.size());
    } else {
        // Default program: a QFT-style circuit written inline as QASM.
        const std::string src = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[3];
cu1(pi/2) q[2],q[3];
h q[2];
cu1(pi/4) q[1],q[3];
cu1(pi/2) q[1],q[2];
h q[1];
cu1(pi/8) q[0],q[3];
cu1(pi/4) q[0],q[2];
cu1(pi/2) q[0],q[1];
h q[0];
)";
        logical = circuit::parse_qasm(src);
        std::printf("inline QFT program: %d qubits, %zu gates, depth %d\n",
                    logical.num_qubits(), logical.size(), logical.depth());
    }

    // Map onto a linear-coupling device (the typical transmon chain).
    const circuit::CouplingMap device = circuit::CouplingMap::linear(logical.num_qubits());
    const circuit::RoutingResult routed = circuit::route(logical, device);
    std::printf("routed for linear coupling: %zu gates (+%d swaps)\n",
                routed.circuit.size(), routed.swaps_inserted);

    core::EpocCompiler compiler;
    const core::EpocResult r = compiler.compile(routed.circuit);
    std::printf("\nEPOC pulse schedule: latency %.1f ns, ESP %.4f (with decoherence %.4f)\n\n",
                r.latency_ns, r.esp, r.esp_decoherent);
    std::printf("%s\n", core::ascii_timeline(r.schedule).c_str());
    std::printf("JSON export:\n%s\n", core::schedule_to_json(r.schedule).c_str());
    return 0;
}
