// Full traditional-flow demo (paper Figure 1 left column, then EPOC):
// parse an OpenQASM program, map/route it onto a coupled device, then
// generate pulses with EPOC and print the timeline.
//
// Usage: routed_compile [program.qasm] [--backend NAME]
//   Without --backend the program is pre-routed onto a linear chain with
//   circuit::route() and compiled device-free — the historical flow.
//   With --backend NAME (linear-5, ring-8, grid-3x3, heavy-hex-7, full-N)
//   the *compiler itself* is topology-aware: no pre-routing pass, the
//   partitioner keeps blocks on coupling-connected qubits and bridges
//   non-adjacent gates along shortest paths, and every pulse is optimized
//   against that backend's edge-resolved Hamiltonians.
#include "backend/backend.h"
#include "circuit/qasm.h"
#include "circuit/routing.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
    using namespace epoc;

    std::string qasm_path;
    std::string backend_name;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (argv[i][0] != '-' && qasm_path.empty()) {
            qasm_path = argv[i];
        } else {
            std::fprintf(stderr, "usage: %s [program.qasm] [--backend NAME]\n",
                         argv[0]);
            return 2;
        }
    }

    circuit::Circuit logical;
    if (!qasm_path.empty()) {
        try {
            logical = circuit::parse_qasm_file(qasm_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        std::printf("parsed %s: %d qubits, %zu gates\n", qasm_path.c_str(),
                    logical.num_qubits(), logical.size());
    } else {
        // Default program: a QFT-style circuit written inline as QASM.
        const std::string src = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[3];
cu1(pi/2) q[2],q[3];
h q[2];
cu1(pi/4) q[1],q[3];
cu1(pi/2) q[1],q[2];
h q[1];
cu1(pi/8) q[0],q[3];
cu1(pi/4) q[0],q[2];
cu1(pi/2) q[0],q[1];
h q[0];
)";
        logical = circuit::parse_qasm(src);
        std::printf("inline QFT program: %d qubits, %zu gates, depth %d\n",
                    logical.num_qubits(), logical.size(), logical.depth());
    }

    core::EpocOptions opt;
    const circuit::Circuit* program = &logical;
    circuit::RoutingResult routed;
    if (!backend_name.empty()) {
        backend::BackendRegistry registry;
        opt.backend = registry.find(backend_name);
        if (opt.backend == nullptr) {
            std::fprintf(stderr, "unknown backend '%s'; built-ins:",
                         backend_name.c_str());
            for (const std::string& n : registry.names())
                std::fprintf(stderr, " %s", n.c_str());
            std::fprintf(stderr, " full-N\n");
            return 2;
        }
        if (logical.num_qubits() > opt.backend->coupling.num_qubits()) {
            std::fprintf(stderr, "program needs %d qubits but backend '%s' has %d\n",
                         logical.num_qubits(), opt.backend->name.c_str(),
                         opt.backend->coupling.num_qubits());
            return 2;
        }
        std::printf("backend %s: %d qubits, %zu edges — compiling topology-aware "
                    "(no pre-routing pass)\n",
                    opt.backend->name.c_str(), opt.backend->coupling.num_qubits(),
                    opt.backend->coupling.edges().size());
    } else {
        // Device-free flow: pre-route onto a linear chain (the typical
        // transmon line) so the gate set is already coupling-feasible.
        const circuit::CouplingMap device =
            circuit::CouplingMap::linear(logical.num_qubits());
        routed = circuit::route(logical, device);
        std::printf("routed for linear coupling: %zu gates (+%d swaps)\n",
                    routed.circuit.size(), routed.swaps_inserted);
        program = &routed.circuit;
    }

    core::EpocCompiler compiler(opt);
    const core::EpocResult r = compiler.compile(*program);
    std::printf("\nEPOC pulse schedule: latency %.1f ns, ESP %.4f (with decoherence %.4f)\n\n",
                r.latency_ns, r.esp, r.esp_decoherent);
    std::printf("%s\n", core::ascii_timeline(r.schedule).c_str());
    std::printf("JSON export:\n%s\n", core::schedule_to_json(r.schedule).c_str());
    return 0;
}
