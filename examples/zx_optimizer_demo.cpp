// ZX-calculus depth optimization demo (paper Section 3.1 / Figure 4):
// convert circuits to ZX diagrams, run full_reduce, extract, and report the
// depth change -- including a VQE ansatz, the family for which the paper
// reports its most extreme reduction.
#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "zx/circuit_to_zx.h"
#include "zx/optimize.h"

#include <cstdio>

namespace {

void demo(const char* name, const epoc::circuit::Circuit& c, bool verify) {
    const epoc::zx::ZxOptimizeResult r = epoc::zx::zx_optimize(c);
    std::printf("%-18s depth %4d -> %4d  (gates %4zu -> %4zu, fusions %d, pivots %d)\n",
                name, r.depth_before, r.depth_after, c.size(), r.circuit.size(),
                r.stats.spider_fusions, r.stats.pivots);
    if (verify) {
        const bool same = epoc::linalg::equal_up_to_global_phase(
            epoc::circuit::circuit_unitary(r.circuit), epoc::circuit::circuit_unitary(c),
            1e-6);
        if (!same) std::printf("  !! unitary mismatch\n");
    }
}

} // namespace

int main() {
    using namespace epoc;

    // The paper's Figure-4 narrative: a multi-qubit Bell/GHZ preparation
    // written verbosely, then collapsed by the ZX pass.
    circuit::Circuit bell(4);
    for (int q = 0; q < 4; ++q) bell.rz(0.5, q).sx(q).rz(-0.5, q);
    bell.cx(0, 1).cx(2, 3);
    for (int q = 0; q < 4; ++q) bell.sx(q).sx(q); // redundant pair
    bell.cx(0, 1).cx(2, 3);                        // cancels
    for (int q = 0; q < 4; ++q) bell.rz(-0.5, q).sx(q).rz(0.5, q);
    demo("bell-prep", bell, true);

    demo("vqe(5,3)", bench::vqe(5, 3), true);
    demo("qaoa(5,2)", bench::qaoa(5, 2), true);
    demo("qft(4)", bench::qft(4), true);
    demo("ham7", bench::ham7(), true);

    bench::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 80;
    spec.non_clifford_fraction = 0.1;
    spec.seed = 12;
    demo("random(5,80)", bench::random_circuit(spec), true);
    return 0;
}
