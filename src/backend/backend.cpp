#include "backend/backend.h"

#include "qoc/pulse_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace epoc::backend {

using linalg::cplx;
using linalg::Matrix;

namespace {

std::size_t ipow(int base, int exp) {
    std::size_t r = 1;
    for (int i = 0; i < exp; ++i) r *= static_cast<std::size_t>(base);
    return r;
}

/// Single-site operator embedded at local position `pos` of an n-site,
/// L-level register, little-endian (site 0 = least-significant digit) — the
/// same ordering circuit::embed_gate uses for L == 2.
Matrix op_at(const Matrix& op, int pos, int n, int levels) {
    const std::size_t dim = ipow(levels, n);
    const std::size_t stride = ipow(levels, pos);
    const std::size_t block = stride * static_cast<std::size_t>(levels);
    Matrix m = Matrix::zeros(dim, dim);
    for (std::size_t high = 0; high < dim / block; ++high)
        for (std::size_t low = 0; low < stride; ++low) {
            const std::size_t base = high * block + low;
            for (int a = 0; a < levels; ++a)
                for (int b = 0; b < levels; ++b)
                    m(base + static_cast<std::size_t>(a) * stride,
                      base + static_cast<std::size_t>(b) * stride) =
                        op(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
        }
    return m;
}

/// Ladder-derived drive quadratures and Z; reduce to the Paulis at L == 2.
Matrix x_op(int levels) {
    Matrix m = Matrix::zeros(static_cast<std::size_t>(levels),
                             static_cast<std::size_t>(levels));
    for (int k = 1; k < levels; ++k) {
        const double amp = std::sqrt(static_cast<double>(k));
        m(static_cast<std::size_t>(k - 1), static_cast<std::size_t>(k)) = cplx{amp, 0.0};
        m(static_cast<std::size_t>(k), static_cast<std::size_t>(k - 1)) = cplx{amp, 0.0};
    }
    return m;
}

Matrix y_op(int levels) {
    Matrix m = Matrix::zeros(static_cast<std::size_t>(levels),
                             static_cast<std::size_t>(levels));
    for (int k = 1; k < levels; ++k) {
        const double amp = std::sqrt(static_cast<double>(k));
        m(static_cast<std::size_t>(k - 1), static_cast<std::size_t>(k)) = cplx{0.0, -amp};
        m(static_cast<std::size_t>(k), static_cast<std::size_t>(k - 1)) = cplx{0.0, amp};
    }
    return m;
}

Matrix z_op(int levels) {
    Matrix m = Matrix::zeros(static_cast<std::size_t>(levels),
                             static_cast<std::size_t>(levels));
    for (int k = 0; k < levels; ++k)
        m(static_cast<std::size_t>(k), static_cast<std::size_t>(k)) =
            cplx{1.0 - 2.0 * k, 0.0};
    return m;
}

std::string hex64(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << v;
    return os.str();
}

std::pair<int, int> norm_edge(int a, int b) { return {std::min(a, b), std::max(a, b)}; }

} // namespace

Backend::Backend(std::string name_, circuit::CouplingMap coupling_,
                 qoc::DeviceParams base_)
    : name(std::move(name_)), coupling(std::move(coupling_)), base(base_) {}

double Backend::drive_bound(int q) const {
    if (qubit_drive_bounds.empty()) return base.drive_bound;
    return qubit_drive_bounds.at(static_cast<std::size_t>(q));
}

EdgeParams Backend::edge(int a, int b) const {
    const auto it = edge_overrides.find(norm_edge(a, b));
    if (it != edge_overrides.end()) return it->second;
    return {base.coupling_bound, base.zz_drift};
}

void Backend::validate() const {
    if (name.empty()) throw std::invalid_argument("Backend: empty name");
    if (levels != 2 && levels != 3)
        throw std::invalid_argument("Backend '" + name + "': levels must be 2 or 3");
    if (!qubit_drive_bounds.empty() &&
        static_cast<int>(qubit_drive_bounds.size()) != coupling.num_qubits())
        throw std::invalid_argument("Backend '" + name +
                                    "': qubit_drive_bounds size != num_qubits");
    for (const auto& [e, p] : edge_overrides) {
        (void)p;
        if (e != norm_edge(e.first, e.second))
            throw std::invalid_argument("Backend '" + name +
                                        "': edge override key not normalized");
        if (e.first < 0 || e.second >= coupling.num_qubits() ||
            !coupling.adjacent(e.first, e.second))
            throw std::invalid_argument(
                "Backend '" + name + "': edge override (" + std::to_string(e.first) +
                "," + std::to_string(e.second) + ") is not a coupling-map edge");
    }
}

std::string Backend::fingerprint() const {
    using qoc::exact_double;
    std::ostringstream os;
    os << "backend:" << name << "|n:" << coupling.num_qubits() << "|e:";
    // Normalize edge order so equal graphs fingerprint equally regardless of
    // the edge list's construction order.
    std::vector<std::pair<int, int>> es;
    es.reserve(coupling.edges().size());
    for (const auto& [a, b] : coupling.edges()) es.push_back(norm_edge(a, b));
    std::sort(es.begin(), es.end());
    for (const auto& [a, b] : es) os << a << "-" << b << ",";
    os << "|p:" << exact_double(base.drive_bound) << ":"
       << exact_double(base.coupling_bound) << ":" << exact_double(base.zz_drift)
       << ":" << exact_double(base.dt) << "|q:";
    for (const double d : qubit_drive_bounds) os << exact_double(d) << ",";
    os << "|eo:";
    for (const auto& [e, p] : edge_overrides)
        os << e.first << "-" << e.second << "=" << exact_double(p.coupling_bound)
           << "," << exact_double(p.zz_drift) << ";";
    os << "|xt:" << (crosstalk_zz ? exact_double(crosstalk_strength) : std::string("off"));
    os << "|L:" << levels;
    if (levels > 2) os << ":" << exact_double(anharmonicity);
    return os.str();
}

std::uint64_t Backend::fingerprint_hash() const { return qoc::fnv1a64(fingerprint()); }

qoc::BlockHamiltonian Backend::block_hamiltonian(const std::vector<int>& qubits) const {
    if (qubits.empty())
        throw std::invalid_argument("Backend::block_hamiltonian: empty block");
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (qubits[i] < 0 || qubits[i] >= coupling.num_qubits())
            throw std::invalid_argument("Backend::block_hamiltonian: qubit out of range");
        if (i > 0 && qubits[i] <= qubits[i - 1])
            throw std::invalid_argument(
                "Backend::block_hamiltonian: qubits must be sorted and distinct");
    }
    const int n = static_cast<int>(qubits.size());
    const int L = levels;
    const std::size_t dim = ipow(L, n);
    const Matrix X = x_op(L);
    const Matrix Y = y_op(L);
    const Matrix Z = z_op(L);

    qoc::BlockHamiltonian h;
    h.num_qubits = n;
    h.dt = base.dt;
    h.drift = Matrix::zeros(dim, dim);

    // Drift: edge-resolved ZZ on coupled pairs; optional spectator ZZ on
    // distance-2 pairs (crosstalk variant). The local strength pattern joins
    // `variant` — control labels/bounds alone cannot distinguish two blocks
    // whose drifts differ.
    std::ostringstream ztag;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            const int d = coupling.distance(qubits[static_cast<std::size_t>(i)],
                                            qubits[static_cast<std::size_t>(j)]);
            double strength = 0.0;
            if (d == 1)
                strength = edge(qubits[static_cast<std::size_t>(i)],
                                qubits[static_cast<std::size_t>(j)])
                               .zz_drift;
            else if (crosstalk_zz && d == 2)
                strength = crosstalk_strength;
            if (strength != 0.0) {
                Matrix zz = op_at(Z, i, n, L) * op_at(Z, j, n, L);
                zz *= cplx{strength, 0.0};
                h.drift += zz;
            }
            ztag << ";" << i << "_" << j << "=" << qoc::exact_double(strength);
        }
    if (L > 2) {
        // Anharmonic drift alpha/2 n(n-1) per transmon: diag(0, 0, alpha).
        Matrix anh = Matrix::zeros(static_cast<std::size_t>(L),
                                   static_cast<std::size_t>(L));
        for (int k = 0; k < L; ++k)
            anh(static_cast<std::size_t>(k), static_cast<std::size_t>(k)) =
                cplx{0.5 * anharmonicity * k * (k - 1), 0.0};
        for (int q = 0; q < n; ++q) h.drift += op_at(anh, q, n, L);
    }

    for (int q = 0; q < n; ++q) {
        const double bound = drive_bound(qubits[static_cast<std::size_t>(q)]);
        h.controls.push_back({"x" + std::to_string(q), op_at(X, q, n, L), bound});
        h.controls.push_back({"y" + std::to_string(q), op_at(Y, q, n, L), bound});
    }
    // XX entangling lines exist only where the device has a coupler.
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            const int a = qubits[static_cast<std::size_t>(i)];
            const int b = qubits[static_cast<std::size_t>(j)];
            if (!coupling.adjacent(a, b)) continue;
            h.controls.push_back({"xx" + std::to_string(i) + "_" + std::to_string(j),
                                  op_at(X, i, n, L) * op_at(X, j, n, L),
                                  edge(a, b).coupling_bound});
        }

    // Backend fingerprint first: per-backend pulse libraries by construction.
    h.variant = "be:" + hex64(fingerprint_hash()) + ";L" + std::to_string(L) + ztag.str();
    return h;
}

Matrix embed_in_levels(const Matrix& u, int num_qubits, int levels) {
    if (levels == 2) return u;
    const std::size_t din = std::size_t{1} << num_qubits;
    if (u.rows() != din || u.cols() != din)
        throw std::invalid_argument("embed_in_levels: unitary is not 2^n x 2^n");
    const std::size_t dout = ipow(levels, num_qubits);
    // Binary basis index -> mixed-radix index with the same digit values.
    const auto map_index = [&](std::size_t i) {
        std::size_t j = 0;
        std::size_t stride = 1;
        for (int p = 0; p < num_qubits; ++p) {
            j += ((i >> p) & 1u) * stride;
            stride *= static_cast<std::size_t>(levels);
        }
        return j;
    };
    Matrix out = Matrix::identity(dout);
    for (std::size_t r = 0; r < din; ++r)
        for (std::size_t c = 0; c < din; ++c) out(map_index(r), map_index(c)) = u(r, c);
    return out;
}

} // namespace epoc::backend
