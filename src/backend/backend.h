// Hardware-backend model and registry.
//
// The paper's flow (Fig. 1) maps circuits onto a concrete machine before
// pulse generation. A `Backend` is that machine: a named coupling graph plus
// the calibration data pulse generation needs — base DeviceParams, per-qubit
// drive bounds, per-edge coupler/ZZ overrides, and Hamiltonian variant flags
// (ZZ crosstalk between spectator pairs, a 3-level leakage-aware mode).
//
// `block_hamiltonian()` replaces the all-to-all `make_block_hamiltonian`
// model for device-aware compiles: XX entangling lines exist only on
// coupling-map edges, drift ZZ is edge-resolved, and in 3-level mode every
// operator lives in the 3^n transmon space with an anharmonic drift.
// The Hamiltonian's `variant` string embeds the backend fingerprint, so
// per-backend pulse libraries fall out of the existing cache keying: two
// backends never share a pulse-library or store entry.
#pragma once

#include "circuit/routing.h"
#include "linalg/matrix.h"
#include "qoc/hamiltonian.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace epoc::backend {

/// Per-edge calibration: resolved from overrides or the base DeviceParams.
struct EdgeParams {
    double coupling_bound;
    double zz_drift;
};

struct Backend {
    Backend(std::string name_, circuit::CouplingMap coupling_,
            qoc::DeviceParams base_ = {});

    std::string name;
    circuit::CouplingMap coupling;
    /// Defaults for every qubit/edge without an explicit override.
    qoc::DeviceParams base;
    /// Per-qubit drive bounds; empty = base.drive_bound everywhere, else one
    /// entry per physical qubit.
    std::vector<double> qubit_drive_bounds;
    /// Per-edge overrides, keyed by the normalized (min,max) endpoint pair.
    /// Keys must be coupling-map edges.
    std::map<std::pair<int, int>, EdgeParams> edge_overrides;
    /// Hamiltonian variant: always-on ZZ between distance-2 (spectator) pairs.
    bool crosstalk_zz = false;
    double crosstalk_strength = 0.0005; ///< [rad/ns], used when crosstalk_zz
    /// Levels per transmon: 2 (qubit) or 3 (leakage-aware qutrit model).
    int levels = 2;
    /// Anharmonicity alpha [rad/ns] for the 3-level drift alpha/2 n(n-1).
    double anharmonicity = -0.33;

    /// Resolved drive bound for physical qubit q.
    double drive_bound(int q) const;
    /// Resolved edge parameters for the (a,b) coupler, either orientation.
    EdgeParams edge(int a, int b) const;
    /// Throws std::invalid_argument when the calibration data is inconsistent
    /// (override on a non-edge, wrong-sized bound vector, bad level count).
    void validate() const;
    /// Canonical textual identity: every double exact_double-encoded, so
    /// backends one ulp apart fingerprint (and therefore key) differently.
    std::string fingerprint() const;
    std::uint64_t fingerprint_hash() const;
    /// Device-resolved Hamiltonian for a block over physical `qubits`
    /// (sorted, distinct, in range). Control labels use local indices so
    /// identically-calibrated congruent blocks share pulse-library entries
    /// within this backend; `variant` carries the backend fingerprint so no
    /// entry is ever shared across backends.
    qoc::BlockHamiltonian block_hamiltonian(const std::vector<int>& qubits) const;
};

/// Embed a 2^n-dim unitary into the levels^n transmon space as U (+) I:
/// computational basis states map to the corresponding mixed-radix states,
/// leakage levels are targeted to identity. levels == 2 returns u unchanged.
linalg::Matrix embed_in_levels(const linalg::Matrix& u, int num_qubits, int levels);

/// Parse a backend from a JSON object (see DESIGN.md §4i for the schema).
/// Throws std::invalid_argument on malformed JSON or inconsistent data.
Backend backend_from_json(const std::string& text);

/// Named-device registry. Construction installs the built-in devices
/// (linear-5, ring-8, grid-3x3, heavy-hex-7); "full-N" resolves
/// parametrically. Thread-safe.
class BackendRegistry {
public:
    BackendRegistry();

    /// nullptr when unknown. "full-N" (1 <= N <= 16) is materialized on
    /// first use.
    std::shared_ptr<const Backend> find(const std::string& name) const;
    /// Throws std::invalid_argument on duplicate name or invalid backend.
    std::shared_ptr<const Backend> register_backend(Backend be);
    std::shared_ptr<const Backend> register_json(const std::string& text);
    std::vector<std::string> names() const;

private:
    mutable std::mutex mutex_;
    mutable std::map<std::string, std::shared_ptr<const Backend>> backends_;
};

} // namespace epoc::backend
