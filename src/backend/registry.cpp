// BackendRegistry: built-in named devices plus JSON load/registration.
//
// The JSON reader is a deliberately small recursive-descent parser for the
// backend schema only (objects, arrays, strings, numbers, booleans) — the
// repo takes no third-party dependencies, and the full generality of JSON
// (escapes beyond the basics, huge nesting) is not needed for device files.
#include "backend/backend.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace epoc::backend {

namespace {

// ---------------------------------------------------------------- JSON value

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

    bool is_object() const { return std::holds_alternative<JsonObject>(v); }
    bool is_array() const { return std::holds_alternative<JsonArray>(v); }
    bool is_number() const { return std::holds_alternative<double>(v); }
    bool is_string() const { return std::holds_alternative<std::string>(v); }
    bool is_bool() const { return std::holds_alternative<bool>(v); }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    const std::string& s_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::invalid_argument("backend JSON: " + what + " at offset " +
                                    std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
            ++pos_;
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const std::string& lit) {
        if (s_.compare(pos_, lit.size(), lit) != 0) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue value() {
        skip_ws();
        const char c = peek();
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return JsonValue{string()};
        if (c == 't') {
            if (!consume_literal("true")) fail("bad literal");
            return JsonValue{true};
        }
        if (c == 'f') {
            if (!consume_literal("false")) fail("bad literal");
            return JsonValue{false};
        }
        if (c == 'n') {
            if (!consume_literal("null")) fail("bad literal");
            return JsonValue{nullptr};
        }
        return JsonValue{number()};
    }

    JsonValue object() {
        expect('{');
        JsonObject out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue{std::move(out)};
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            out[std::move(key)] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue{std::move(out)};
        }
    }

    JsonValue array() {
        expect('[');
        JsonArray out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue{std::move(out)};
        }
        while (true) {
            out.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue{std::move(out)};
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("unterminated escape");
                const char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default: fail("unsupported escape");
                }
            } else {
                out += c;
            }
        }
    }

    double number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a number");
        try {
            std::size_t used = 0;
            const double d = std::stod(s_.substr(start, pos_ - start), &used);
            if (used != pos_ - start) fail("malformed number");
            return d;
        } catch (const std::invalid_argument&) {
            fail("malformed number");
        } catch (const std::out_of_range&) {
            fail("number out of range");
        }
    }
};

// ------------------------------------------------------------ schema readers

const JsonValue* get_field(const JsonObject& o, const std::string& key) {
    const auto it = o.find(key);
    return it == o.end() ? nullptr : &it->second;
}

double require_number(const JsonObject& o, const std::string& key) {
    const JsonValue* v = get_field(o, key);
    if (v == nullptr || !v->is_number())
        throw std::invalid_argument("backend JSON: missing numeric field '" + key + "'");
    return std::get<double>(v->v);
}

int require_int(const JsonObject& o, const std::string& key) {
    const double d = require_number(o, key);
    const int i = static_cast<int>(d);
    if (static_cast<double>(i) != d)
        throw std::invalid_argument("backend JSON: field '" + key +
                                    "' is not an integer");
    return i;
}

void read_optional_number(const JsonObject& o, const std::string& key, double& out) {
    if (const JsonValue* v = get_field(o, key)) {
        if (!v->is_number())
            throw std::invalid_argument("backend JSON: field '" + key +
                                        "' must be a number");
        out = std::get<double>(v->v);
    }
}

} // namespace

Backend backend_from_json(const std::string& text) {
    const JsonValue root = JsonParser(text).parse();
    if (!root.is_object())
        throw std::invalid_argument("backend JSON: top level must be an object");
    const JsonObject& o = std::get<JsonObject>(root.v);

    const JsonValue* name_v = get_field(o, "name");
    if (name_v == nullptr || !name_v->is_string())
        throw std::invalid_argument("backend JSON: missing string field 'name'");
    const int nq = require_int(o, "num_qubits");

    const JsonValue* edges_v = get_field(o, "edges");
    if (edges_v == nullptr || !edges_v->is_array())
        throw std::invalid_argument("backend JSON: missing array field 'edges'");
    std::vector<std::pair<int, int>> edges;
    for (const JsonValue& e : std::get<JsonArray>(edges_v->v)) {
        if (!e.is_array() || std::get<JsonArray>(e.v).size() != 2)
            throw std::invalid_argument("backend JSON: each edge must be [a, b]");
        const JsonArray& pair = std::get<JsonArray>(e.v);
        if (!pair[0].is_number() || !pair[1].is_number())
            throw std::invalid_argument("backend JSON: edge endpoints must be numbers");
        edges.emplace_back(static_cast<int>(std::get<double>(pair[0].v)),
                           static_cast<int>(std::get<double>(pair[1].v)));
    }

    qoc::DeviceParams base;
    read_optional_number(o, "drive_bound", base.drive_bound);
    read_optional_number(o, "coupling_bound", base.coupling_bound);
    read_optional_number(o, "zz_drift", base.zz_drift);
    read_optional_number(o, "dt", base.dt);

    // CouplingMap's constructor performs the edge validation (range,
    // self-loops, duplicates) and throws with a specific message.
    Backend be(std::get<std::string>(name_v->v), circuit::CouplingMap(nq, edges), base);

    if (const JsonValue* v = get_field(o, "qubit_drive_bounds")) {
        if (!v->is_array())
            throw std::invalid_argument(
                "backend JSON: 'qubit_drive_bounds' must be an array");
        for (const JsonValue& d : std::get<JsonArray>(v->v)) {
            if (!d.is_number())
                throw std::invalid_argument(
                    "backend JSON: 'qubit_drive_bounds' entries must be numbers");
            be.qubit_drive_bounds.push_back(std::get<double>(d.v));
        }
    }
    if (const JsonValue* v = get_field(o, "edge_overrides")) {
        if (!v->is_array())
            throw std::invalid_argument("backend JSON: 'edge_overrides' must be an array");
        for (const JsonValue& ov : std::get<JsonArray>(v->v)) {
            if (!ov.is_object())
                throw std::invalid_argument(
                    "backend JSON: each edge override must be an object");
            const JsonObject& oo = std::get<JsonObject>(ov.v);
            const int a = require_int(oo, "a");
            const int b = require_int(oo, "b");
            EdgeParams p{base.coupling_bound, base.zz_drift};
            read_optional_number(oo, "coupling_bound", p.coupling_bound);
            read_optional_number(oo, "zz_drift", p.zz_drift);
            be.edge_overrides[{std::min(a, b), std::max(a, b)}] = p;
        }
    }
    if (const JsonValue* v = get_field(o, "crosstalk_zz")) {
        if (!v->is_bool())
            throw std::invalid_argument("backend JSON: 'crosstalk_zz' must be a boolean");
        be.crosstalk_zz = std::get<bool>(v->v);
    }
    read_optional_number(o, "crosstalk_strength", be.crosstalk_strength);
    if (get_field(o, "levels") != nullptr) be.levels = require_int(o, "levels");
    read_optional_number(o, "anharmonicity", be.anharmonicity);

    be.validate();
    return be;
}

BackendRegistry::BackendRegistry() {
    // Built-in devices. Calibrations deliberately differ between devices so
    // the same circuit produces visibly different pulses (and cache keys) on
    // each — the bench/CI matrix relies on that.
    register_backend(Backend("linear-5", circuit::CouplingMap::linear(5)));

    {
        qoc::DeviceParams p;
        p.drive_bound = 0.165;
        p.coupling_bound = 0.022;
        p.zz_drift = 0.0018;
        register_backend(Backend("ring-8", circuit::CouplingMap::ring(8), p));
    }
    {
        qoc::DeviceParams p;
        p.drive_bound = 0.150;
        p.coupling_bound = 0.018;
        p.zz_drift = 0.0025;
        Backend be("grid-3x3", circuit::CouplingMap::grid(3, 3), p);
        be.crosstalk_zz = true;
        be.crosstalk_strength = 0.0004;
        register_backend(std::move(be));
    }
    {
        qoc::DeviceParams p;
        p.coupling_bound = 0.016;
        p.zz_drift = 0.0015;
        Backend be("heavy-hex-7", circuit::CouplingMap::heavy_hex7(), p);
        // Per-qubit calibration spread and stronger spine couplers.
        be.qubit_drive_bounds = {0.150, 0.160, 0.150, 0.158, 0.152, 0.162, 0.154};
        be.edge_overrides[{1, 3}] = {0.024, 0.0012};
        be.edge_overrides[{3, 5}] = {0.024, 0.0012};
        register_backend(std::move(be));
    }
}

std::shared_ptr<const Backend> BackendRegistry::find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = backends_.find(name);
    if (it != backends_.end()) return it->second;
    // Parametric all-to-all family: "full-N".
    const std::string prefix = "full-";
    if (name.compare(0, prefix.size(), prefix) == 0) {
        const std::string digits = name.substr(prefix.size());
        if (!digits.empty() &&
            digits.find_first_not_of("0123456789") == std::string::npos &&
            digits.size() <= 2) {
            const int n = std::stoi(digits);
            if (n >= 1 && n <= 16) {
                auto be = std::make_shared<Backend>(name, circuit::CouplingMap::full(n));
                backends_[name] = be;
                return be;
            }
        }
    }
    return nullptr;
}

std::shared_ptr<const Backend> BackendRegistry::register_backend(Backend be) {
    be.validate();
    std::lock_guard<std::mutex> lock(mutex_);
    auto sp = std::make_shared<Backend>(std::move(be));
    if (!backends_.emplace(sp->name, sp).second)
        throw std::invalid_argument("BackendRegistry: duplicate backend '" + sp->name +
                                    "'");
    return sp;
}

std::shared_ptr<const Backend> BackendRegistry::register_json(const std::string& text) {
    return register_backend(backend_from_json(text));
}

std::vector<std::string> BackendRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& [n, be] : backends_) {
        (void)be;
        out.push_back(n);
    }
    return out;
}

} // namespace epoc::backend
