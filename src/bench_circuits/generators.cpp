#include "bench_circuits/generators.h"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace epoc::bench {

namespace {
constexpr double kPi = std::numbers::pi;
}

Circuit ghz(int n) {
    Circuit c(n);
    c.h(0);
    for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
    return c;
}

Circuit bell_pairs(int n) {
    if (n % 2 != 0) throw std::invalid_argument("bell_pairs: n must be even");
    Circuit c(n);
    for (int q = 0; q < n; q += 2) {
        c.h(q);
        c.cx(q, q + 1);
    }
    return c;
}

Circuit bv(int n, std::uint64_t secret) {
    // n data qubits + 1 ancilla.
    Circuit c(n + 1);
    c.x(n).h(n);
    for (int q = 0; q < n; ++q) c.h(q);
    for (int q = 0; q < n; ++q)
        if (secret & (std::uint64_t{1} << q)) c.cx(q, n);
    for (int q = 0; q < n; ++q) c.h(q);
    c.h(n);
    return c;
}

Circuit simon(int n, std::uint64_t s) {
    // 2n qubits: data 0..n-1, output n..2n-1. Oracle: copy + period XOR.
    Circuit c(2 * n);
    for (int q = 0; q < n; ++q) c.h(q);
    for (int q = 0; q < n; ++q) c.cx(q, n + q);
    // XOR the period pattern controlled on the first set bit of s.
    int ctrl = -1;
    for (int q = 0; q < n; ++q)
        if (s & (std::uint64_t{1} << q)) {
            ctrl = q;
            break;
        }
    if (ctrl >= 0)
        for (int q = 0; q < n; ++q)
            if (s & (std::uint64_t{1} << q)) c.cx(ctrl, n + q);
    for (int q = 0; q < n; ++q) c.h(q);
    return c;
}

Circuit bb84(int n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    Circuit c(n);
    for (int q = 0; q < n; ++q) {
        if (rng() & 1) c.x(q); // bit choice
        if (rng() & 1) c.h(q); // basis choice
    }
    // Receiver basis rotation.
    for (int q = 0; q < n; ++q)
        if (rng() & 1) c.h(q);
    return c;
}

Circuit qaoa(int n, int p) {
    Circuit c(n);
    for (int q = 0; q < n; ++q) c.h(q);
    for (int layer = 0; layer < p; ++layer) {
        const double gamma = 0.7 + 0.2 * layer;
        const double beta = 0.4 + 0.1 * layer;
        for (int q = 0; q < n; ++q) c.rzz(gamma, q, (q + 1) % n);
        for (int q = 0; q < n; ++q) c.rx(2 * beta, q);
    }
    return c;
}

Circuit decod24() {
    // In the spirit of QASMBench decod24-v2: a 2-to-4 line decoder over
    // 4 qubits built from {h, t/tdg, cx}.
    Circuit c(4);
    c.h(0).h(1);
    c.cx(0, 2);
    c.t(2);
    c.cx(1, 2);
    c.tdg(2);
    c.cx(0, 2);
    c.cx(0, 3);
    c.tdg(3);
    c.cx(1, 3);
    c.t(3);
    c.cx(0, 3);
    c.x(2).x(3);
    c.cx(2, 3);
    return c;
}

Circuit dnn(int n, int layers, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> ang(-kPi, kPi);
    Circuit c(n);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            c.ry(ang(rng), q);
            c.rz(ang(rng), q);
        }
        for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
    }
    for (int q = 0; q < n; ++q) c.ry(ang(rng), q);
    return c;
}

Circuit ham7() {
    // Hamming(7,4)-style encoder: data qubits 0-3, parity qubits 4-6.
    Circuit c(7);
    for (int q = 0; q < 4; ++q) c.h(q);
    c.cx(0, 4).cx(1, 4).cx(3, 4);
    c.cx(0, 5).cx(2, 5).cx(3, 5);
    c.cx(1, 6).cx(2, 6).cx(3, 6);
    // Syndrome-style mixing round.
    c.h(4).h(5).h(6);
    c.cx(4, 0).cx(5, 1).cx(6, 2);
    c.t(0).tdg(1).t(2).tdg(3);
    c.cx(0, 3).cx(1, 3).cx(2, 3);
    return c;
}

Circuit qft(int n) {
    Circuit c(n);
    for (int q = n - 1; q >= 0; --q) {
        c.h(q);
        for (int j = q - 1; j >= 0; --j) c.cp(kPi / std::pow(2.0, q - j), j, q);
    }
    for (int q = 0; q < n / 2; ++q) c.swap(q, n - 1 - q);
    return c;
}

Circuit adder(int n) {
    // Cuccaro ripple-carry adder: a[0..n-1], b[0..n-1], carry-in, carry-out.
    const int a0 = 0, b0 = n, cin = 2 * n, cout = 2 * n + 1;
    Circuit c(2 * n + 2);
    const auto maj = [&](int x, int y, int z) { c.cx(z, y).cx(z, x).ccx(x, y, z); };
    const auto uma = [&](int x, int y, int z) { c.ccx(x, y, z).cx(z, x).cx(x, y); };
    maj(cin, b0, a0);
    for (int i = 1; i < n; ++i) maj(a0 + i - 1, b0 + i, a0 + i);
    c.cx(a0 + n - 1, cout);
    for (int i = n - 1; i >= 1; --i) uma(a0 + i - 1, b0 + i, a0 + i);
    uma(cin, b0, a0);
    return c;
}

Circuit wstate(int n) {
    // Staircase construction: start from |0...01>, then repeatedly split the
    // excitation forward with a controlled-RY and move it with a CNOT. After
    // step k the amplitude left on qubit k is exactly sqrt(1/n).
    Circuit c(n);
    c.x(0);
    for (int k = 0; k + 1 < n; ++k) {
        const double theta = 2 * std::acos(std::sqrt(1.0 / (n - k)));
        c.add(circuit::Gate(circuit::GateKind::CRY, {k, k + 1}, {theta}));
        c.cx(k + 1, k);
    }
    return c;
}

Circuit toffoli_circuit() {
    Circuit c(3);
    c.h(0).h(1).ccx(0, 1, 2).h(2).t(2);
    return c;
}

Circuit fredkin_circuit() {
    Circuit c(3);
    c.h(0).x(1).cswap(0, 1, 2).h(1).s(2);
    return c;
}

Circuit vqe(int n, int layers, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> ang(-kPi, kPi);
    Circuit c(n);
    for (int q = 0; q < n; ++q) c.ry(ang(rng), q);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) c.cx(q, (q + 1) % n);
        for (int q = 0; q < n; ++q) {
            c.rz(ang(rng), q);
            c.ry(ang(rng), q);
        }
    }
    return c;
}

Circuit grover(int n, int iterations) {
    Circuit c(n);
    for (int q = 0; q < n; ++q) c.h(q);
    for (int it = 0; it < iterations; ++it) {
        // Oracle marking |1...1>: a multi-controlled Z built from CCZ/CZ.
        if (n == 2) {
            c.cz(0, 1);
        } else {
            c.ccz(0, 1, 2);
            for (int q = 3; q < n; ++q) c.cz(q - 1, q);
        }
        // Diffusion.
        for (int q = 0; q < n; ++q) c.h(q);
        for (int q = 0; q < n; ++q) c.x(q);
        if (n == 2)
            c.cz(0, 1);
        else
            c.ccz(0, 1, 2);
        for (int q = 0; q < n; ++q) c.x(q);
        for (int q = 0; q < n; ++q) c.h(q);
    }
    return c;
}

Circuit ising(int n, int steps) {
    Circuit c(n);
    const double dt_j = 0.35, dt_h = 0.25;
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q) c.rzz(2 * dt_j, q, q + 1);
        for (int q = 0; q < n; ++q) c.rx(2 * dt_h, q);
    }
    return c;
}

Circuit qpe(int bits) {
    // Phase estimation of P(2*pi*theta) with theta = 1/5 on the last qubit.
    const double theta = 2 * kPi / 5.0;
    Circuit c(bits + 1);
    c.x(bits);
    for (int q = 0; q < bits; ++q) c.h(q);
    for (int q = 0; q < bits; ++q) {
        const double angle = theta * std::pow(2.0, q);
        c.cp(angle, q, bits);
    }
    // Inverse QFT on the readout register.
    for (int q = 0; q < bits / 2; ++q) c.swap(q, bits - 1 - q);
    for (int q = 0; q < bits; ++q) {
        for (int j = 0; j < q; ++j) c.cp(-kPi / std::pow(2.0, q - j), j, q);
        c.h(q);
    }
    return c;
}

Circuit qec_bit_flip(bool inject_error) {
    // Qubits 0-2: code block; 3-4: syndrome ancillas.
    Circuit c(5);
    c.ry(0.6, 0); // arbitrary logical state
    c.cx(0, 1).cx(0, 2);
    if (inject_error) c.x(1);
    c.cx(0, 3).cx(1, 3); // Z1 Z2 syndrome
    c.cx(1, 4).cx(2, 4); // Z2 Z3 syndrome
    // Correct by syndrome: (1,0) -> q0, (1,1) -> q1, (0,1) -> q2. Negated
    // controls are realised as X sandwiches.
    c.x(4);
    c.ccx(3, 4, 0);
    c.x(4);
    c.ccx(3, 4, 1);
    c.x(3);
    c.ccx(3, 4, 2);
    c.x(3);
    return c;
}

Circuit deutsch_jozsa(int n) {
    Circuit c(n + 1);
    c.x(n).h(n);
    for (int q = 0; q < n; ++q) c.h(q);
    // Balanced oracle: parity of all inputs.
    for (int q = 0; q < n; ++q) c.cx(q, n);
    for (int q = 0; q < n; ++q) c.h(q);
    return c;
}

Circuit hidden_shift(int n, std::uint64_t shift) {
    if (n % 2 != 0) throw std::invalid_argument("hidden_shift: n must be even");
    Circuit c(n);
    for (int q = 0; q < n; ++q) c.h(q);
    // Shifted bent function f(x+s): X on shifted bits around the oracle.
    for (int q = 0; q < n; ++q)
        if (shift & (std::uint64_t{1} << q)) c.x(q);
    for (int q = 0; q < n / 2; ++q) c.cz(2 * q, 2 * q + 1);
    for (int q = 0; q < n; ++q)
        if (shift & (std::uint64_t{1} << q)) c.x(q);
    for (int q = 0; q < n; ++q) c.h(q);
    // Dual bent function.
    for (int q = 0; q < n / 2; ++q) c.cz(2 * q, 2 * q + 1);
    for (int q = 0; q < n; ++q) c.h(q);
    return c;
}

std::vector<NamedCircuit> figure_suite() {
    return {
        {"ghz5", ghz(5)},
        {"bell4", bell_pairs(4)},
        {"bv5", bv(4)},
        {"simon4", simon(2)},
        {"bb84_5", bb84(5)},
        {"qaoa4", qaoa(4, 1)},
        {"decod24", decod24()},
        {"dnn4", dnn(4, 2)},
        {"ham7", ham7()},
        {"qft4", qft(4)},
        {"adder2", adder(1)},
        {"wstate4", wstate(4)},
        {"toffoli", toffoli_circuit()},
        {"fredkin", fredkin_circuit()},
        {"vqe4", vqe(4, 1)},
        {"grover3", grover(3, 1)},
        {"ising5", ising(5, 2)},
    };
}

std::vector<NamedCircuit> table1_suite() {
    return {
        {"simon", simon(2)},  {"bb84", bb84(4)}, {"bv", bv(4)},   {"qaoa", qaoa(4, 1)},
        {"decod24", decod24()}, {"dnn", dnn(4, 2)}, {"ham7", ham7()},
    };
}

} // namespace epoc::bench
