// QASMBench-style benchmark circuit generators.
//
// Structurally faithful C++ reimplementations of the circuit families the
// paper evaluates on (QASMBench, Li et al. 2020): the seven Table-1 programs
// (simon, bb84, bv, qaoa, decod24, dnn, ham7) and enough additional families
// to fill the 17-benchmark suite of Figures 8-10. Sizes are parameterized;
// defaults stay small enough that per-block GRAPE runs are tractable on one
// core (see DESIGN.md scale note).
#pragma once

#include "circuit/circuit.h"

#include <cstdint>
#include <string>
#include <vector>

namespace epoc::bench {

using circuit::Circuit;

Circuit ghz(int n);
Circuit bell_pairs(int n);
/// Bernstein-Vazirani with an n-bit secret (bit i of `secret`).
Circuit bv(int n, std::uint64_t secret = 0b1011011);
/// Simon's algorithm oracle circuit on 2n qubits with period `s`.
Circuit simon(int n, std::uint64_t s = 0b11);
/// BB84 state-preparation layer (basis choices from `seed`).
Circuit bb84(int n, std::uint64_t seed = 7);
/// QAOA MaxCut on a ring, p layers, fixed angles.
Circuit qaoa(int n, int p = 1);
/// QASMBench decod24-style 2-to-4 decoder (4 qubits).
Circuit decod24();
/// Quantum-neural-network ansatz: RY/RZ rotation layers + CX ladders.
Circuit dnn(int n, int layers = 2, std::uint64_t seed = 3);
/// Hamming(7,4) encoder-style circuit (7 qubits).
Circuit ham7();
/// Quantum Fourier transform.
Circuit qft(int n);
/// Cuccaro-style ripple-carry adder on 2n+2 qubits.
Circuit adder(int n);
/// W-state preparation.
Circuit wstate(int n);
/// Single Toffoli / Fredkin circuits (3 qubits).
Circuit toffoli_circuit();
Circuit fredkin_circuit();
/// Hardware-efficient VQE ansatz.
Circuit vqe(int n, int layers = 2, std::uint64_t seed = 11);
/// Grover search with a marked-state oracle (n data qubits).
Circuit grover(int n, int iterations = 1);
/// First-order trotterized transverse-field Ising evolution.
Circuit ising(int n, int steps = 2);
/// Quantum phase estimation with `bits` readout qubits on a 1-qubit system.
Circuit qpe(int bits);
/// Three-qubit bit-flip repetition code: encode, inject an optional X error,
/// extract the syndrome onto two ancillas, and correct with Toffolis.
Circuit qec_bit_flip(bool inject_error = true);
/// Deutsch-Jozsa on n data qubits with a balanced (parity) oracle.
Circuit deutsch_jozsa(int n);
/// Hidden-shift problem for bent functions on n qubits (n even).
Circuit hidden_shift(int n, std::uint64_t shift = 0b1010);

struct NamedCircuit {
    std::string name;
    Circuit circuit;
};

/// The 17-benchmark suite used by the Figure 8/9/10 benches.
std::vector<NamedCircuit> figure_suite();

/// The 7 Table-1 programs, in the paper's row order.
std::vector<NamedCircuit> table1_suite();

} // namespace epoc::bench
