#include "bench_circuits/random_circuits.h"

#include <numbers>
#include <random>

namespace epoc::bench {

circuit::Circuit random_circuit(const RandomCircuitSpec& spec) {
    std::mt19937_64 rng(spec.seed);
    std::uniform_int_distribution<int> qd(0, spec.num_qubits - 1);
    std::uniform_int_distribution<int> gd(0, 7);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_real_distribution<double> ang(-std::numbers::pi, std::numbers::pi);

    circuit::Circuit c(spec.num_qubits);
    for (int i = 0; i < spec.num_gates; ++i) {
        const int q = qd(rng);
        if (uni(rng) < spec.non_clifford_fraction) {
            if (rng() & 1)
                c.t(q);
            else
                c.rz(ang(rng), q);
            continue;
        }
        switch (gd(rng)) {
        case 0: c.h(q); break;
        case 1: c.s(q); break;
        case 2: c.x(q); break;
        case 3: c.z(q); break;
        case 4: c.sx(q); break;
        default: {
            if (spec.num_qubits < 2) {
                c.h(q);
                break;
            }
            int q2 = qd(rng);
            while (q2 == q) q2 = qd(rng);
            if (rng() & 1)
                c.cx(q, q2);
            else
                c.cz(q, q2);
            break;
        }
        }
    }
    return c;
}

} // namespace epoc::bench
