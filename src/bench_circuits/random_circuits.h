// Random circuit generators for the Figure 5 sweep and for property tests.
#pragma once

#include "circuit/circuit.h"

#include <cstdint>

namespace epoc::bench {

struct RandomCircuitSpec {
    int num_qubits = 4;
    int num_gates = 40;
    /// Probability weight of non-Clifford gates (t / arbitrary rz); 0 gives a
    /// pure Clifford circuit, which ZX reduces hardest.
    double non_clifford_fraction = 0.2;
    std::uint64_t seed = 1;
};

circuit::Circuit random_circuit(const RandomCircuitSpec& spec);

} // namespace epoc::bench
