#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace epoc::circuit {

void Circuit::add(Gate g) {
    if (g.qubits.empty()) throw std::invalid_argument("Circuit::add: gate with no qubits");
    const int arity = kind_arity(g.kind);
    if (arity != 0 && arity != g.arity())
        throw std::invalid_argument("Circuit::add: wrong qubit count for " +
                                    kind_name(g.kind));
    if (kind_num_params(g.kind) > static_cast<int>(g.params.size()))
        throw std::invalid_argument("Circuit::add: missing params for " + kind_name(g.kind));
    std::vector<int> sorted = g.qubits;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        throw std::invalid_argument("Circuit::add: duplicate qubit operands");
    for (const int q : g.qubits)
        if (q < 0 || q >= num_qubits_)
            throw std::out_of_range("Circuit::add: qubit index out of range");
    if (g.is_explicit_unitary()) {
        if (!g.matrix) throw std::invalid_argument("Circuit::add: VUG without matrix");
        const std::size_t dim = std::size_t{1} << g.qubits.size();
        if (g.matrix->rows() != dim || g.matrix->cols() != dim)
            throw std::invalid_argument("Circuit::add: VUG matrix dimension mismatch");
    }
    gates_.push_back(std::move(g));
}

void Circuit::set_gate_params(std::size_t i, std::vector<double> params) {
    Gate& g = gates_.at(i);
    if (kind_num_params(g.kind) > static_cast<int>(params.size()))
        throw std::invalid_argument("Circuit::set_gate_params: missing params for " +
                                    kind_name(g.kind));
    g.params = std::move(params);
}

Circuit& Circuit::emit(GateKind k, std::vector<int> qs, std::vector<double> ps) {
    add(Gate(k, std::move(qs), std::move(ps)));
    return *this;
}

void Circuit::append(const Circuit& other) {
    if (other.num_qubits_ > num_qubits_)
        throw std::invalid_argument("Circuit::append: other circuit is wider");
    for (const Gate& g : other.gates_) add(g);
}

void Circuit::append_mapped(const Circuit& other, const std::vector<int>& mapping) {
    if (static_cast<int>(mapping.size()) < other.num_qubits_)
        throw std::invalid_argument("Circuit::append_mapped: mapping too short");
    for (Gate g : other.gates_) {
        for (int& q : g.qubits) q = mapping.at(static_cast<std::size_t>(q));
        add(std::move(g));
    }
}

Circuit Circuit::inverse() const {
    Circuit inv(num_qubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) inv.add(it->inverse());
    return inv;
}

int Circuit::depth() const {
    std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
    int d = 0;
    for (const Gate& g : gates_) {
        int at = 0;
        for (const int q : g.qubits) at = std::max(at, level[static_cast<std::size_t>(q)]);
        for (const int q : g.qubits) level[static_cast<std::size_t>(q)] = at + 1;
        d = std::max(d, at + 1);
    }
    return d;
}

std::vector<std::vector<std::size_t>> Circuit::moments() const {
    std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
    std::vector<std::vector<std::size_t>> out;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate& g = gates_[i];
        int at = 0;
        for (const int q : g.qubits) at = std::max(at, level[static_cast<std::size_t>(q)]);
        for (const int q : g.qubits) level[static_cast<std::size_t>(q)] = at + 1;
        if (static_cast<std::size_t>(at) >= out.size()) out.resize(static_cast<std::size_t>(at) + 1);
        out[static_cast<std::size_t>(at)].push_back(i);
    }
    return out;
}

std::size_t Circuit::count_kind(GateKind k) const {
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [k](const Gate& g) { return g.kind == k; }));
}

std::size_t Circuit::multi_qubit_count() const {
    return static_cast<std::size_t>(std::count_if(
        gates_.begin(), gates_.end(), [](const Gate& g) { return g.arity() >= 2; }));
}

std::size_t Circuit::t_count() const {
    return count_kind(GateKind::T) + count_kind(GateKind::Tdg);
}

std::string Circuit::to_string() const {
    std::ostringstream os;
    os << "circuit(" << num_qubits_ << " qubits, " << gates_.size() << " gates, depth "
       << depth() << ")\n";
    for (const Gate& g : gates_) os << "  " << g.to_string() << "\n";
    return os.str();
}

} // namespace epoc::circuit
