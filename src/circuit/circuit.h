// Circuit container: an ordered list of gates over a fixed qubit register,
// with structural queries (depth, moments, per-kind counts) used by the ZX
// optimizer, the partitioner and the schedulers.
#pragma once

#include "circuit/gate.h"

#include <string>
#include <vector>

namespace epoc::circuit {

class Circuit {
public:
    Circuit() = default;
    explicit Circuit(int num_qubits) : num_qubits_(num_qubits) {}

    int num_qubits() const noexcept { return num_qubits_; }
    std::size_t size() const noexcept { return gates_.size(); }
    bool empty() const noexcept { return gates_.empty(); }

    const std::vector<Gate>& gates() const noexcept { return gates_; }
    const Gate& gate(std::size_t i) const { return gates_.at(i); }

    /// Append a gate; validates qubit indices and arity.
    void add(Gate g);

    /// Replace gate i's parameter vector (same validation as add: the kind's
    /// declared parameter count must still be covered). The structural parts
    /// of the gate — kind, qubits, attached matrix — are immutable; this is
    /// the plan-cache binding hook (circuit/structure.h), not a general
    /// editor.
    void set_gate_params(std::size_t i, std::vector<double> params);

    // Convenience builders (return *this for chaining).
    Circuit& x(int q) { return emit(GateKind::X, {q}); }
    Circuit& y(int q) { return emit(GateKind::Y, {q}); }
    Circuit& z(int q) { return emit(GateKind::Z, {q}); }
    Circuit& h(int q) { return emit(GateKind::H, {q}); }
    Circuit& s(int q) { return emit(GateKind::S, {q}); }
    Circuit& sdg(int q) { return emit(GateKind::Sdg, {q}); }
    Circuit& t(int q) { return emit(GateKind::T, {q}); }
    Circuit& tdg(int q) { return emit(GateKind::Tdg, {q}); }
    Circuit& sx(int q) { return emit(GateKind::SX, {q}); }
    Circuit& rx(double th, int q) { return emit(GateKind::RX, {q}, {th}); }
    Circuit& ry(double th, int q) { return emit(GateKind::RY, {q}, {th}); }
    Circuit& rz(double th, int q) { return emit(GateKind::RZ, {q}, {th}); }
    Circuit& p(double th, int q) { return emit(GateKind::P, {q}, {th}); }
    Circuit& u3(double th, double ph, double la, int q) {
        return emit(GateKind::U3, {q}, {th, ph, la});
    }
    Circuit& cx(int c, int t) { return emit(GateKind::CX, {c, t}); }
    Circuit& cy(int c, int t) { return emit(GateKind::CY, {c, t}); }
    Circuit& cz(int c, int t) { return emit(GateKind::CZ, {c, t}); }
    Circuit& ch(int c, int t) { return emit(GateKind::CH, {c, t}); }
    Circuit& swap(int a, int b) { return emit(GateKind::SWAP, {a, b}); }
    Circuit& cp(double th, int c, int t) { return emit(GateKind::CP, {c, t}, {th}); }
    Circuit& crz(double th, int c, int t) { return emit(GateKind::CRZ, {c, t}, {th}); }
    Circuit& rzz(double th, int a, int b) { return emit(GateKind::RZZ, {a, b}, {th}); }
    Circuit& rxx(double th, int a, int b) { return emit(GateKind::RXX, {a, b}, {th}); }
    Circuit& ccx(int c1, int c2, int t) { return emit(GateKind::CCX, {c1, c2, t}); }
    Circuit& ccz(int c1, int c2, int t) { return emit(GateKind::CCZ, {c1, c2, t}); }
    Circuit& cswap(int c, int a, int b) { return emit(GateKind::CSWAP, {c, a, b}); }

    /// Append all gates of `other` (qubit counts must allow it).
    void append(const Circuit& other);

    /// Append `other` with its qubit i mapped to `mapping[i]`.
    void append_mapped(const Circuit& other, const std::vector<int>& mapping);

    /// Circuit implementing the inverse unitary (gates reversed and inverted).
    Circuit inverse() const;

    /// ASAP logical depth: length of the longest chain of gates sharing qubits.
    int depth() const;

    /// ASAP layering: moments()[d] lists gate indices scheduled at depth d.
    std::vector<std::vector<std::size_t>> moments() const;

    std::size_t count_kind(GateKind k) const;
    /// Number of gates acting on >= 2 qubits.
    std::size_t multi_qubit_count() const;
    std::size_t two_qubit_count() const { return multi_qubit_count(); }
    /// Number of T/Tdg gates (ZX optimization quality metric).
    std::size_t t_count() const;

    /// Multi-line printable listing.
    std::string to_string() const;

private:
    Circuit& emit(GateKind k, std::vector<int> qs, std::vector<double> ps = {});

    int num_qubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace epoc::circuit
