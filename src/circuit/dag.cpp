#include "circuit/dag.h"

#include <algorithm>

namespace epoc::circuit {

double GateWeights::of(const Gate& g) const {
    switch (g.kind) {
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::I:
        return virtual_rz;
    default:
        break;
    }
    switch (g.arity()) {
    case 1: return single_qubit;
    case 2: return two_qubit;
    default: return three_qubit;
    }
}

CircuitDag::CircuitDag(const Circuit& c, GateWeights weights) {
    const std::size_t n = c.size();
    preds_.resize(n);
    succs_.resize(n);
    weight_.resize(n);
    asap_.assign(n, 0.0);
    alap_.assign(n, 0.0);

    std::vector<int> last(static_cast<std::size_t>(c.num_qubits()), -1);
    for (std::size_t i = 0; i < n; ++i) {
        const Gate& g = c.gate(i);
        weight_[i] = weights.of(g);
        for (const int q : g.qubits) {
            const int prev = last[static_cast<std::size_t>(q)];
            if (prev >= 0) {
                const std::size_t p = static_cast<std::size_t>(prev);
                if (std::find(succs_[p].begin(), succs_[p].end(), i) == succs_[p].end()) {
                    succs_[p].push_back(i);
                    preds_[i].push_back(p);
                }
            }
            last[static_cast<std::size_t>(q)] = static_cast<int>(i);
        }
    }

    // ASAP forward pass (gate order is already topological).
    for (std::size_t i = 0; i < n; ++i)
        for (const std::size_t p : preds_[i])
            asap_[i] = std::max(asap_[i], asap_[p] + weight_[p]);
    critical_length_ = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        critical_length_ = std::max(critical_length_, asap_[i] + weight_[i]);

    // ALAP backward pass.
    for (std::size_t ii = n; ii-- > 0;) {
        if (succs_[ii].empty()) {
            alap_[ii] = critical_length_ - weight_[ii];
            continue;
        }
        double latest = critical_length_;
        for (const std::size_t s : succs_[ii]) latest = std::min(latest, alap_[s]);
        alap_[ii] = latest - weight_[ii];
    }
}

std::vector<std::size_t> CircuitDag::critical_gates(double tol) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < preds_.size(); ++i)
        if (slack(i) <= tol) out.push_back(i);
    return out;
}

double CircuitDag::criticality(std::size_t gate) const {
    if (critical_length_ <= 0.0) return 1.0;
    return 1.0 - slack(gate) / critical_length_;
}

} // namespace epoc::circuit
