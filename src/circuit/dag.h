// Gate dependency DAG with criticality analysis.
//
// Nodes are gate indices; an edge u -> v means v is the next gate touching
// one of u's qubits. ASAP/ALAP levels, slack, and weighted critical paths
// are the machinery behind PAQOC-style "criticality analysis": grouping
// decisions should spend pulse-optimization effort where the critical path
// runs (Chen et al., HPCA'23).
#pragma once

#include "circuit/circuit.h"

#include <vector>

namespace epoc::circuit {

/// Default duration estimates used for criticality weighting [ns].
struct GateWeights {
    double single_qubit = 10.0;
    double two_qubit = 40.0;
    double three_qubit = 90.0;
    /// Diagonal Z rotations are virtual (frame updates).
    double virtual_rz = 0.0;

    double of(const Gate& g) const;
};

class CircuitDag {
public:
    explicit CircuitDag(const Circuit& c, GateWeights weights = {});

    std::size_t size() const { return preds_.size(); }
    const std::vector<std::size_t>& predecessors(std::size_t gate) const {
        return preds_.at(gate);
    }
    const std::vector<std::size_t>& successors(std::size_t gate) const {
        return succs_.at(gate);
    }

    /// Earliest possible start time of each gate (weighted ASAP).
    const std::vector<double>& asap() const { return asap_; }
    /// Latest start time that does not stretch the critical path.
    const std::vector<double>& alap() const { return alap_; }
    /// alap - asap: zero on the critical path.
    double slack(std::size_t gate) const { return alap_[gate] - asap_[gate]; }

    /// Weighted critical-path length (the schedule lower bound).
    double critical_path_length() const { return critical_length_; }
    /// Gate indices with zero slack, in topological (program) order.
    std::vector<std::size_t> critical_gates(double tol = 1e-9) const;

    /// Criticality in [0, 1]: 1 = on the critical path.
    double criticality(std::size_t gate) const;

private:
    std::vector<std::vector<std::size_t>> preds_;
    std::vector<std::vector<std::size_t>> succs_;
    std::vector<double> weight_;
    std::vector<double> asap_;
    std::vector<double> alap_;
    double critical_length_ = 0.0;
};

} // namespace epoc::circuit
