#include "circuit/decompose.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace epoc::circuit {

namespace {

constexpr double kPi = std::numbers::pi;

/// Emit a single-qubit unitary in the requested basis onto `out`.
void emit_single_qubit(Circuit& out, const Matrix& u, int q, Basis basis) {
    const Zyz e = zyz_decompose(u);
    if (basis == Basis::U3_CX) {
        out.u3(e.theta, e.phi, e.lambda, q);
        return;
    }
    // Z-diagonal unitaries are a single virtual RZ on IBM-style hardware; do
    // not spend two SX pulses on them.
    if (std::abs(u(0, 1)) < 1e-12 && std::abs(u(1, 0)) < 1e-12) {
        const double angle = std::arg(u(1, 1)) - std::arg(u(0, 0));
        if (std::abs(angle) > 1e-12) out.rz(angle, q);
        return;
    }
    // U3(theta, phi, lambda) == RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda)
    // up to global phase (Qiskit's standard sx-basis equivalence). RZ gates
    // are virtual on IBM hardware; only the two SX pulses cost time.
    out.rz(e.lambda, q);
    out.sx(q);
    out.rz(e.theta + kPi, q);
    out.sx(q);
    out.rz(e.phi + kPi, q);
}

void emit_kind(Circuit& out, GateKind k, const std::vector<int>& q,
               const std::vector<double>& p, Basis basis);

void emit(Circuit& out, GateKind k, std::vector<int> q, std::vector<double> p,
          Basis basis) {
    emit_kind(out, k, q, p, basis);
}

void emit_kind(Circuit& out, GateKind k, const std::vector<int>& q,
               const std::vector<double>& p, Basis basis) {
    switch (k) {
    case GateKind::CX:
        out.cx(q[0], q[1]);
        return;
    case GateKind::I:
        return;
    // --- single-qubit gates: lower via ZYZ ---
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::U3:
        emit_single_qubit(out, kind_matrix(k, p), q[0], basis);
        return;
    // --- two-qubit gates: standard CX-based expansions (qelib1) ---
    case GateKind::CZ:
        emit(out, GateKind::H, {q[1]}, {}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        return;
    case GateKind::CY:
        emit(out, GateKind::Sdg, {q[1]}, {}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::S, {q[1]}, {}, basis);
        return;
    case GateKind::CH:
        // qelib1 ch expansion.
        emit(out, GateKind::H, {q[1]}, {}, basis);
        emit(out, GateKind::Sdg, {q[1]}, {}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        emit(out, GateKind::T, {q[1]}, {}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::T, {q[1]}, {}, basis);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        emit(out, GateKind::S, {q[1]}, {}, basis);
        emit(out, GateKind::X, {q[1]}, {}, basis);
        emit(out, GateKind::S, {q[0]}, {}, basis);
        return;
    case GateKind::SWAP:
        out.cx(q[0], q[1]);
        out.cx(q[1], q[0]);
        out.cx(q[0], q[1]);
        return;
    case GateKind::ISWAP:
        emit(out, GateKind::S, {q[0]}, {}, basis);
        emit(out, GateKind::S, {q[1]}, {}, basis);
        emit(out, GateKind::H, {q[0]}, {}, basis);
        out.cx(q[0], q[1]);
        out.cx(q[1], q[0]);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        return;
    case GateKind::CP:
        emit(out, GateKind::P, {q[0]}, {p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::P, {q[1]}, {-p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::P, {q[1]}, {p[0] / 2}, basis);
        return;
    case GateKind::CRZ:
        emit(out, GateKind::RZ, {q[1]}, {p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::RZ, {q[1]}, {-p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        return;
    case GateKind::CRY:
        emit(out, GateKind::RY, {q[1]}, {p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::RY, {q[1]}, {-p[0] / 2}, basis);
        out.cx(q[0], q[1]);
        return;
    case GateKind::CRX:
        // qelib1 crx expansion.
        emit(out, GateKind::P, {q[1]}, {kPi / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::U3, {q[1]}, {-p[0] / 2, 0.0, 0.0}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::U3, {q[1]}, {p[0] / 2, -kPi / 2, 0.0}, basis);
        return;
    case GateKind::RZZ:
        out.cx(q[0], q[1]);
        emit(out, GateKind::RZ, {q[1]}, {p[0]}, basis);
        out.cx(q[0], q[1]);
        return;
    case GateKind::RXX:
        emit(out, GateKind::H, {q[0]}, {}, basis);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::RZ, {q[1]}, {p[0]}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::H, {q[0]}, {}, basis);
        emit(out, GateKind::H, {q[1]}, {}, basis);
        return;
    case GateKind::RYY:
        emit(out, GateKind::RX, {q[0]}, {kPi / 2}, basis);
        emit(out, GateKind::RX, {q[1]}, {kPi / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::RZ, {q[1]}, {p[0]}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::RX, {q[0]}, {-kPi / 2}, basis);
        emit(out, GateKind::RX, {q[1]}, {-kPi / 2}, basis);
        return;
    case GateKind::CU3:
        // qelib1 cu3(theta, phi, lambda).
        emit(out, GateKind::P, {q[0]}, {(p[2] + p[1]) / 2}, basis);
        emit(out, GateKind::P, {q[1]}, {(p[2] - p[1]) / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::U3, {q[1]}, {-p[0] / 2, 0.0, -(p[1] + p[2]) / 2}, basis);
        out.cx(q[0], q[1]);
        emit(out, GateKind::U3, {q[1]}, {p[0] / 2, p[1], 0.0}, basis);
        return;
    // --- three-qubit gates ---
    case GateKind::CCX: {
        const int a = q[0], b = q[1], c = q[2];
        emit(out, GateKind::H, {c}, {}, basis);
        out.cx(b, c);
        emit(out, GateKind::Tdg, {c}, {}, basis);
        out.cx(a, c);
        emit(out, GateKind::T, {c}, {}, basis);
        out.cx(b, c);
        emit(out, GateKind::Tdg, {c}, {}, basis);
        out.cx(a, c);
        emit(out, GateKind::T, {b}, {}, basis);
        emit(out, GateKind::T, {c}, {}, basis);
        emit(out, GateKind::H, {c}, {}, basis);
        out.cx(a, b);
        emit(out, GateKind::T, {a}, {}, basis);
        emit(out, GateKind::Tdg, {b}, {}, basis);
        out.cx(a, b);
        return;
    }
    case GateKind::CCZ:
        emit(out, GateKind::H, {q[2]}, {}, basis);
        emit(out, GateKind::CCX, q, {}, basis);
        emit(out, GateKind::H, {q[2]}, {}, basis);
        return;
    case GateKind::CSWAP:
        out.cx(q[2], q[1]);
        emit(out, GateKind::CCX, {q[0], q[1], q[2]}, {}, basis);
        out.cx(q[2], q[1]);
        return;
    case GateKind::VUG:
    case GateKind::UNITARY:
        throw std::invalid_argument("decompose: explicit-unitary gate reached emit_kind");
    }
    throw std::invalid_argument("decompose: unhandled kind");
}

} // namespace

Zyz zyz_decompose(const Matrix& u) {
    if (u.rows() != 2 || u.cols() != 2)
        throw std::invalid_argument("zyz_decompose: expected a 2x2 matrix");
    Zyz e;
    const double c = std::abs(u(0, 0));
    const double s = std::abs(u(1, 0));
    e.theta = 2.0 * std::atan2(s, c);
    constexpr double kEps = 1e-12;
    if (c > kEps && s > kEps) {
        e.phase = std::arg(u(0, 0));
        e.phi = std::arg(u(1, 0)) - e.phase;
        e.lambda = std::arg(-u(0, 1)) - e.phase;
    } else if (s <= kEps) {
        // theta ~ 0: only phi+lambda is determined; put it all in phi.
        e.phase = std::arg(u(0, 0));
        e.lambda = 0.0;
        e.phi = std::arg(u(1, 1)) - e.phase;
    } else {
        // theta ~ pi: only phi-lambda is determined; put it all in phi.
        e.lambda = 0.0;
        e.phase = std::arg(-u(0, 1));
        e.phi = std::arg(u(1, 0)) - e.phase;
    }
    return e;
}

Circuit decompose_gate(const Gate& g, Basis basis, int num_qubits) {
    Circuit out(num_qubits);
    if (g.is_explicit_unitary()) {
        if (g.arity() != 1)
            throw std::invalid_argument(
                "decompose_gate: multi-qubit explicit unitaries require synthesis");
        emit_single_qubit(out, g.unitary(), g.qubits[0], basis);
        return out;
    }
    emit_kind(out, g.kind, g.qubits, g.params, basis);
    return out;
}

Circuit transpile(const Circuit& c, Basis basis) {
    Circuit out(c.num_qubits());
    for (const Gate& g : c.gates()) out.append(decompose_gate(g, basis, c.num_qubits()));
    return out;
}

} // namespace epoc::circuit
