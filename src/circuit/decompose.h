// Gate decomposition / transpilation passes.
//
// The gate-based pulse baseline (Table 1, "Gate-based" column) plays circuits
// as calibrated per-gate pulses over a native basis; these passes lower an
// arbitrary circuit to that basis. All expansions are exact up to global
// phase and are property-tested against the original unitaries.
#pragma once

#include "circuit/circuit.h"

namespace epoc::circuit {

/// Native basis targets.
enum class Basis {
    U3_CX,    ///< arbitrary single-qubit U3 + CNOT
    RZ_SX_CX, ///< IBM-style {rz, sx, x, cx} (rz is virtual / zero duration)
};

/// ZYZ Euler angles: u == e^{i*phase} * u3(theta, phi, lambda).
struct Zyz {
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
    double phase = 0.0;
};

/// Decompose an arbitrary 2x2 unitary.
Zyz zyz_decompose(const Matrix& u);

/// Expand one gate into basis gates on the same qubits (global phase dropped).
Circuit decompose_gate(const Gate& g, Basis basis, int num_qubits);

/// Lower the whole circuit to the basis. Explicit-unitary gates are accepted
/// only for arity 1 (via ZYZ); larger VUGs require synthesis first.
Circuit transpile(const Circuit& c, Basis basis);

} // namespace epoc::circuit
