#include "circuit/gate.h"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace epoc::circuit {

namespace {

constexpr cplx kI{0.0, 1.0};

Matrix controlled(const Matrix& u) {
    // Control = local qubit 0, target = local qubit 1 (little-endian): the
    // control bit selects the odd basis indices {1, 3}.
    Matrix m = Matrix::identity(4);
    m(1, 1) = u(0, 0);
    m(1, 3) = u(0, 1);
    m(3, 1) = u(1, 0);
    m(3, 3) = u(1, 1);
    return m;
}

} // namespace

Matrix pauli_x() { return Matrix{{cplx{0, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{0, 0}}}; }
Matrix pauli_y() { return Matrix{{cplx{0, 0}, -kI}, {kI, cplx{0, 0}}}; }
Matrix pauli_z() { return Matrix{{cplx{1, 0}, cplx{0, 0}}, {cplx{0, 0}, cplx{-1, 0}}}; }

Matrix hadamard() {
    const double s = 1.0 / std::numbers::sqrt2;
    return Matrix{{cplx{s, 0}, cplx{s, 0}}, {cplx{s, 0}, cplx{-s, 0}}};
}

Matrix rx_matrix(double theta) {
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return Matrix{{cplx{c, 0}, cplx{0, -s}}, {cplx{0, -s}, cplx{c, 0}}};
}

Matrix ry_matrix(double theta) {
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return Matrix{{cplx{c, 0}, cplx{-s, 0}}, {cplx{s, 0}, cplx{c, 0}}};
}

Matrix rz_matrix(double theta) {
    return Matrix{{std::polar(1.0, -theta / 2), cplx{0, 0}},
                  {cplx{0, 0}, std::polar(1.0, theta / 2)}};
}

Matrix u3_matrix(double theta, double phi, double lambda) {
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return Matrix{{cplx{c, 0}, -std::polar(s, lambda)},
                  {std::polar(s, phi), std::polar(c, phi + lambda)}};
}

int kind_arity(GateKind k) {
    switch (k) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::U3:
        return 1;
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::SWAP:
    case GateKind::ISWAP:
    case GateKind::CP:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::RZZ:
    case GateKind::CU3:
        return 2;
    case GateKind::CCX:
    case GateKind::CCZ:
    case GateKind::CSWAP:
        return 3;
    case GateKind::VUG:
    case GateKind::UNITARY:
        return 0;
    }
    return 0;
}

int kind_num_params(GateKind k) {
    switch (k) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::RZZ:
        return 1;
    case GateKind::U3:
    case GateKind::CU3:
        return 3;
    default:
        return 0;
    }
}

std::string kind_name(GateKind k) {
    switch (k) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::SXdg: return "sxdg";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "p";
    case GateKind::U3: return "u3";
    case GateKind::CX: return "cx";
    case GateKind::CY: return "cy";
    case GateKind::CZ: return "cz";
    case GateKind::CH: return "ch";
    case GateKind::SWAP: return "swap";
    case GateKind::ISWAP: return "iswap";
    case GateKind::CP: return "cp";
    case GateKind::CRX: return "crx";
    case GateKind::CRY: return "cry";
    case GateKind::CRZ: return "crz";
    case GateKind::RXX: return "rxx";
    case GateKind::RYY: return "ryy";
    case GateKind::RZZ: return "rzz";
    case GateKind::CU3: return "cu3";
    case GateKind::CCX: return "ccx";
    case GateKind::CCZ: return "ccz";
    case GateKind::CSWAP: return "cswap";
    case GateKind::VUG: return "vug";
    case GateKind::UNITARY: return "unitary";
    }
    return "?";
}

GateKind kind_from_name(const std::string& name) {
    static const std::unordered_map<std::string, GateKind> table = {
        {"id", GateKind::I},      {"i", GateKind::I},     {"x", GateKind::X},
        {"y", GateKind::Y},       {"z", GateKind::Z},     {"h", GateKind::H},
        {"s", GateKind::S},       {"sdg", GateKind::Sdg}, {"t", GateKind::T},
        {"tdg", GateKind::Tdg},   {"sx", GateKind::SX},   {"sxdg", GateKind::SXdg},
        {"rx", GateKind::RX},     {"ry", GateKind::RY},   {"rz", GateKind::RZ},
        {"p", GateKind::P},       {"u1", GateKind::P},    {"phase", GateKind::P},
        {"u3", GateKind::U3},     {"u", GateKind::U3},    {"cx", GateKind::CX},
        {"cnot", GateKind::CX},   {"cy", GateKind::CY},   {"cz", GateKind::CZ},
        {"ch", GateKind::CH},     {"swap", GateKind::SWAP}, {"iswap", GateKind::ISWAP},
        {"cp", GateKind::CP},     {"cu1", GateKind::CP},  {"crx", GateKind::CRX},
        {"cry", GateKind::CRY},   {"crz", GateKind::CRZ}, {"rxx", GateKind::RXX},
        {"ryy", GateKind::RYY},   {"rzz", GateKind::RZZ}, {"cu3", GateKind::CU3},
        {"ccx", GateKind::CCX},   {"toffoli", GateKind::CCX}, {"ccz", GateKind::CCZ},
        {"cswap", GateKind::CSWAP}, {"fredkin", GateKind::CSWAP},
    };
    const auto it = table.find(name);
    if (it == table.end()) throw std::invalid_argument("unknown gate name: " + name);
    return it->second;
}

Matrix kind_matrix(GateKind k, const std::vector<double>& params) {
    const auto need = [&](int n) {
        if (static_cast<int>(params.size()) < n)
            throw std::invalid_argument("kind_matrix: missing parameters for " +
                                        kind_name(k));
    };
    switch (k) {
    case GateKind::I: return Matrix::identity(2);
    case GateKind::X: return pauli_x();
    case GateKind::Y: return pauli_y();
    case GateKind::Z: return pauli_z();
    case GateKind::H: return hadamard();
    case GateKind::S: return Matrix{{cplx{1, 0}, cplx{0, 0}}, {cplx{0, 0}, kI}};
    case GateKind::Sdg: return Matrix{{cplx{1, 0}, cplx{0, 0}}, {cplx{0, 0}, -kI}};
    case GateKind::T:
        return Matrix{{cplx{1, 0}, cplx{0, 0}},
                      {cplx{0, 0}, std::polar(1.0, std::numbers::pi / 4)}};
    case GateKind::Tdg:
        return Matrix{{cplx{1, 0}, cplx{0, 0}},
                      {cplx{0, 0}, std::polar(1.0, -std::numbers::pi / 4)}};
    case GateKind::SX:
        return Matrix{{cplx{0.5, 0.5}, cplx{0.5, -0.5}}, {cplx{0.5, -0.5}, cplx{0.5, 0.5}}};
    case GateKind::SXdg:
        return Matrix{{cplx{0.5, -0.5}, cplx{0.5, 0.5}}, {cplx{0.5, 0.5}, cplx{0.5, -0.5}}};
    case GateKind::RX: need(1); return rx_matrix(params[0]);
    case GateKind::RY: need(1); return ry_matrix(params[0]);
    case GateKind::RZ: need(1); return rz_matrix(params[0]);
    case GateKind::P: {
        need(1);
        return Matrix{{cplx{1, 0}, cplx{0, 0}}, {cplx{0, 0}, std::polar(1.0, params[0])}};
    }
    case GateKind::U3: need(3); return u3_matrix(params[0], params[1], params[2]);
    case GateKind::CX: return controlled(pauli_x());
    case GateKind::CY: return controlled(pauli_y());
    case GateKind::CZ: return controlled(pauli_z());
    case GateKind::CH: return controlled(hadamard());
    case GateKind::SWAP: {
        Matrix m(4, 4);
        m(0, 0) = m(3, 3) = cplx{1, 0};
        m(2, 1) = m(1, 2) = cplx{1, 0};
        return m;
    }
    case GateKind::ISWAP: {
        Matrix m(4, 4);
        m(0, 0) = m(3, 3) = cplx{1, 0};
        m(2, 1) = m(1, 2) = kI;
        return m;
    }
    case GateKind::CP: {
        need(1);
        Matrix m = Matrix::identity(4);
        m(3, 3) = std::polar(1.0, params[0]);
        return m;
    }
    case GateKind::CRX: need(1); return controlled(rx_matrix(params[0]));
    case GateKind::CRY: need(1); return controlled(ry_matrix(params[0]));
    case GateKind::CRZ: need(1); return controlled(rz_matrix(params[0]));
    case GateKind::RXX: {
        need(1);
        const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
        Matrix m(4, 4);
        for (int d = 0; d < 4; ++d) m(d, d) = cplx{c, 0};
        for (int d = 0; d < 4; ++d) m(d, 3 - d) = cplx{0, -s};
        return m;
    }
    case GateKind::RYY: {
        need(1);
        const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
        Matrix m(4, 4);
        for (int d = 0; d < 4; ++d) m(d, d) = cplx{c, 0};
        m(0, 3) = cplx{0, s};
        m(3, 0) = cplx{0, s};
        m(1, 2) = cplx{0, -s};
        m(2, 1) = cplx{0, -s};
        return m;
    }
    case GateKind::RZZ: {
        need(1);
        Matrix m(4, 4);
        const cplx minus = std::polar(1.0, -params[0] / 2);
        const cplx plus = std::polar(1.0, params[0] / 2);
        m(0, 0) = minus;
        m(1, 1) = plus;
        m(2, 2) = plus;
        m(3, 3) = minus;
        return m;
    }
    case GateKind::CU3:
        need(3);
        return controlled(u3_matrix(params[0], params[1], params[2]));
    case GateKind::CCX: {
        Matrix m = Matrix::identity(8);
        // controls = local bits 0,1; target = local bit 2.
        m(3, 3) = m(7, 7) = cplx{0, 0};
        m(7, 3) = m(3, 7) = cplx{1, 0};
        return m;
    }
    case GateKind::CCZ: {
        Matrix m = Matrix::identity(8);
        m(7, 7) = cplx{-1, 0};
        return m;
    }
    case GateKind::CSWAP: {
        Matrix m = Matrix::identity(8);
        // control = local bit 0; swap local bits 1 and 2 (indices 3 <-> 5).
        m(3, 3) = m(5, 5) = cplx{0, 0};
        m(5, 3) = m(3, 5) = cplx{1, 0};
        return m;
    }
    case GateKind::VUG:
    case GateKind::UNITARY:
        throw std::invalid_argument("kind_matrix: explicit-unitary kinds carry their own matrix");
    }
    throw std::invalid_argument("kind_matrix: unhandled kind");
}

Gate Gate::make_unitary(std::vector<int> qs, Matrix u, GateKind k) {
    if (k != GateKind::VUG && k != GateKind::UNITARY)
        throw std::invalid_argument("make_unitary: kind must be VUG or UNITARY");
    const std::size_t dim = std::size_t{1} << qs.size();
    if (u.rows() != dim || u.cols() != dim)
        throw std::invalid_argument("make_unitary: matrix dimension does not match qubit count");
    Gate g;
    g.kind = k;
    g.qubits = std::move(qs);
    g.matrix = std::make_shared<const Matrix>(std::move(u));
    return g;
}

Matrix Gate::unitary() const {
    if (is_explicit_unitary()) {
        if (!matrix) throw std::logic_error("explicit-unitary gate without matrix payload");
        return *matrix;
    }
    return kind_matrix(kind, params);
}

Gate Gate::inverse() const {
    switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::SWAP:
    case GateKind::CCX:
    case GateKind::CCZ:
    case GateKind::CSWAP:
        return *this; // self-inverse
    case GateKind::S: return Gate(GateKind::Sdg, qubits);
    case GateKind::Sdg: return Gate(GateKind::S, qubits);
    case GateKind::T: return Gate(GateKind::Tdg, qubits);
    case GateKind::Tdg: return Gate(GateKind::T, qubits);
    case GateKind::SX: return Gate(GateKind::SXdg, qubits);
    case GateKind::SXdg: return Gate(GateKind::SX, qubits);
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::RZZ:
        return Gate(kind, qubits, {-params[0]});
    case GateKind::U3:
        return Gate(kind, qubits, {-params[0], -params[2], -params[1]});
    case GateKind::CU3:
        return Gate(kind, qubits, {-params[0], -params[2], -params[1]});
    case GateKind::ISWAP:
    case GateKind::VUG:
    case GateKind::UNITARY:
        return make_unitary(qubits, unitary().dagger(),
                            kind == GateKind::VUG ? GateKind::VUG : GateKind::UNITARY);
    }
    throw std::logic_error("Gate::inverse: unhandled kind");
}

std::string Gate::to_string() const {
    std::ostringstream os;
    os << kind_name(kind);
    if (!params.empty()) {
        os << "(";
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i) os << ",";
            os << params[i];
        }
        os << ")";
    }
    os << " ";
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i) os << ",";
        os << "q" << qubits[i];
    }
    return os.str();
}

} // namespace epoc::circuit
