// Gate-level IR.
//
// Conventions used across the whole repository:
//  * Qubit 0 is the least-significant bit of a basis-state index
//    (little-endian, Qiskit style).
//  * A k-qubit gate's matrix is expressed in the gate's *local* ordering:
//    gate.qubits[0] is local bit 0 (least significant), etc.
//  * VUG ("variable unitary gate", the synthesis primitive from the paper)
//    carries an explicit unitary matrix via a shared immutable payload, so
//    Gate stays cheap to copy.
#pragma once

#include "linalg/matrix.h"

#include <memory>
#include <string>
#include <vector>

namespace epoc::circuit {

using linalg::Matrix;
using linalg::cplx;

enum class GateKind {
    // single qubit, fixed
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    SX,
    SXdg,
    // single qubit, parameterized
    RX,
    RY,
    RZ,
    P, ///< phase gate diag(1, e^{i*theta})
    U3,
    // two qubit
    CX,
    CY,
    CZ,
    CH,
    SWAP,
    ISWAP,
    CP,
    CRX,
    CRY,
    CRZ,
    RXX,
    RYY,
    RZZ,
    CU3,
    // three qubit
    CCX,
    CCZ,
    CSWAP,
    // explicit-unitary gates
    VUG,     ///< variable unitary gate (synthesis primitive / regrouped block)
    UNITARY, ///< arbitrary fixed unitary attached to the gate
};

/// Number of qubits the gate kind acts on. VUG/UNITARY return 0 (determined by
/// the attached matrix).
int kind_arity(GateKind k);

/// Number of real parameters the kind carries (0 for fixed gates).
int kind_num_params(GateKind k);

/// Lower-case mnemonic, matching OpenQASM/qelib1 names where one exists.
std::string kind_name(GateKind k);

/// Inverse lookup for the QASM parser; throws std::invalid_argument on
/// unknown names.
GateKind kind_from_name(const std::string& name);

struct Gate {
    GateKind kind = GateKind::I;
    std::vector<int> qubits;
    std::vector<double> params;
    /// Payload for VUG / UNITARY kinds; null otherwise.
    std::shared_ptr<const Matrix> matrix;

    Gate() = default;
    Gate(GateKind k, std::vector<int> qs, std::vector<double> ps = {})
        : kind(k), qubits(std::move(qs)), params(std::move(ps)) {}

    /// Construct an explicit-unitary gate over `qs`; `u` must be 2^|qs| square.
    static Gate make_unitary(std::vector<int> qs, Matrix u, GateKind k = GateKind::UNITARY);

    int arity() const { return static_cast<int>(qubits.size()); }
    bool is_explicit_unitary() const {
        return kind == GateKind::VUG || kind == GateKind::UNITARY;
    }

    /// The gate's local-ordering unitary (dimension 2^arity).
    Matrix unitary() const;

    /// Gate implementing the inverse operation on the same qubits.
    Gate inverse() const;

    /// Human-readable form, e.g. "rz(0.7853) q1" or "cx q0,q2".
    std::string to_string() const;
};

/// The local-ordering matrix for a kind given parameters (no qubits involved).
Matrix kind_matrix(GateKind k, const std::vector<double>& params);

/// Standard 2x2 building blocks.
Matrix pauli_x();
Matrix pauli_y();
Matrix pauli_z();
Matrix hadamard();
Matrix rx_matrix(double theta);
Matrix ry_matrix(double theta);
Matrix rz_matrix(double theta);
Matrix u3_matrix(double theta, double phi, double lambda);

} // namespace epoc::circuit
