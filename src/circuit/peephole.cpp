#include "circuit/peephole.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>

namespace epoc::circuit {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTol = 1e-10;

enum class Axis { None, Z, X };

/// Rotation axis of `g` as seen from qubit `q` (for commutation checks).
Axis axis_on(const Gate& g, int q) {
    switch (g.kind) {
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::RZZ:
    case GateKind::CCZ:
        return Axis::Z;
    case GateKind::X:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RXX:
        return Axis::X;
    case GateKind::CX:
        return g.qubits[0] == q ? Axis::Z : Axis::X;
    case GateKind::CCX:
        return (g.qubits[0] == q || g.qubits[1] == q) ? Axis::Z : Axis::X;
    default:
        return Axis::None;
    }
}

bool touches(const Gate& g, int q) {
    return std::find(g.qubits.begin(), g.qubits.end(), q) != g.qubits.end();
}

/// True if a and b commute on every qubit they share (same rotation axis).
bool commute_on_shared(const Gate& a, const Gate& b) {
    for (const int q : a.qubits) {
        if (!touches(b, q)) continue;
        const Axis ax = axis_on(a, q);
        const Axis bx = axis_on(b, q);
        if (ax == Axis::None || bx == Axis::None || ax != bx) return false;
    }
    return true;
}

/// Z-axis rotation angle when the gate is a pure single-qubit Z rotation
/// (up to global phase).
std::optional<double> z_angle(const Gate& g) {
    switch (g.kind) {
    case GateKind::Z: return kPi;
    case GateKind::S: return kPi / 2;
    case GateKind::Sdg: return -kPi / 2;
    case GateKind::T: return kPi / 4;
    case GateKind::Tdg: return -kPi / 4;
    case GateKind::RZ:
    case GateKind::P: return g.params[0];
    default: return std::nullopt;
    }
}

std::optional<double> x_angle(const Gate& g) {
    switch (g.kind) {
    case GateKind::X: return kPi;
    case GateKind::SX: return kPi / 2;
    case GateKind::SXdg: return -kPi / 2;
    case GateKind::RX: return g.params[0];
    default: return std::nullopt;
    }
}

bool zero_mod_2pi(double a) {
    a = std::fmod(std::abs(a), 2 * kPi);
    return a < kTol || a > 2 * kPi - kTol;
}

bool same_qubits_ordered(const Gate& a, const Gate& b) { return a.qubits == b.qubits; }

bool same_qubits_unordered(const Gate& a, const Gate& b) {
    std::vector<int> qa = a.qubits, qb = b.qubits;
    std::sort(qa.begin(), qa.end());
    std::sort(qb.begin(), qb.end());
    return qa == qb;
}

/// Self-inverse fixed gates that cancel in identical adjacent pairs.
bool cancels_with_same(const Gate& a, const Gate& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
    case GateKind::H:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
        return same_qubits_ordered(a, b);
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::CSWAP:
        return same_qubits_ordered(a, b);
    case GateKind::CZ:
    case GateKind::CCZ:
    case GateKind::SWAP:
        return same_qubits_unordered(a, b);
    default:
        return false;
    }
}

/// Mutually-inverse fixed pairs (s/sdg etc.).
bool inverse_fixed_pair(const Gate& a, const Gate& b) {
    const auto pair = [&](GateKind x, GateKind y) {
        return (a.kind == x && b.kind == y) || (a.kind == y && b.kind == x);
    };
    if (!same_qubits_ordered(a, b)) return false;
    return pair(GateKind::S, GateKind::Sdg) || pair(GateKind::T, GateKind::Tdg) ||
           pair(GateKind::SX, GateKind::SXdg);
}

/// Attempt to combine gates at positions i < j. Returns true on success;
/// `gi` may be replaced, and `erase_both`/`erase_j` describe the deletions.
struct MergeResult {
    bool merged = false;
    bool erase_i = false;
    std::optional<Gate> replacement;
};

MergeResult try_merge(const Gate& a, const Gate& b) {
    MergeResult r;
    if (cancels_with_same(a, b) || inverse_fixed_pair(a, b)) {
        r.merged = true;
        r.erase_i = true;
        return r;
    }
    if (a.arity() == 1 && b.arity() == 1 && a.qubits == b.qubits) {
        const auto za = z_angle(a), zb = z_angle(b);
        if (za && zb) {
            const double sum = *za + *zb;
            r.merged = true;
            if (zero_mod_2pi(sum))
                r.erase_i = true;
            else
                r.replacement = Gate(GateKind::P, a.qubits, {sum});
            return r;
        }
        const auto xa = x_angle(a), xb = x_angle(b);
        if (xa && xb) {
            const double sum = *xa + *xb;
            r.merged = true;
            if (zero_mod_2pi(sum))
                r.erase_i = true;
            else
                r.replacement = Gate(GateKind::RX, a.qubits, {sum});
            return r;
        }
        if (a.kind == GateKind::RY && b.kind == GateKind::RY) {
            const double sum = a.params[0] + b.params[0];
            r.merged = true;
            if (zero_mod_2pi(sum))
                r.erase_i = true;
            else
                r.replacement = Gate(GateKind::RY, a.qubits, {sum});
            return r;
        }
    }
    // Two-qubit parameterized merges.
    const auto merge_param = [&](GateKind k, bool unordered) {
        if (a.kind != k || b.kind != k) return false;
        if (unordered ? !same_qubits_unordered(a, b) : !same_qubits_ordered(a, b))
            return false;
        const double sum = a.params[0] + b.params[0];
        r.merged = true;
        if (zero_mod_2pi(sum))
            r.erase_i = true;
        else
            r.replacement = Gate(k, a.qubits, {sum});
        return true;
    };
    if (merge_param(GateKind::CP, true) || merge_param(GateKind::RZZ, true) ||
        merge_param(GateKind::RXX, true) || merge_param(GateKind::RYY, true) ||
        merge_param(GateKind::CRZ, false))
        return r;
    return r;
}

/// True if the gate is an identity up to global phase.
bool is_identity(const Gate& g) {
    if (g.kind == GateKind::I) return true;
    const auto za = z_angle(g);
    if (za && zero_mod_2pi(*za)) return true;
    const auto xa = x_angle(g);
    if (xa && zero_mod_2pi(*xa)) return true;
    if (g.kind == GateKind::RY && zero_mod_2pi(g.params[0])) return true;
    return false;
}

} // namespace

Circuit peephole_optimize(const Circuit& c) {
    std::vector<Gate> gates = c.gates();
    bool changed = true;
    while (changed) {
        changed = false;

        // Drop identities.
        std::vector<Gate> live;
        live.reserve(gates.size());
        for (Gate& g : gates) {
            if (is_identity(g))
                changed = true;
            else
                live.push_back(std::move(g));
        }
        gates = std::move(live);

        // Commutation-aware pairwise merge.
        std::vector<bool> dead(gates.size(), false);
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (dead[i]) continue;
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (dead[j]) continue;
                const Gate& a = gates[i];
                const Gate& b = gates[j];
                const bool overlap =
                    std::any_of(a.qubits.begin(), a.qubits.end(),
                                [&](int q) { return touches(b, q); });
                if (!overlap) continue;
                const MergeResult r = try_merge(a, b);
                if (r.merged) {
                    dead[j] = true;
                    if (r.erase_i)
                        dead[i] = true;
                    else if (r.replacement)
                        gates[i] = *r.replacement;
                    changed = true;
                    break;
                }
                // b blocks further search along these qubits unless it
                // commutes with a on every shared qubit.
                if (!commute_on_shared(a, b)) break;
            }
        }
        if (changed) {
            std::vector<Gate> next;
            next.reserve(gates.size());
            for (std::size_t i = 0; i < gates.size(); ++i)
                if (!dead[i]) next.push_back(std::move(gates[i]));
            gates = std::move(next);
        }
    }
    Circuit out(c.num_qubits());
    for (Gate& g : gates) out.add(std::move(g));
    return out;
}

} // namespace epoc::circuit
