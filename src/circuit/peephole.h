// Commutation-aware peephole optimization.
//
// Implements the gate commutation / aggregation step of EPOC's graph-based
// depth optimization (paper Section 3.1): diagonal (Z-axis) gates commute
// through CZ and through the control of CX; X-axis gates commute through the
// target of CX. Pairs of mutually-inverse gates cancel, adjacent rotations
// about the same axis merge, and zero rotations vanish. Runs to a fixpoint.
#pragma once

#include "circuit/circuit.h"

namespace epoc::circuit {

/// Optimize and return the rewritten circuit. Unitary is preserved up to
/// global phase. VUG/UNITARY gates are kept as opaque barriers.
Circuit peephole_optimize(const Circuit& c);

} // namespace epoc::circuit
