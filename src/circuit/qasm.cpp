#include "circuit/qasm.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <set>
#include <sstream>

namespace epoc::circuit {

namespace {

struct Token {
    enum Kind { Ident, Number, String, Symbol, End } kind = End;
    std::string text;
    double value = 0.0;
    int line = 1;
};

class Lexer {
public:
    explicit Lexer(const std::string& src) : src_(src) {}

    Token next() {
        skip_ws_and_comments();
        Token t;
        t.line = line_;
        if (pos_ >= src_.size()) return t;
        const char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            t.kind = Token::Ident;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_'))
                t.text += src_[pos_++];
            return t;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            t.kind = Token::Number;
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.' ||
                    src_[pos_] == 'e' || src_[pos_] == 'E' ||
                    ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
                     (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
                ++pos_;
            t.text = src_.substr(start, pos_ - start);
            try {
                t.value = std::stod(t.text);
            } catch (const std::exception&) {
                // stod throws out_of_range on e.g. "1e99999" and
                // invalid_argument on a lone "." -- both are parse errors,
                // not crashes.
                throw QasmError("malformed number literal '" + t.text + "'", line_);
            }
            return t;
        }
        if (c == '"') {
            t.kind = Token::String;
            ++pos_;
            while (pos_ < src_.size() && src_[pos_] != '"') t.text += src_[pos_++];
            if (pos_ >= src_.size()) throw QasmError("unterminated string", line_);
            ++pos_;
            return t;
        }
        if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
            t.kind = Token::Symbol;
            t.text = "->";
            pos_ += 2;
            return t;
        }
        t.kind = Token::Symbol;
        t.text = std::string(1, c);
        ++pos_;
        return t;
    }

private:
    void skip_ws_and_comments() {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
            } else {
                break;
            }
        }
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

struct GateDef {
    std::vector<std::string> params;
    std::vector<std::string> args;
    // Body statements: gate name, param expressions (as token lists are
    // overkill here; we re-parse strings), argument names.
    struct Stmt {
        std::string name;
        std::vector<std::string> param_exprs;
        std::vector<std::string> arg_names;
        int line = 0;
    };
    std::vector<Stmt> body;
};

class Parser {
public:
    explicit Parser(const std::string& src) : lex_(src) { advance(); }

    Circuit parse() {
        while (cur_.kind != Token::End) statement();
        Circuit c(total_qubits_);
        for (auto& [g, line] : pending_) {
            try {
                c.add(std::move(g));
            } catch (const std::exception& e) {
                // Surface structural gate errors (wrong operand count,
                // duplicate qubits, ...) with source location.
                throw QasmError(e.what(), line);
            }
        }
        return c;
    }

private:
    void advance() { cur_ = lex_.next(); }

    [[noreturn]] void fail(const std::string& msg) const { throw QasmError(msg, cur_.line); }

    void expect_symbol(const std::string& s) {
        if (cur_.kind != Token::Symbol || cur_.text != s) fail("expected '" + s + "'");
        advance();
    }

    bool accept_symbol(const std::string& s) {
        if (cur_.kind == Token::Symbol && cur_.text == s) {
            advance();
            return true;
        }
        return false;
    }

    std::string expect_ident() {
        if (cur_.kind != Token::Ident) fail("expected identifier");
        std::string name = cur_.text;
        advance();
        return name;
    }

    // ---- expressions ------------------------------------------------------

    double parse_expr(const std::map<std::string, double>& env) { return expr_add(env); }

    double expr_add(const std::map<std::string, double>& env) {
        double v = expr_mul(env);
        for (;;) {
            if (accept_symbol("+"))
                v += expr_mul(env);
            else if (accept_symbol("-"))
                v -= expr_mul(env);
            else
                return v;
        }
    }

    double expr_mul(const std::map<std::string, double>& env) {
        double v = expr_unary(env);
        for (;;) {
            if (accept_symbol("*"))
                v *= expr_unary(env);
            else if (accept_symbol("/"))
                v /= expr_unary(env);
            else
                return v;
        }
    }

    double expr_unary(const std::map<std::string, double>& env) {
        if (accept_symbol("-")) return -expr_unary(env);
        if (accept_symbol("+")) return expr_unary(env);
        return expr_atom(env);
    }

    double expr_atom(const std::map<std::string, double>& env) {
        if (cur_.kind == Token::Number) {
            const double v = cur_.value;
            advance();
            return v;
        }
        if (cur_.kind == Token::Ident) {
            const std::string name = cur_.text;
            advance();
            if (name == "pi") return std::numbers::pi;
            if (accept_symbol("(")) {
                const double arg = parse_expr(env);
                expect_symbol(")");
                if (name == "sin") return std::sin(arg);
                if (name == "cos") return std::cos(arg);
                if (name == "tan") return std::tan(arg);
                if (name == "exp") return std::exp(arg);
                if (name == "ln") return std::log(arg);
                if (name == "sqrt") return std::sqrt(arg);
                fail("unknown function '" + name + "'");
            }
            const auto it = env.find(name);
            if (it == env.end()) fail("unknown parameter '" + name + "'");
            return it->second;
        }
        if (accept_symbol("(")) {
            const double v = parse_expr(env);
            expect_symbol(")");
            return v;
        }
        fail("expected expression");
    }

    // ---- statements -------------------------------------------------------

    void statement() {
        if (cur_.kind != Token::Ident) fail("expected statement");
        const std::string head = cur_.text;
        if (head == "OPENQASM") {
            advance();
            if (cur_.kind != Token::Number) fail("expected version number");
            advance();
            expect_symbol(";");
        } else if (head == "include") {
            advance();
            if (cur_.kind != Token::String) fail("expected include path");
            advance();
            expect_symbol(";");
        } else if (head == "qreg") {
            advance();
            const std::string name = expect_ident();
            if (declared_regs_.count(name))
                fail("register '" + name + "' already declared");
            expect_symbol("[");
            if (cur_.kind != Token::Number) fail("expected register size");
            // Bound before the int cast: a huge literal (qreg q[4e9]) would
            // otherwise overflow and corrupt the qubit numbering.
            if (cur_.value < 1 || cur_.value > kMaxRegisterSize)
                fail("register size out of range");
            const int n = static_cast<int>(cur_.value);
            advance();
            expect_symbol("]");
            expect_symbol(";");
            declared_regs_.insert(name);
            qregs_[name] = {total_qubits_, n};
            total_qubits_ += n;
        } else if (head == "creg") {
            advance();
            const std::string name = expect_ident();
            if (declared_regs_.count(name))
                fail("register '" + name + "' already declared");
            declared_regs_.insert(name);
            expect_symbol("[");
            advance();
            expect_symbol("]");
            expect_symbol(";");
        } else if (head == "measure") {
            // measure a[i] -> c[j];  or  measure a -> c;
            advance();
            skip_to_semicolon();
        } else if (head == "barrier" || head == "reset") {
            advance();
            skip_to_semicolon();
        } else if (head == "gate") {
            advance();
            parse_gate_def();
        } else if (head == "if") {
            fail("classical control is not supported");
        } else {
            apply_statement();
        }
    }

    void skip_to_semicolon() {
        while (cur_.kind != Token::End && !(cur_.kind == Token::Symbol && cur_.text == ";"))
            advance();
        expect_symbol(";");
    }

    void parse_gate_def() {
        const std::string name = expect_ident();
        GateDef def;
        if (accept_symbol("(")) {
            if (!accept_symbol(")")) {
                def.params.push_back(expect_ident());
                while (accept_symbol(",")) def.params.push_back(expect_ident());
                expect_symbol(")");
            }
        }
        def.args.push_back(expect_ident());
        while (accept_symbol(",")) def.args.push_back(expect_ident());
        expect_symbol("{");
        while (!(cur_.kind == Token::Symbol && cur_.text == "}")) {
            if (cur_.kind == Token::End) fail("unterminated gate body");
            GateDef::Stmt stmt;
            stmt.line = cur_.line;
            stmt.name = expect_ident();
            if (stmt.name == "barrier") {
                skip_to_semicolon();
                continue;
            }
            if (accept_symbol("(")) {
                if (!accept_symbol(")")) {
                    stmt.param_exprs.push_back(capture_expr_text());
                    while (accept_symbol(",")) stmt.param_exprs.push_back(capture_expr_text());
                    expect_symbol(")");
                }
            }
            stmt.arg_names.push_back(expect_ident());
            while (accept_symbol(",")) stmt.arg_names.push_back(expect_ident());
            expect_symbol(";");
            def.body.push_back(std::move(stmt));
        }
        expect_symbol("}");
        gate_defs_[name] = std::move(def);
    }

    /// Capture the raw token text of an expression (up to an unnested ',' or
    /// ')'), for later re-evaluation with concrete parameter bindings.
    std::string capture_expr_text() {
        std::string text;
        int depth = 0;
        while (cur_.kind != Token::End) {
            if (cur_.kind == Token::Symbol) {
                if (cur_.text == "(") ++depth;
                if (cur_.text == ")") {
                    if (depth == 0) break;
                    --depth;
                }
                if (cur_.text == "," && depth == 0) break;
            }
            text += cur_.text;
            text += ' ';
            advance();
        }
        return text;
    }

    struct QubitRef {
        int base = 0;   ///< first global index
        int count = 1;  ///< 1 for q[i]; register size for broadcast
    };

    QubitRef parse_qubit_ref() {
        const std::string reg = expect_ident();
        const auto it = qregs_.find(reg);
        if (it == qregs_.end()) fail("unknown register '" + reg + "'");
        const auto [offset, size] = it->second;
        if (accept_symbol("[")) {
            if (cur_.kind != Token::Number) fail("expected qubit index");
            // Range-check on the double: casting e.g. 4e9 to int is UB and
            // can wrap to a "valid" small index.
            if (cur_.value < 0 || cur_.value > kMaxRegisterSize)
                fail("qubit index out of range");
            const int idx = static_cast<int>(cur_.value);
            advance();
            expect_symbol("]");
            if (idx < 0 || idx >= size) fail("qubit index out of range");
            return {offset + idx, 1};
        }
        return {offset, size};
    }

    void apply_statement() {
        const std::string name = expect_ident();
        std::vector<double> params;
        if (accept_symbol("(")) {
            if (!accept_symbol(")")) {
                params.push_back(parse_expr({}));
                while (accept_symbol(",")) params.push_back(parse_expr({}));
                expect_symbol(")");
            }
        }
        std::vector<QubitRef> refs;
        refs.push_back(parse_qubit_ref());
        while (accept_symbol(",")) refs.push_back(parse_qubit_ref());
        expect_symbol(";");

        // Whole-register broadcast: all broadcast refs must have equal size.
        int bcast = 1;
        for (const QubitRef& r : refs)
            if (r.count > 1) {
                if (bcast != 1 && bcast != r.count) fail("mismatched register broadcast");
                bcast = r.count;
            }
        for (int rep = 0; rep < bcast; ++rep) {
            std::vector<int> qubits;
            qubits.reserve(refs.size());
            for (const QubitRef& r : refs) qubits.push_back(r.count > 1 ? r.base + rep : r.base);
            emit_gate(name, params, qubits, cur_.line);
        }
    }

    void emit_gate(const std::string& name, const std::vector<double>& params,
                   const std::vector<int>& qubits, int line) {
        const auto defIt = gate_defs_.find(name);
        if (defIt != gate_defs_.end()) {
            expand_custom(defIt->second, params, qubits, line);
            return;
        }
        GateKind kind;
        try {
            kind = kind_from_name(name);
        } catch (const std::invalid_argument& e) {
            throw QasmError(e.what(), line);
        }
        // qelib1's u2(phi,lambda) = u3(pi/2, phi, lambda).
        pending_.emplace_back(Gate(kind, qubits, params), line);
    }

    void expand_custom(const GateDef& def, const std::vector<double>& params,
                       const std::vector<int>& qubits, int line) {
        if (params.size() != def.params.size())
            throw QasmError("wrong parameter count for custom gate", line);
        if (qubits.size() != def.args.size())
            throw QasmError("wrong argument count for custom gate", line);
        std::map<std::string, double> env;
        for (std::size_t i = 0; i < params.size(); ++i) env[def.params[i]] = params[i];
        std::map<std::string, int> qenv;
        for (std::size_t i = 0; i < qubits.size(); ++i) qenv[def.args[i]] = qubits[i];
        for (const GateDef::Stmt& s : def.body) {
            std::vector<double> sub_params;
            for (const std::string& expr : s.param_exprs) {
                Parser sub(expr);
                sub_params.push_back(sub.parse_expr(env));
            }
            std::vector<int> sub_qubits;
            for (const std::string& arg : s.arg_names) {
                const auto it = qenv.find(arg);
                if (it == qenv.end()) throw QasmError("unknown gate argument '" + arg + "'", s.line);
                sub_qubits.push_back(it->second);
            }
            emit_gate(s.name, sub_params, sub_qubits, s.line);
        }
    }

    /// Largest accepted register size / qubit index. Far above any real
    /// program, far below int overflow territory.
    static constexpr double kMaxRegisterSize = 1 << 20;

    Lexer lex_;
    Token cur_;
    int total_qubits_ = 0;
    std::set<std::string> declared_regs_; ///< qreg and creg names, for redecl checks
    std::map<std::string, std::pair<int, int>> qregs_; ///< name -> (offset, size)
    std::map<std::string, GateDef> gate_defs_;
    std::vector<std::pair<Gate, int>> pending_;
};

} // namespace

Circuit parse_qasm(const std::string& source) {
    // "u2" is common in QASMBench dumps; rewrite via a builtin custom def so
    // the parser core stays table-driven. Joined with a space, not a newline,
    // so QasmError line numbers still match the caller's source.
    static const std::string prelude =
        "gate u2(phi,lambda) a { u3(pi/2, phi, lambda) a; } ";
    const std::string combined = prelude + source;
    Parser p(combined);
    return p.parse();
}

Circuit parse_qasm_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open qasm file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_qasm(ss.str());
}

std::string to_qasm(const Circuit& c) {
    std::ostringstream os;
    os.precision(17);
    os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    os << "qreg q[" << c.num_qubits() << "];\n";
    for (const Gate& g : c.gates()) {
        if (g.is_explicit_unitary())
            throw std::invalid_argument("to_qasm: cannot serialize explicit-unitary gate");
        os << kind_name(g.kind);
        if (!g.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i) os << ",";
                os << g.params[i];
            }
            os << ")";
        }
        os << " ";
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i) os << ",";
            os << "q[" << g.qubits[i] << "]";
        }
        os << ";\n";
    }
    return os.str();
}

} // namespace epoc::circuit
