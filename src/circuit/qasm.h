// OpenQASM 2.0 subset reader/writer.
//
// Supported: OPENQASM/include headers, qreg/creg, all qelib1-style builtin
// gates known to GateKind, whole-register broadcast, custom `gate` definitions
// (expanded inline at use), parameter expressions with pi, + - * / (),
// unary minus and sin/cos/tan/exp/ln/sqrt, and `measure`/`barrier`/`reset`
// statements (accepted and ignored: the EPOC pipeline is unitary-only).
#pragma once

#include "circuit/circuit.h"

#include <stdexcept>
#include <string>

namespace epoc::circuit {

/// Error with 1-based line information for malformed input.
class QasmError : public std::runtime_error {
public:
    QasmError(const std::string& msg, int line)
        : std::runtime_error("qasm:" + std::to_string(line) + ": " + msg), line_(line) {}
    int line() const noexcept { return line_; }

private:
    int line_;
};

/// Parse QASM source text into a circuit. All qregs are concatenated into one
/// register in declaration order.
Circuit parse_qasm(const std::string& source);

/// Read and parse a .qasm file.
Circuit parse_qasm_file(const std::string& path);

/// Serialize to OpenQASM 2.0. Throws std::invalid_argument if the circuit
/// contains explicit-unitary gates (VUG/UNITARY), which QASM 2 cannot express.
std::string to_qasm(const Circuit& c);

} // namespace epoc::circuit
