#include "circuit/routing.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

namespace epoc::circuit {

CouplingMap::CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)) {
    adj_.resize(static_cast<std::size_t>(num_qubits_));
    std::set<std::pair<int, int>> seen;
    for (const auto& [a, b] : edges_) {
        const std::string edge_str =
            "(" + std::to_string(a) + "," + std::to_string(b) + ")";
        if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_)
            throw std::invalid_argument("CouplingMap: edge endpoint out of range " +
                                        edge_str);
        if (a == b)
            throw std::invalid_argument("CouplingMap: self-loop edge " + edge_str);
        if (!seen.insert({std::min(a, b), std::max(a, b)}).second)
            throw std::invalid_argument("CouplingMap: duplicate edge " + edge_str);
        adj_[static_cast<std::size_t>(a)].push_back(b);
        adj_[static_cast<std::size_t>(b)].push_back(a);
    }
    // All-pairs BFS.
    dist_.assign(static_cast<std::size_t>(num_qubits_),
                 std::vector<int>(static_cast<std::size_t>(num_qubits_), -1));
    for (int s = 0; s < num_qubits_; ++s) {
        auto& d = dist_[static_cast<std::size_t>(s)];
        d[static_cast<std::size_t>(s)] = 0;
        std::deque<int> queue{s};
        while (!queue.empty()) {
            const int v = queue.front();
            queue.pop_front();
            for (const int w : adj_[static_cast<std::size_t>(v)]) {
                if (d[static_cast<std::size_t>(w)] >= 0) continue;
                d[static_cast<std::size_t>(w)] = d[static_cast<std::size_t>(v)] + 1;
                queue.push_back(w);
            }
        }
    }
}

CouplingMap CouplingMap::linear(int n) {
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
    return CouplingMap(n, std::move(e));
}

CouplingMap CouplingMap::ring(int n) {
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
    if (n > 2) e.emplace_back(n - 1, 0);
    return CouplingMap(n, std::move(e));
}

CouplingMap CouplingMap::grid(int rows, int cols) {
    std::vector<std::pair<int, int>> e;
    const auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) e.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows) e.emplace_back(id(r, c), id(r + 1, c));
        }
    return CouplingMap(rows * cols, std::move(e));
}

CouplingMap CouplingMap::heavy_hex7() {
    // Spine 1-3-5 with flags 0,2 hanging off 1 and 4,6 hanging off 5:
    //   0   2       4   6
    //    \ /         \ /
    //     1 --- 3 --- 5
    return CouplingMap(7, {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}});
}

CouplingMap CouplingMap::full(int n) {
    std::vector<std::pair<int, int>> e;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b) e.emplace_back(a, b);
    return CouplingMap(n, std::move(e));
}

bool CouplingMap::adjacent(int a, int b) const { return distance(a, b) == 1; }

int CouplingMap::distance(int a, int b) const {
    const int d = dist_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(b));
    if (d < 0) throw std::invalid_argument("CouplingMap: disconnected qubits");
    return d;
}

bool CouplingMap::connected_subset(const std::vector<int>& qubits) const {
    if (qubits.size() <= 1) return true;
    const std::set<int> members(qubits.begin(), qubits.end());
    std::set<int> reached{*members.begin()};
    std::deque<int> queue{*members.begin()};
    while (!queue.empty()) {
        const int v = queue.front();
        queue.pop_front();
        for (const int w : adj_.at(static_cast<std::size_t>(v))) {
            if (members.count(w) == 0 || reached.count(w) != 0) continue;
            reached.insert(w);
            queue.push_back(w);
        }
    }
    return reached.size() == members.size();
}

int CouplingMap::next_hop(int a, int b) const {
    if (a == b || adjacent(a, b)) return a;
    for (const int w : adj_.at(static_cast<std::size_t>(a)))
        if (distance(w, b) == distance(a, b) - 1) return w;
    throw std::logic_error("CouplingMap::next_hop: no progress (disconnected?)");
}

RoutingResult route(const Circuit& c, const CouplingMap& map) {
    if (c.num_qubits() > map.num_qubits())
        throw std::invalid_argument("route: circuit wider than device");
    RoutingResult res;
    res.circuit = Circuit(map.num_qubits());
    // layout[q] = physical location of logical q; phys_to_log inverse.
    std::vector<int> layout(static_cast<std::size_t>(map.num_qubits()));
    std::iota(layout.begin(), layout.end(), 0);
    std::vector<int> phys_to_log = layout;

    const auto do_swap = [&](int pa, int pb) {
        res.circuit.swap(pa, pb);
        ++res.swaps_inserted;
        const int la = phys_to_log[static_cast<std::size_t>(pa)];
        const int lb = phys_to_log[static_cast<std::size_t>(pb)];
        std::swap(phys_to_log[static_cast<std::size_t>(pa)],
                  phys_to_log[static_cast<std::size_t>(pb)]);
        layout[static_cast<std::size_t>(la)] = pb;
        layout[static_cast<std::size_t>(lb)] = pa;
    };

    for (const Gate& g : c.gates()) {
        if (g.arity() > 2)
            throw std::invalid_argument("route: decompose gates wider than 2 qubits first");
        Gate mapped = g;
        if (g.arity() == 1) {
            mapped.qubits[0] = layout[static_cast<std::size_t>(g.qubits[0])];
        } else {
            // Walk the first operand toward the second until adjacent.
            while (true) {
                const int pa = layout[static_cast<std::size_t>(g.qubits[0])];
                const int pb = layout[static_cast<std::size_t>(g.qubits[1])];
                if (map.adjacent(pa, pb)) break;
                do_swap(pa, map.next_hop(pa, pb));
            }
            mapped.qubits[0] = layout[static_cast<std::size_t>(g.qubits[0])];
            mapped.qubits[1] = layout[static_cast<std::size_t>(g.qubits[1])];
        }
        res.circuit.add(std::move(mapped));
    }
    res.final_layout.assign(layout.begin(),
                            layout.begin() + c.num_qubits());
    return res;
}

Circuit restore_layout_circuit(const std::vector<int>& final_layout) {
    int n = static_cast<int>(final_layout.size());
    for (const int p : final_layout) n = std::max(n, p + 1);
    // content[p] = logical qubit held at physical p, or -1 for an untracked
    // (|0>, "blank") slot; blanks may end up anywhere.
    std::vector<int> content(static_cast<std::size_t>(n), -1);
    for (std::size_t q = 0; q < final_layout.size(); ++q)
        content[static_cast<std::size_t>(final_layout[q])] = static_cast<int>(q);

    Circuit c(n);
    for (int target = 0; target < static_cast<int>(final_layout.size()); ++target) {
        if (content[static_cast<std::size_t>(target)] == target) continue;
        int src = -1;
        for (int p = 0; p < n; ++p)
            if (content[static_cast<std::size_t>(p)] == target) {
                src = p;
                break;
            }
        if (src < 0) throw std::logic_error("restore_layout_circuit: lost a logical qubit");
        c.swap(src, target);
        std::swap(content[static_cast<std::size_t>(src)],
                  content[static_cast<std::size_t>(target)]);
    }
    return c;
}

} // namespace epoc::circuit
