// Qubit mapping and routing for constrained device topologies.
//
// The traditional compilation flow in the paper's Figure 1 maps circuits to
// the target machine's coupling graph before pulse generation. This module
// provides the standard greedy shortest-path router: two-qubit gates whose
// operands are not adjacent on the device are preceded by SWAPs that walk
// the operands together, with the logical-to-physical layout tracked
// throughout.
#pragma once

#include "circuit/circuit.h"

#include <utility>
#include <vector>

namespace epoc::circuit {

class CouplingMap {
public:
    /// Throws std::invalid_argument for out-of-range endpoints, self-loop
    /// edges, and duplicate edges (in either orientation); each rejection
    /// carries a distinct message naming the offending edge.
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges);

    static CouplingMap linear(int n);
    static CouplingMap ring(int n);
    static CouplingMap grid(int rows, int cols);
    static CouplingMap full(int n);
    /// 7-qubit heavy-hex unit cell: a degree-3 spine qubit with hanging
    /// flags, the smallest fragment of IBM's heavy-hexagon lattice.
    static CouplingMap heavy_hex7();

    int num_qubits() const { return num_qubits_; }
    const std::vector<std::pair<int, int>>& edges() const { return edges_; }
    bool adjacent(int a, int b) const;
    /// Hop count between two physical qubits (BFS, precomputed).
    int distance(int a, int b) const;
    /// First hop on a shortest path a -> b (a itself if already adjacent/equal).
    int next_hop(int a, int b) const;
    /// True when `qubits` induces a connected subgraph of the map (singletons
    /// and the empty set count as connected). Qubits must be in range.
    bool connected_subset(const std::vector<int>& qubits) const;

private:
    int num_qubits_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> dist_;
};

struct RoutingResult {
    Circuit circuit;               ///< routed circuit over physical qubits
    std::vector<int> final_layout; ///< logical q resides at physical final_layout[q]
    int swaps_inserted = 0;
};

/// Route a circuit of arity <= 2 gates onto the device (identity initial
/// layout). Throws std::invalid_argument for wider gates: decompose first.
RoutingResult route(const Circuit& c, const CouplingMap& map);

/// Test helper: a SWAP circuit that undoes `final_layout`, so that
/// (restore o routed) == original as a unitary (topology-unconstrained).
Circuit restore_layout_circuit(const std::vector<int>& final_layout);

} // namespace epoc::circuit
