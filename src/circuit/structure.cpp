#include "circuit/structure.h"

#include "linalg/phase.h"

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace epoc::circuit {

namespace {

// 2^42 rad: far beyond any physical rotation angle, and every slot index up
// to 2^51 stays an exact integer offset in double.
constexpr double kSentinelBase = 4398046511104.0;

// Local FNV-1a so the circuit layer stays independent of qoc/pulse_io.h
// (same algorithm and offset basis; the fingerprints need only be stable and
// collision-resistant, not shared with the pulse store's).
std::uint64_t fnv1a64(const std::string& s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

double slot_sentinel(std::size_t slot) {
    return kSentinelBase + static_cast<double>(slot);
}

bool is_slot_sentinel(double v) { return v >= kSentinelBase; }

std::size_t sentinel_slot(double v) {
    return static_cast<std::size_t>(v - kSentinelBase);
}

StrippedCircuit strip_parameters(const Circuit& c) {
    StrippedCircuit out;
    std::ostringstream key;
    // Register width is structural: ghz-on-3 and ghz-on-4 with identical gate
    // lists must not share a plan (schedules span the whole register).
    key << "q" << c.num_qubits();
    std::size_t slot = 0;
    for (const Gate& g : c.gates()) {
        key << "|" << kind_name(g.kind);
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            key << (i == 0 ? " " : ",") << g.qubits[i];
        if (g.is_explicit_unitary() && g.matrix != nullptr) {
            // Attached unitaries are structure, fingerprinted exactly like
            // the pulse-library's phase-oblivious key so distinct matrices
            // never alias.
            key << "@" << std::hex << fnv1a64(linalg::raw_key(*g.matrix, 6))
                << std::dec;
            continue;
        }
        const int np = kind_num_params(g.kind);
        if (np <= 0) continue;
        ++out.parametric_gates;
        for (int p = 0; p < np; ++p) {
            key << "#" << slot;
            out.params.push_back(p < static_cast<int>(g.params.size())
                                     ? g.params[static_cast<std::size_t>(p)]
                                     : 0.0);
            ++slot;
        }
    }
    out.key = key.str();
    return out;
}

std::vector<ParamBinding> scan_bindings(const Circuit& c) {
    std::vector<ParamBinding> out;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const Gate& g = c.gate(i);
        const int np = kind_num_params(g.kind);
        if (np <= 0 || g.params.empty() || !is_slot_sentinel(g.params.front()))
            continue;
        ParamBinding b;
        b.gate = i;
        b.slots.reserve(static_cast<std::size_t>(np));
        for (int p = 0; p < np && p < static_cast<int>(g.params.size()); ++p)
            b.slots.push_back(sentinel_slot(g.params[static_cast<std::size_t>(p)]));
        out.push_back(std::move(b));
    }
    return out;
}

void bind_parameters(Circuit& c, const std::vector<ParamBinding>& bindings,
                     const std::vector<double>& values) {
    for (const ParamBinding& b : bindings) {
        if (b.gate >= c.size())
            throw std::out_of_range("bind_parameters: gate index past the circuit");
        std::vector<double> params = c.gate(b.gate).params;
        if (b.slots.size() > params.size())
            throw std::out_of_range("bind_parameters: more slots than parameters");
        for (std::size_t k = 0; k < b.slots.size(); ++k)
            params[k] = values.at(b.slots[k]);
        c.set_gate_params(b.gate, std::move(params));
    }
}

} // namespace epoc::circuit
