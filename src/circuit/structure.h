// Parameter-stripped circuit canonicalization: the keying substrate of the
// compilation plan cache (epoc/plan_cache.h).
//
// Variational workloads (VQE/QAOA) recompile one circuit *structure*
// thousands of times with only rotation angles changed. strip_parameters()
// splits a circuit into the two halves that split decision: a canonical
// textual form of the structure — gate kinds, qubit wiring, register width,
// program order, with every rotation angle replaced by a symbolic slot — and
// the slot-ordered angle vector. Two circuits share a structure key iff they
// differ at most in the values bound to those slots; any structural edit
// (a different gate kind, a reindexed qubit, a reordered gate, a wider
// register) changes the key.
//
// Slot numbering is deterministic: gates in program order, each parametric
// gate's first kind_num_params(kind) parameters in declaration order.
// Explicit-unitary gates (VUG/UNITARY) are structural, not parametric — their
// matrix is folded into the key as an exact-encoding FNV-1a fingerprint, so
// two different attached unitaries never alias.
//
// The sentinel helpers encode a slot index *as* a parameter value, letting a
// plan template carry its bindings through structure-only transforms
// (partition, regroup — neither reads parameter values) and recover them by
// scanning afterwards. Sentinels live far outside any physical angle range
// (base 2^42 rad) and are exact integers in double, so recovery is lossless;
// they are never evaluated — binding replaces them before any unitary is
// built.
#pragma once

#include "circuit/circuit.h"

#include <cstddef>
#include <string>
#include <vector>

namespace epoc::circuit {

/// A circuit split into reusable structure and per-call parameters.
struct StrippedCircuit {
    /// Canonical parameter-free form; equal keys <=> equal structure.
    std::string key;
    /// Parameter values in slot order (slot i of the structure holds
    /// params[i]).
    std::vector<double> params;
    /// Number of gates that contributed at least one slot. Zero means the
    /// circuit is angle-free and a plan cache buys nothing over the ordinary
    /// pulse-library/synthesis caches.
    std::size_t parametric_gates = 0;
};

/// Canonicalize `c` (see header comment for the key contract).
StrippedCircuit strip_parameters(const Circuit& c);

/// The sentinel value encoding parameter slot `slot`.
double slot_sentinel(std::size_t slot);
/// True when `v` is a slot sentinel (no physical angle reaches the base).
bool is_slot_sentinel(double v);
/// Inverse of slot_sentinel; only meaningful when is_slot_sentinel(v).
std::size_t sentinel_slot(double v);

/// One gate's parameter-slot binding inside a template circuit: gate `gate`
/// takes params[k] = values[slots[k]] for k < slots.size() (trailing params
/// beyond the kind's declared count are structural and left untouched).
struct ParamBinding {
    std::size_t gate = 0;
    std::vector<std::size_t> slots;
};

/// Scan `c` for sentinel-parameterized gates and return their bindings in
/// gate order. Gates without sentinels contribute nothing.
std::vector<ParamBinding> scan_bindings(const Circuit& c);

/// Apply `bindings` to `c` in place: each bound gate's leading parameters are
/// replaced with the referenced `values`. Throws std::out_of_range when a
/// binding points past the circuit or the value vector (a stale plan — the
/// caller treats that as a cache miss, never ships it).
void bind_parameters(Circuit& c, const std::vector<ParamBinding>& bindings,
                     const std::vector<double>& values);

} // namespace epoc::circuit
