#include "circuit/unitary.h"

#include <stdexcept>

namespace epoc::circuit {

namespace {

/// Scatter/gather index helpers: for a gate on `qubits`, every full-register
/// basis index splits into (local bits on the gate's qubits, rest). `strides`
/// caches 1<<q per gate qubit.
struct GateIndexer {
    std::vector<std::size_t> strides;
    std::vector<std::size_t> rest_indices; ///< all indices with gate-qubit bits zero
    std::size_t local_dim;

    GateIndexer(const std::vector<int>& qubits, int num_qubits) {
        const std::size_t dim = std::size_t{1} << num_qubits;
        std::size_t mask = 0;
        strides.reserve(qubits.size());
        for (const int q : qubits) {
            const std::size_t s = std::size_t{1} << q;
            strides.push_back(s);
            mask |= s;
        }
        local_dim = std::size_t{1} << qubits.size();
        rest_indices.reserve(dim >> qubits.size());
        for (std::size_t i = 0; i < dim; ++i)
            if ((i & mask) == 0) rest_indices.push_back(i);
    }

    std::size_t compose(std::size_t rest, std::size_t local) const {
        std::size_t idx = rest;
        for (std::size_t b = 0; b < strides.size(); ++b)
            if (local & (std::size_t{1} << b)) idx |= strides[b];
        return idx;
    }
};

} // namespace

void apply_gate(std::vector<cplx>& psi, const Matrix& gate_matrix,
                const std::vector<int>& qubits, int num_qubits) {
    const std::size_t local_dim = std::size_t{1} << qubits.size();
    if (gate_matrix.rows() != local_dim || gate_matrix.cols() != local_dim)
        throw std::invalid_argument("apply_gate: matrix dimension mismatch");
    if (psi.size() != (std::size_t{1} << num_qubits))
        throw std::invalid_argument("apply_gate: state dimension mismatch");

    const GateIndexer ix(qubits, num_qubits);
    std::vector<cplx> in(local_dim), out(local_dim);
    std::vector<std::size_t> addr(local_dim);
    for (const std::size_t rest : ix.rest_indices) {
        for (std::size_t l = 0; l < local_dim; ++l) {
            addr[l] = ix.compose(rest, l);
            in[l] = psi[addr[l]];
        }
        for (std::size_t r = 0; r < local_dim; ++r) {
            cplx acc{0.0, 0.0};
            for (std::size_t c = 0; c < local_dim; ++c) acc += gate_matrix(r, c) * in[c];
            out[r] = acc;
        }
        for (std::size_t l = 0; l < local_dim; ++l) psi[addr[l]] = out[l];
    }
}

void apply_gate(Matrix& u, const Matrix& gate_matrix, const std::vector<int>& qubits,
                int num_qubits) {
    const std::size_t dim = std::size_t{1} << num_qubits;
    if (u.rows() != dim) throw std::invalid_argument("apply_gate: accumulator mismatch");
    std::vector<cplx> col(dim);
    for (std::size_t c = 0; c < u.cols(); ++c) {
        for (std::size_t r = 0; r < dim; ++r) col[r] = u(r, c);
        apply_gate(col, gate_matrix, qubits, num_qubits);
        for (std::size_t r = 0; r < dim; ++r) u(r, c) = col[r];
    }
}

Matrix embed_gate(const Matrix& gate_matrix, const std::vector<int>& qubits,
                  int num_qubits) {
    const std::size_t dim = std::size_t{1} << num_qubits;
    Matrix out(dim, dim);
    const GateIndexer ix(qubits, num_qubits);
    const std::size_t local_dim = ix.local_dim;
    for (const std::size_t rest : ix.rest_indices)
        for (std::size_t r = 0; r < local_dim; ++r)
            for (std::size_t c = 0; c < local_dim; ++c)
                out(ix.compose(rest, r), ix.compose(rest, c)) = gate_matrix(r, c);
    return out;
}

Matrix circuit_unitary(const Circuit& c) {
    const std::size_t dim = std::size_t{1} << c.num_qubits();
    Matrix u = Matrix::identity(dim);
    for (const Gate& g : c.gates()) apply_gate(u, g.unitary(), g.qubits, c.num_qubits());
    return u;
}

std::vector<cplx> run_statevector(const Circuit& c) {
    std::vector<cplx> psi(std::size_t{1} << c.num_qubits(), cplx{0.0, 0.0});
    psi[0] = cplx{1.0, 0.0};
    for (const Gate& g : c.gates()) apply_gate(psi, g.unitary(), g.qubits, c.num_qubits());
    return psi;
}

} // namespace epoc::circuit
