// Circuit-to-unitary evaluation.
//
// Gates are applied directly to state-vector columns rather than by building
// full-register gate matrices, so evaluating an n-qubit circuit costs
// O(gates * 4^n * 2^k) instead of O(gates * 8^n).
#pragma once

#include "circuit/circuit.h"

namespace epoc::circuit {

/// Apply `gate_matrix` (dimension 2^|qubits|, local little-endian ordering) to
/// the state vector `psi` of `num_qubits` qubits, in place.
void apply_gate(std::vector<cplx>& psi, const Matrix& gate_matrix,
                const std::vector<int>& qubits, int num_qubits);

/// Apply a gate to a full-register unitary accumulator: u <- G_embedded * u.
void apply_gate(Matrix& u, const Matrix& gate_matrix, const std::vector<int>& qubits,
                int num_qubits);

/// The gate's matrix embedded into the full 2^n register space.
Matrix embed_gate(const Matrix& gate_matrix, const std::vector<int>& qubits,
                  int num_qubits);

/// Full 2^n x 2^n unitary of the circuit.
Matrix circuit_unitary(const Circuit& c);

/// Circuit applied to |0...0>; returns the 2^n amplitude vector.
std::vector<cplx> run_statevector(const Circuit& c);

} // namespace epoc::circuit
