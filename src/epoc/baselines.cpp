#include "epoc/baselines.h"

#include "circuit/decompose.h"
#include "qoc/decoherence.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <chrono>
#include <limits>

namespace epoc::core {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using linalg::Matrix;

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

const qoc::BlockHamiltonian& ham_for(std::map<int, qoc::BlockHamiltonian>& cache, int nq,
                                     const qoc::DeviceParams& dev) {
    auto it = cache.find(nq);
    if (it == cache.end()) it = cache.emplace(nq, qoc::make_block_hamiltonian(nq, dev)).first;
    return it->second;
}

bool is_identity_unitary(const Matrix& u) {
    return linalg::hs_fidelity(u, Matrix::identity(u.rows())) > 1.0 - 1e-10;
}

} // namespace

// ---------------------------------------------------------------- gate-based

GateBasedCompiler::GateBasedCompiler(qoc::DeviceParams device,
                                     qoc::LatencySearchOptions latency)
    : device_(device), latency_(latency), library_(true) {}

EpocResult GateBasedCompiler::compile(const Circuit& c) {
    EpocResult res;
    const auto t0 = std::chrono::steady_clock::now();
    res.depth_original = c.depth();
    res.gates_original = c.size();

    const Circuit lowered = circuit::transpile(c, circuit::Basis::RZ_SX_CX);
    res.synthesized = lowered;
    res.synthesized_gates = lowered.size();

    std::vector<PulseJob> jobs;
    for (const Gate& g : lowered.gates()) {
        if (g.kind == GateKind::RZ || g.kind == GateKind::P) {
            // Virtual Z: frame update, zero duration, perfect fidelity.
            jobs.push_back({g.qubits, 0.0, 1.0, "rz"});
            continue;
        }
        const auto lr = library_.get_or_generate(
            ham_for(hams_, g.arity(), device_), g.unitary(), latency_);
        jobs.push_back({g.qubits, lr->pulse.duration(), lr->pulse.fidelity,
                        circuit::kind_name(g.kind)});
    }
    res.schedule = schedule_asap(jobs, c.num_qubits());
    res.num_pulses = jobs.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t0);
    res.library_stats = library_.stats();
    return res;
}

// ---------------------------------------------------------------- PAQOC-like

PaqocLikeCompiler::PaqocLikeCompiler(PaqocOptions opt)
    : opt_(std::move(opt)), library_(true) {}

EpocResult PaqocLikeCompiler::compile(const Circuit& c) {
    EpocResult res;
    const auto t0 = std::chrono::steady_clock::now();
    res.depth_original = c.depth();
    res.gates_original = c.size();

    const std::vector<partition::CircuitBlock> blocks =
        partition::greedy_partition(c, opt_.partition);
    res.num_blocks = blocks.size();

    std::vector<PulseJob> jobs;
    for (const partition::CircuitBlock& blk : blocks) {
        const Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) continue;
        const auto lr = library_.get_or_generate(
            ham_for(hams_, static_cast<int>(blk.qubits.size()), opt_.device), u,
            opt_.latency);
        jobs.push_back({blk.qubits, lr->pulse.duration(), lr->pulse.fidelity, "group"});
    }
    res.schedule = schedule_asap(jobs, c.num_qubits());
    res.num_pulses = jobs.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t0);
    res.library_stats = library_.stats();
    return res;
}

// --------------------------------------------------------------- AccQOC-like

AccqocLikeCompiler::AccqocLikeCompiler(AccqocOptions opt)
    : opt_(std::move(opt)), library_(true) {}

EpocResult AccqocLikeCompiler::compile(const Circuit& c) {
    EpocResult res;
    const auto t0 = std::chrono::steady_clock::now();
    res.depth_original = c.depth();
    res.gates_original = c.size();

    partition::PartitionOptions popt;
    popt.max_qubits = 2;
    popt.max_gates = opt_.slice_gates;
    const std::vector<partition::CircuitBlock> blocks = partition::greedy_partition(c, popt);
    res.num_blocks = blocks.size();

    // Gather distinct unitaries that are not yet in the library.
    struct Pending {
        Matrix u;
        int nq;
    };
    std::vector<Pending> pending;
    std::vector<std::string> seen;
    for (const partition::CircuitBlock& blk : blocks) {
        Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) continue;
        const int nq = static_cast<int>(blk.qubits.size());
        if (library_.peek(ham_for(hams_, nq, opt_.device), u, opt_.latency) != nullptr)
            continue;
        const std::string key = linalg::phase_canonical_key(u, 6);
        bool dup = false;
        for (const std::string& s : seen) dup = dup || s == key;
        if (dup) continue;
        seen.push_back(key);
        pending.push_back({std::move(u), static_cast<int>(blk.qubits.size())});
    }

    // Similarity-graph MST (AccQOC): generate pulses along the tree, warm-
    // starting every child from its parent's amplitudes. The first pending
    // unitary roots the tree.
    if (opt_.use_mst && pending.size() > 1) {
        const std::size_t n = pending.size();
        std::vector<bool> in_tree(n, false);
        std::vector<double> dist(n, std::numeric_limits<double>::infinity());
        std::vector<std::size_t> parent(n, 0);
        dist[0] = 0.0;
        std::vector<std::size_t> order;
        for (std::size_t step = 0; step < n; ++step) {
            std::size_t best = n;
            for (std::size_t i = 0; i < n; ++i)
                if (!in_tree[i] && (best == n || dist[i] < dist[best])) best = i;
            in_tree[best] = true;
            order.push_back(best);
            for (std::size_t i = 0; i < n; ++i) {
                if (in_tree[i] || pending[i].nq != pending[best].nq) continue;
                const double d = linalg::phase_invariant_distance(pending[i].u,
                                                                  pending[best].u);
                if (d < dist[i]) {
                    dist[i] = d;
                    parent[i] = best;
                }
            }
        }
        for (const std::size_t i : order) {
            qoc::LatencySearchOptions lopt = opt_.latency;
            if (i != 0 && parent[i] != i) {
                // Warm starts do not key the library entry, so the parent is
                // found under the same options it was generated with.
                const auto pp =
                    library_.peek(ham_for(hams_, pending[parent[i]].nq, opt_.device),
                                  pending[parent[i]].u, opt_.latency);
                if (pp != nullptr && pending[parent[i]].nq == pending[i].nq)
                    lopt.grape.warm_amplitudes = pp->pulse.amplitudes;
            }
            library_.get_or_generate(ham_for(hams_, pending[i].nq, opt_.device),
                                     pending[i].u, lopt);
        }
    }

    std::vector<PulseJob> jobs;
    for (const partition::CircuitBlock& blk : blocks) {
        const Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) continue;
        const auto lr = library_.get_or_generate(
            ham_for(hams_, static_cast<int>(blk.qubits.size()), opt_.device), u,
            opt_.latency);
        jobs.push_back({blk.qubits, lr->pulse.duration(), lr->pulse.fidelity, "slice"});
    }
    res.schedule = schedule_asap(jobs, c.num_qubits());
    res.num_pulses = jobs.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t0);
    res.library_stats = library_.stats();
    return res;
}

} // namespace epoc::core
