// Comparator pipelines for Table 1 and Figures 8-10.
//
//  * GateBasedCompiler  -- the traditional flow: lower to {rz, sx, x, cx} and
//    play one calibrated pulse per gate (rz is virtual / zero-duration).
//  * PaqocLikeCompiler  -- PAQOC (HPCA'23) stand-in: gate-level greedy
//    grouping of the *original* circuit (no ZX, no synthesis) and one QOC
//    pulse per group; the pulse library models its pattern reuse.
//  * AccqocLikeCompiler -- AccQOC (ISCA'20) stand-in: fixed two-qubit slicing
//    plus the similarity-graph MST ordering, warm-starting each GRAPE run
//    from its MST parent's pulse.
//
// All three reuse EpocResult so the benches can print one table.
#pragma once

#include "epoc/pipeline.h"

namespace epoc::core {

class GateBasedCompiler {
public:
    explicit GateBasedCompiler(qoc::DeviceParams device = {},
                               qoc::LatencySearchOptions latency = {});
    EpocResult compile(const circuit::Circuit& c);
    qoc::PulseLibrary& library() { return library_; }

private:
    qoc::DeviceParams device_;
    qoc::LatencySearchOptions latency_;
    qoc::PulseLibrary library_;
    std::map<int, qoc::BlockHamiltonian> hams_;
};

struct PaqocOptions {
    /// PAQOC mines small gate patterns (program-aware basis gates of a few
    /// gates each); max_gates models that pattern granularity.
    partition::PartitionOptions partition{/*max_qubits=*/2, /*max_gates=*/4};
    qoc::DeviceParams device;
    qoc::LatencySearchOptions latency;
};

class PaqocLikeCompiler {
public:
    explicit PaqocLikeCompiler(PaqocOptions opt = {});
    EpocResult compile(const circuit::Circuit& c);
    qoc::PulseLibrary& library() { return library_; }

private:
    PaqocOptions opt_;
    qoc::PulseLibrary library_;
    std::map<int, qoc::BlockHamiltonian> hams_;
};

struct AccqocOptions {
    int slice_gates = 4; ///< vertical slice size over 2-qubit groups
    qoc::DeviceParams device;
    qoc::LatencySearchOptions latency;
    bool use_mst = true;
};

class AccqocLikeCompiler {
public:
    explicit AccqocLikeCompiler(AccqocOptions opt = {});
    EpocResult compile(const circuit::Circuit& c);
    qoc::PulseLibrary& library() { return library_; }

private:
    AccqocOptions opt_;
    qoc::PulseLibrary library_;
    std::map<int, qoc::BlockHamiltonian> hams_;
};

} // namespace epoc::core
