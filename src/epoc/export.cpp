#include "epoc/export.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace epoc::core {

namespace {

void json_escape_into(std::ostringstream& os, const std::string& s) {
    static const char* hex = "0123456789abcdef";
    for (const char ch : s) {
        switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        case '\b': os << "\\b"; break;
        case '\f': os << "\\f"; break;
        default:
            // Remaining control characters are invalid raw JSON; \u-escape.
            if (static_cast<unsigned char>(ch) < 0x20)
                os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
            else
                os << ch;
        }
    }
}

/// JSON has no NaN/inf tokens; a bare `nan` from ostream would make the whole
/// document unparseable. Degraded schedules can carry non-finite fidelities
/// (the fidelity-0 placeholder path's intermediates), so every numeric field
/// goes through here: non-finite serializes as null, which consumers can
/// detect without choking.
void json_number_into(std::ostringstream& os, double v) {
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

std::string schedule_to_json(const PulseSchedule& s) {
    std::ostringstream os;
    os.precision(12);
    os << "{\"num_qubits\":" << s.num_qubits << ",\"latency_ns\":";
    json_number_into(os, s.latency);
    os << ",\"esp\":";
    json_number_into(os, s.esp);
    os << ",\"pulses\":[";
    for (std::size_t i = 0; i < s.pulses.size(); ++i) {
        const ScheduledPulse& p = s.pulses[i];
        if (i) os << ",";
        os << "{\"label\":\"";
        json_escape_into(os, p.job.label);
        os << "\",\"qubits\":[";
        for (std::size_t q = 0; q < p.job.qubits.size(); ++q) {
            if (q) os << ",";
            os << p.job.qubits[q];
        }
        os << "],\"start_ns\":";
        json_number_into(os, p.start);
        os << ",\"duration_ns\":";
        json_number_into(os, p.job.duration);
        os << ",\"fidelity\":";
        json_number_into(os, p.job.fidelity);
        os << "}";
    }
    os << "]}";
    return os.str();
}

std::string ascii_timeline(const PulseSchedule& s, int columns) {
    std::ostringstream os;
    if (s.num_qubits == 0) return "(empty schedule)\n";
    // The axis footer prints `columns - 2` spaces; anything below 2 columns
    // underflowed to a multi-gigabyte string (size_t wraparound).
    columns = std::max(columns, 2);
    const double span = std::max(s.latency, 1e-9);
    const double per_col = span / columns;
    std::vector<std::string> rows(static_cast<std::size_t>(s.num_qubits),
                                  std::string(static_cast<std::size_t>(columns), '.'));
    for (const ScheduledPulse& p : s.pulses) {
        if (p.job.duration <= 0.0) continue;
        int c0 = static_cast<int>(std::floor(p.start / per_col));
        int c1 = static_cast<int>(std::ceil(p.end / per_col)) - 1;
        c0 = std::clamp(c0, 0, columns - 1);
        c1 = std::clamp(c1, c0, columns - 1);
        for (const int q : p.job.qubits)
            for (int col = c0; col <= c1; ++col)
                rows[static_cast<std::size_t>(q)][static_cast<std::size_t>(col)] = '#';
    }
    for (int q = 0; q < s.num_qubits; ++q) {
        os << "q" << q << (q < 10 ? "  |" : " |") << rows[static_cast<std::size_t>(q)]
           << "|\n";
    }
    os << "     0" << std::string(static_cast<std::size_t>(columns) - 2, ' ')
       << static_cast<long long>(std::llround(s.latency)) << " ns\n";
    return os.str();
}

} // namespace epoc::core
