// Schedule serialization and visualization: JSON export for downstream
// tooling and an ASCII timeline for terminals. The JSON schema is stable and
// covered by tests.
#pragma once

#include "epoc/scheduler.h"

#include <string>

namespace epoc::core {

/// JSON object: {"num_qubits":N,"latency_ns":..,"esp":..,"pulses":[
///   {"label":..,"qubits":[..],"start_ns":..,"duration_ns":..,"fidelity":..},..]}
/// Always valid JSON: non-finite numbers (degraded schedules can carry NaN
/// fidelities) serialize as null, never as bare nan/inf tokens.
std::string schedule_to_json(const PulseSchedule& s);

/// Fixed-width per-qubit timeline, one row per qubit; '#' marks busy time.
/// `columns` is the width of the time axis.
std::string ascii_timeline(const PulseSchedule& s, int columns = 72);

} // namespace epoc::core
