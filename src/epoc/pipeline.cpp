#include "epoc/pipeline.h"

#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "synthesis/kak.h"
#include "qoc/decoherence.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <chrono>
#include <cmath>

namespace epoc::core {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using linalg::Matrix;

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool is_identity_unitary(const Matrix& u) {
    return linalg::hs_fidelity(u, Matrix::identity(u.rows())) > 1.0 - 1e-10;
}

} // namespace

EpocCompiler::EpocCompiler(EpocOptions opt)
    : opt_(std::move(opt)), library_(opt_.phase_aware_library) {}

const qoc::BlockHamiltonian& EpocCompiler::hamiltonian(int num_qubits) {
    auto it = hams_.find(num_qubits);
    if (it == hams_.end())
        it = hams_.emplace(num_qubits, qoc::make_block_hamiltonian(num_qubits, opt_.device))
                 .first;
    return it->second;
}

Circuit EpocCompiler::synthesize_blocks(const std::vector<partition::CircuitBlock>& blocks,
                                        int num_qubits, double& synth_ms) {
    const auto t0 = std::chrono::steady_clock::now();
    Circuit flat(num_qubits);
    for (const partition::CircuitBlock& blk : blocks) {
        // Bridging CNOTs pass through untouched.
        if (blk.bridge && blk.body.size() == 1 && blk.body.gate(0).kind == GateKind::CX) {
            flat.append_mapped(blk.body, blk.qubits);
            continue;
        }
        const Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) continue;

        if (blk.qubits.size() == 1) {
            // Single-qubit blocks synthesize exactly via ZYZ: one VUG.
            const circuit::Zyz e = circuit::zyz_decompose(u);
            Circuit local(1);
            local.u3(e.theta, e.phi, e.lambda, 0);
            flat.append_mapped(local, blk.qubits);
            continue;
        }

        if (opt_.use_kak && blk.qubits.size() == 2) {
            // Analytic fast path: exact, so the keep-original heuristic below
            // compares on entangling content via the peepholed KAK circuit.
            const circuit::Circuit kc =
                circuit::peephole_optimize(synthesis::kak_synthesize(u));
            if (kc.two_qubit_count() <= blk.body.two_qubit_count())
                flat.append_mapped(kc, blk.qubits);
            else
                flat.append_mapped(blk.body, blk.qubits);
            continue;
        }

        const std::string key = linalg::phase_canonical_key(u, 6);
        auto it = synth_cache_.find(key);
        if (it == synth_cache_.end()) {
            synthesis::SynthesisResult sr = synthesis::qsearch_synthesize(u, opt_.qsearch);
            if (!sr.converged && opt_.leap_fallback) {
                synthesis::LeapOptions lo;
                lo.threshold = opt_.qsearch.threshold;
                lo.instantiate = opt_.qsearch.instantiate;
                synthesis::SynthesisResult leap = synthesis::leap_synthesize(u, lo);
                if (leap.distance < sr.distance) sr = std::move(leap);
            }
            it = synth_cache_.emplace(key, std::move(sr)).first;
        }
        // Synthesis is an optimization, not an obligation: if the searched
        // circuit carries no fewer entangling gates than the original block
        // (or missed the accuracy target), keep the original gates -- they
        // may be better parallelized.
        const synthesis::SynthesisResult& sr = it->second;
        const bool synth_wins =
            sr.converged &&
            (static_cast<std::size_t>(sr.cnot_count) < blk.body.two_qubit_count() ||
             (static_cast<std::size_t>(sr.cnot_count) == blk.body.two_qubit_count() &&
              sr.circuit.depth() <= blk.body.depth()));
        if (synth_wins)
            flat.append_mapped(sr.circuit, blk.qubits);
        else
            flat.append_mapped(blk.body, blk.qubits);
    }
    synth_ms += ms_since(t0);
    return flat;
}

EpocResult EpocCompiler::compile(const Circuit& c) {
    EpocResult res;
    res.depth_original = c.depth();
    res.gates_original = c.size();
    const auto t_start = std::chrono::steady_clock::now();

    // 1. Graph-based depth optimization.
    Circuit current = c;
    {
        const auto t0 = std::chrono::steady_clock::now();
        if (opt_.use_zx) {
            zx::ZxOptimizeResult zr = zx::zx_optimize(c);
            current = std::move(zr.circuit);
        }
        res.zx_ms = ms_since(t0);
    }
    res.depth_after_zx = current.depth();

    // 2+3. Partition and synthesize.
    if (opt_.use_synthesis) {
        const std::vector<partition::CircuitBlock> blocks =
            partition::greedy_partition(current, opt_.partition);
        res.num_blocks = blocks.size();
        current = synthesize_blocks(blocks, current.num_qubits(), res.synthesis_ms);
    }
    res.synthesized = current;
    res.synthesized_gates = current.size();

    // 4+5. Regroup (or not) and generate pulses.
    //
    // The fine-grained arm (one pulse per synthesized gate) is always
    // evaluated -- it is cheap thanks to the pulse library. With regrouping
    // enabled the grouped schedule is evaluated too and the shorter of the
    // two wins: on wide, shallow circuits a wide block pulse can blockade
    // qubit lines and lose to well-packed per-gate pulses.
    {
        const auto t0 = std::chrono::steady_clock::now();

        std::vector<PulseJob> fine_jobs;
        for (const Gate& g : current.gates()) {
            const Matrix u = g.unitary();
            if (is_identity_unitary(u)) continue;
            const qoc::LatencyResult& lr = library_.get_or_generate(
                hamiltonian(g.arity()), u, opt_.latency);
            fine_jobs.push_back(
                {g.qubits, lr.pulse.duration(), lr.pulse.fidelity, kind_name(g.kind)});
        }
        const PulseSchedule fine = schedule_asap(fine_jobs, c.num_qubits());

        if (opt_.regroup_enabled) {
            std::vector<PulseJob> jobs;
            const std::vector<partition::CircuitBlock> groups =
                regroup(current, opt_.regroup_opt);
            for (const partition::CircuitBlock& blk : groups) {
                const Matrix u = partition::block_unitary(blk);
                if (is_identity_unitary(u)) continue;
                qoc::LatencySearchOptions lopt = opt_.latency;
                // Coarser duration resolution for big blocks keeps the GRAPE
                // budget bounded (dim-16 propagators are ~8x dim-8 cost).
                if (blk.qubits.size() >= 4)
                    lopt.slot_granularity = std::max(lopt.slot_granularity, 4);
                else if (blk.qubits.size() == 3)
                    lopt.slot_granularity = std::max(lopt.slot_granularity, 2);
                const qoc::LatencyResult& lr = library_.get_or_generate(
                    hamiltonian(static_cast<int>(blk.qubits.size())), u, lopt);
                jobs.push_back({blk.qubits, lr.pulse.duration(), lr.pulse.fidelity,
                                "block" + std::to_string(jobs.size())});
            }
            const PulseSchedule grouped = schedule_asap(jobs, c.num_qubits());
            res.schedule = (grouped.latency <= fine.latency) ? grouped : fine;
        } else {
            res.schedule = fine;
        }
        res.qoc_ms = ms_since(t0);
    }
    res.num_pulses = res.schedule.pulses.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t_start);
    res.library_stats = library_.stats();
    return res;
}

} // namespace epoc::core
