#include "epoc/pipeline.h"

#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "synthesis/kak.h"
#include "qoc/decoherence.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>

namespace epoc::core {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using linalg::Matrix;

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool is_identity_unitary(const Matrix& u) {
    return linalg::hs_fidelity(u, Matrix::identity(u.rows())) > 1.0 - 1e-10;
}

std::string fp_hex(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/// Per-block synthesis outcome, computed in parallel and merged in block
/// order so the flat circuit is identical to the sequential pass.
struct SynthFragment {
    bool visited = false;    ///< the block's task actually ran (vs cancelled)
    bool skip = false;       ///< identity block: emit nothing
    bool use_original = false; ///< bridge or synthesis loss: emit blk.body
    Circuit local{0};        ///< otherwise: the synthesized local circuit
    util::BlockStatus status{util::Stage::synthesis, util::Cause::none, false, {}};
    verify::Outcome verify = verify::Outcome::not_checked;
};

/// Per-block pulse outcome: zero jobs (identity), one job (the block pulse),
/// or several (the gate-by-gate fallback rung).
struct PulseFragment {
    bool visited = false;
    std::vector<PulseJob> jobs;
    util::BlockStatus status{util::Stage::pulse, util::Cause::none, false, {}};
    verify::Outcome verify = verify::Outcome::not_checked;
    double audit_err = 0.0; ///< per-fragment contribution to the error budget
};

/// Worst-outcome-wins fold for fragments auditing several pulses (the
/// gate-by-gate rung): failed > unverified > passed > not_checked.
verify::Outcome combine(verify::Outcome a, verify::Outcome b) {
    auto rank = [](verify::Outcome o) {
        switch (o) {
        case verify::Outcome::failed: return 3;
        case verify::Outcome::unverified: return 2;
        case verify::Outcome::passed: return 1;
        case verify::Outcome::not_checked: return 0;
        }
        return 0;
    };
    return rank(a) >= rank(b) ? a : b;
}

/// Thrown out of build_plan on *any* degradation (deadline expiry, injected
/// fault, failed stage audit, a degraded synthesis block): the plan cache's
/// single-flight slot is erased by the throw and the compile falls back to
/// the ordinary cold pipeline, whose ladder handles the condition honestly.
/// Only clean plans are ever cached — the cache-poisoning rule for plans.
struct PlanDegraded : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// compile() boundary validation: structural problems are reported as a
/// structured status up front (a bad_alloc from a negative qubit count, gates
/// off the register). schedule_asap itself no longer throws on out-of-range
/// qubits — it drops and counts them — but rejecting malformed input here
/// keeps the whole pipeline from wasting a synthesis pass on it.
util::BlockStatus validate_input(const Circuit& c) {
    util::BlockStatus st;
    st.stage = util::Stage::input;
    if (c.num_qubits() < 0) {
        st.cause = util::Cause::invalid_input;
        st.detail = "negative qubit count";
        return st;
    }
    if (c.num_qubits() == 0 && !c.empty()) {
        st.cause = util::Cause::invalid_input;
        st.detail = "gates on a zero-qubit register";
        return st;
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
        for (const int q : c.gate(i).qubits) {
            if (q < 0 || q >= c.num_qubits()) {
                st.cause = util::Cause::invalid_input;
                st.detail = "gate " + std::to_string(i) + " (" +
                            kind_name(c.gate(i).kind) + ") addresses qubit " +
                            std::to_string(q) + " outside register of width " +
                            std::to_string(c.num_qubits());
                return st;
            }
        }
    }
    return st;
}

} // namespace

EpocCompiler::EpocCompiler(EpocOptions opt)
    : opt_(std::move(opt)),
      tracer_(opt_.trace_enabled),
      verifier_(
          [&] {
              // verify_opt carries the tuning knobs; the *level* comes from
              // verify_level + EPOC_VERIFY (env wins only over `unset`).
              verify::VerifyOptions v = opt_.verify_opt;
              v.level = verify::resolve_level(opt_.verify_level);
              return v;
          }(),
          &tracer_),
      pool_(opt_.num_threads),
      library_(opt_.phase_aware_library) {
    library_.set_tracer(&tracer_);
    std::string store_dir = opt_.pulse_store_dir;
    if (store_dir.empty()) store_dir = store::PulseStore::dir_from_env();
    bool have_packs = false;
    if (!store_dir.empty()) {
        store::PulseStoreOptions sopt;
        sopt.dir = store_dir;
        sopt.max_bytes = opt_.pulse_store_max_bytes;
        sopt.pack_dirs = opt_.pulse_pack_dirs;
        if (sopt.pack_dirs.empty())
            sopt.pack_dirs = store::PulseStore::pack_dirs_from_env();
        have_packs = !sopt.pack_dirs.empty();
        store_ = std::make_unique<store::PulseStore>(std::move(sopt));
        library_.set_store(store_.get());
    }
    if ((verifier_.enabled() || have_packs) && store_ != nullptr) {
        // Store revalidation: sampled re-simulation of L2 hits, catching
        // post-checksum damage (bytes intact, physics wrong). The sampling
        // decision keys on the store key itself so it is deterministic across
        // thread counts and processes. A rejected entry is quarantined by the
        // library and regenerated as an ordinary miss.
        //
        // Pack hits are *foreign* bytes (another machine, another build) and
        // skip the sampling gate entirely: every one is re-simulated before
        // it is trusted, even at verify level off — revalidate() is
        // level-independent and fail-open, so a shipped library costs one
        // forward simulation per first use of each entry, not a GRAPE run.
        library_.set_revalidator([this](const std::string& key,
                                        const qoc::BlockHamiltonian& h,
                                        const Matrix& target,
                                        const qoc::LatencyResult& r, bool foreign) {
            if (foreign) return verifier_.revalidate(h, target, r, /*foreign=*/true);
            if (!verifier_.should_check_key(key)) return true;
            return verifier_.revalidate(h, target, r);
        });
    }
}

const qoc::BlockHamiltonian& EpocCompiler::hamiltonian(int num_qubits) {
    // std::map never invalidates references on insert, so handing out refs
    // under a short lock is safe even while other threads add entries.
    const std::string key = "n:" + std::to_string(num_qubits);
    std::lock_guard<std::mutex> lock(hams_mutex_);
    auto it = hams_.find(key);
    if (it == hams_.end())
        it = hams_.emplace(key, qoc::make_block_hamiltonian(num_qubits, opt_.device))
                 .first;
    return it->second;
}

const qoc::BlockHamiltonian& EpocCompiler::block_hamiltonian(
    const backend::Backend* be, const std::vector<int>& qubits) {
    if (be == nullptr) return hamiltonian(static_cast<int>(qubits.size()));
    std::string key = "b:" + fp_hex(be->fingerprint_hash()) + ":";
    for (const int q : qubits) {
        key += std::to_string(q);
        key += ',';
    }
    std::lock_guard<std::mutex> lock(hams_mutex_);
    auto it = hams_.find(key);
    if (it == hams_.end())
        it = hams_.emplace(std::move(key), be->block_hamiltonian(qubits)).first;
    return it->second;
}

EpocCompiler::PulseTarget EpocCompiler::gate_pulse_target(const backend::Backend* be,
                                                          const Gate& g) const {
    if (be == nullptr) return PulseTarget{g.qubits, g.unitary()};
    // Physical support: the operands plus any shortest-path qubits needed to
    // connect them, so the resolved Hamiltonian actually couples every
    // operand pair (a pulse over a disconnected set cannot entangle it).
    std::set<int> support(g.qubits.begin(), g.qubits.end());
    for (std::size_t i = 1; i < g.qubits.size(); ++i) {
        int cur = g.qubits[0];
        while (cur != g.qubits[i] && !be->coupling.adjacent(cur, g.qubits[i])) {
            cur = be->coupling.next_hop(cur, g.qubits[i]);
            support.insert(cur);
        }
    }
    std::vector<int> qs(support.begin(), support.end()); // sorted by std::set
    std::vector<int> locals;
    locals.reserve(g.qubits.size());
    for (const int q : g.qubits)
        locals.push_back(static_cast<int>(
            std::lower_bound(qs.begin(), qs.end(), q) - qs.begin()));
    Matrix u = circuit::embed_gate(g.unitary(), locals, static_cast<int>(qs.size()));
    if (be->levels > 2)
        u = backend::embed_in_levels(u, static_cast<int>(qs.size()), be->levels);
    return PulseTarget{std::move(qs), std::move(u)};
}

util::Cause EpocCompiler::expiry_cause(const util::Deadline& deadline) const {
    // The deadline carries the per-call token (which may be opt_.cancel or a
    // CompileCallOptions override): ask it, not the configured default, so a
    // daemon job cancelled by its own client is reported as cancelled even
    // while other jobs' tokens stay untouched.
    const util::CancelToken* token = deadline.token();
    return (token != nullptr && token->cancelled()) ? util::Cause::cancelled
                                                    : util::Cause::timeout;
}

EpocCompiler::AuditedPulse EpocCompiler::audit_pulse_result(
    std::shared_ptr<const qoc::LatencyResult> lr, const qoc::BlockHamiltonian& h,
    const Matrix& target, const qoc::LatencySearchOptions& lopt,
    util::BlockStatus& status) {
    AuditedPulse out;
    out.result = std::move(lr);
    out.fidelity = out.result->pulse.fidelity;
    // Only authoritative, feasible results are worth auditing (the degraded
    // rungs already carry an honest cause), and sampled mode audits only the
    // deterministic unitary-keyed subset.
    if (!verifier_.enabled() || !out.result->feasible || !out.result->authoritative() ||
        !verifier_.should_check_unitary(target))
        return out;

    double err = 0.0;
    double resim = 0.0;
    out.outcome = verifier_.audit_pulse(h, target, *out.result, &err, &resim);
    out.audit_err = err;
    out.fidelity = resim;
    if (out.outcome != verify::Outcome::failed) return out;

    // Recompute-once rung: the recorded fidelity disagrees with the re-
    // simulated physics. Evict exactly the rejected value from memory and
    // store (compare-and-evict, so concurrent holders trigger one
    // regeneration) and audit the honest re-run.
    tracer_.add_counter("verify.pulse_audit_failures");
    verifier_.note_recompute();
    const std::shared_ptr<const qoc::LatencyResult> fresh =
        library_.regenerate(h, target, lopt, out.result);
    out.outcome = verifier_.audit_pulse(h, target, *fresh, &err, &resim);
    out.result = fresh;
    out.audit_err = err;
    out.fidelity = resim;
    status.cause = util::Cause::verify_failed;
    if (out.outcome == verify::Outcome::failed) {
        // Still wrong after the recompute: the caller must fall a rung, or —
        // when no finer rung exists — ship the re-simulated fidelity instead
        // of the proven-untrustworthy recorded one.
        out.resolved = false;
        status.fallback_taken = true;
        if (status.detail.empty()) status.detail = "pulse audit failed after recompute";
    } else {
        if (status.detail.empty()) status.detail = "bad pulse detected; recomputed";
    }
    return out;
}

Circuit EpocCompiler::synthesize_blocks(const std::vector<partition::CircuitBlock>& blocks,
                                        int num_qubits, double& synth_ms,
                                        const util::Deadline& deadline, EpocResult& res,
                                        const backend::Backend* be) {
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<SynthFragment> fragments(blocks.size());
    pool_.parallel_for(
        blocks.size(),
        [&](std::size_t i) {
            const partition::CircuitBlock& blk = blocks[i];
            SynthFragment& frag = fragments[i];
            frag.visited = true;
            const util::Tracer::Span span = tracer_.span(
                "synth block " + std::to_string(i) + " (" +
                    std::to_string(blk.qubits.size()) + "q)",
                "synthesis");
            try {
                if (deadline.expired()) {
                    // Past the budget: keep the original gates without even
                    // attempting synthesis (it is an optimization, never an
                    // obligation).
                    frag.use_original = true;
                    frag.status.cause = expiry_cause(deadline);
                    frag.status.fallback_taken = true;
                    tracer_.add_counter("robust.deadline_skips");
                    return;
                }
                util::fault::maybe_throw("synth.block");

                // Bridging CNOTs (and the topology router's SWAP-walk hops)
                // pass through untouched.
                if (blk.bridge && blk.body.size() == 1 &&
                    (blk.body.gate(0).kind == GateKind::CX ||
                     blk.body.gate(0).kind == GateKind::SWAP)) {
                    frag.use_original = true;
                    return;
                }
                const Matrix u = partition::block_unitary(blk);
                if (is_identity_unitary(u)) {
                    frag.skip = true;
                    return;
                }

                // Independent synthesis oracle: the circuit about to replace
                // this block must realise its unitary. Tolerance is the
                // synthesis threshold with an order of magnitude of slack —
                // the oracle hunts wrong circuits, not marginal convergence.
                const double synth_tol = std::max(10.0 * opt_.qsearch.threshold, 1e-8);
                const bool audit_this =
                    verifier_.enabled() && verifier_.should_check_unitary(u);
                // True when the audit did not fail (passed / unverified /
                // sampled out); records the outcome on the fragment.
                const auto audit_synth = [&]() {
                    if (!audit_this) return true;
                    frag.verify =
                        verifier_.check_synthesized_block(u, frag.local, synth_tol);
                    return frag.verify != verify::Outcome::failed;
                };
                // Deterministic analytic paths (ZYZ, KAK) fall straight back
                // to the original gates on an audit failure: re-running a
                // deterministic decomposition would reproduce the bug.
                const auto analytic_audit_or_fallback = [&]() {
                    if (audit_synth()) return;
                    frag.local = Circuit(0);
                    frag.use_original = true;
                    frag.status.cause = util::Cause::verify_failed;
                    frag.status.fallback_taken = true;
                    frag.status.detail = "synthesis audit failed; original gates kept";
                    tracer_.add_counter("verify.synth_audit_failures");
                    tracer_.add_counter("robust.synth_fallbacks");
                };

                if (blk.qubits.size() == 1) {
                    // Single-qubit blocks synthesize exactly via ZYZ: one VUG.
                    const circuit::Zyz e = circuit::zyz_decompose(u);
                    Circuit local(1);
                    local.u3(e.theta, e.phi, e.lambda, 0);
                    frag.local = std::move(local);
                    analytic_audit_or_fallback();
                    return;
                }

                if (opt_.use_kak && blk.qubits.size() == 2) {
                    // Analytic fast path: exact, so the keep-original heuristic
                    // below compares on entangling content via the peepholed
                    // KAK circuit.
                    tracer_.add_counter("synth.kak_fast_path");
                    const circuit::Circuit kc =
                        circuit::peephole_optimize(synthesis::kak_synthesize(u));
                    if (kc.two_qubit_count() <= blk.body.two_qubit_count()) {
                        frag.local = kc;
                        analytic_audit_or_fallback();
                    } else {
                        frag.use_original = true;
                    }
                    return;
                }

                // Topology-aware mode: restrict CNOT placements to local
                // pairs that are coupling-adjacent on the device, so the
                // synthesized circuit needs no further routing. The cache key
                // grows a topology tag — the same unitary synthesized under a
                // different local adjacency is a different search.
                std::vector<std::pair<int, int>> allowed;
                std::string key = linalg::phase_canonical_key(u, 6);
                if (be != nullptr) {
                    for (std::size_t a = 0; a < blk.qubits.size(); ++a)
                        for (std::size_t b = a + 1; b < blk.qubits.size(); ++b)
                            if (be->coupling.adjacent(blk.qubits[a], blk.qubits[b]))
                                allowed.emplace_back(static_cast<int>(a),
                                                     static_cast<int>(b));
                    key += "|T:";
                    for (const auto& [a, b] : allowed)
                        key += std::to_string(a) + "_" + std::to_string(b) + ",";
                }
                const auto compute = [&] {
                    // Single-flight: exactly one QSearch/LEAP run per
                    // distinct unitary, so these counters match the
                    // sequential schedule for every thread count.
                    const util::Tracer::Span qspan = tracer_.span(
                        "qsearch " + std::to_string(blk.qubits.size()) + "q",
                        "synthesis");
                    util::fault::maybe_throw("synth.compute");
                    synthesis::QSearchOptions qopt = opt_.qsearch;
                    qopt.deadline = &deadline;
                    qopt.allowed_pairs = allowed;
                    synthesis::SynthesisResult r = synthesis::qsearch_synthesize(u, qopt);
                    if (!r.converged && !r.timed_out && opt_.leap_fallback) {
                        const util::Tracer::Span lspan = tracer_.span(
                            "leap " + std::to_string(blk.qubits.size()) + "q",
                            "synthesis");
                        tracer_.add_counter("synth.leap_fallbacks");
                        synthesis::LeapOptions lo;
                        lo.threshold = opt_.qsearch.threshold;
                        lo.instantiate = opt_.qsearch.instantiate;
                        lo.deadline = &deadline;
                        lo.allowed_pairs = allowed;
                        synthesis::SynthesisResult leap = synthesis::leap_synthesize(u, lo);
                        if (leap.distance < r.distance) r = std::move(leap);
                    }
                    tracer_.add_counter(r.converged ? "synth.converged"
                                                    : "synth.unconverged");
                    return r;
                };
                // Timed-out searches are best-effort, not the answer for this
                // unitary: never store them.
                const auto cacheable = [](const synthesis::SynthesisResult& r) {
                    return !r.timed_out;
                };
                // Waiter-retry: single-flight publishes a timed-out result to
                // the callers blocked on the losing leader and evicts it — but
                // a healthy waiter inheriting it would ship another job's
                // degradation. While our own budget is intact, re-enter the
                // cache instead (bounded; same rule as PulseLibrary).
                std::shared_ptr<const synthesis::SynthesisResult> sr;
                for (int attempt = 0;; ++attempt) {
                    bool led = false;
                    sr = synth_cache_.get_or_compute(
                        key,
                        [&] {
                            led = true;
                            return compute();
                        },
                        cacheable);
                    if (led || !sr->timed_out) break;
                    if (deadline.expired() || attempt >= 3) break;
                    synth_cache_.erase_if(key, sr);
                    tracer_.add_counter("synth.waiter_retries");
                }
                // Synthesis is an optimization, not an obligation: if the
                // searched circuit carries no fewer entangling gates than the
                // original block (or missed the accuracy target), keep the
                // original gates -- they may be better parallelized.
                const bool synth_wins =
                    sr->converged &&
                    (static_cast<std::size_t>(sr->cnot_count) < blk.body.two_qubit_count() ||
                     (static_cast<std::size_t>(sr->cnot_count) ==
                          blk.body.two_qubit_count() &&
                      sr->circuit.depth() <= blk.body.depth()));
                tracer_.add_counter(synth_wins ? "synth.blocks_replaced"
                                               : "synth.blocks_kept_original");
                if (sr->timed_out) {
                    frag.status.cause = expiry_cause(deadline);
                    frag.status.fallback_taken = !synth_wins;
                }
                if (!synth_wins) {
                    frag.use_original = true;
                    return;
                }
                frag.local = sr->circuit;
                // Silent-corruption site for tests/CI: a plausible but *wrong*
                // synthesized circuit — status says converged, distance says
                // fine, only an independent audit can tell. Deliberately not
                // gated on the verifier, so verify=off demonstrably ships it.
                if (util::fault::maybe_fail("synth.badcircuit") &&
                    frag.local.num_qubits() > 0)
                    frag.local.x(0);
                if (audit_synth()) return;
                // Recompute-once rung: the cached entry may be poisoned (a
                // collision, a stale build's result, injected corruption) —
                // evict exactly that value and re-search before giving up.
                tracer_.add_counter("verify.synth_audit_failures");
                verifier_.note_recompute();
                synth_cache_.erase_if(key, sr);
                sr = synth_cache_.get_or_compute(key, compute, cacheable);
                frag.local = sr->circuit;
                if (util::fault::maybe_fail("synth.badcircuit") &&
                    frag.local.num_qubits() > 0)
                    frag.local.x(0);
                if (audit_synth()) {
                    frag.status.cause = util::Cause::verify_failed;
                    frag.status.detail = "bad synthesized circuit detected; recomputed";
                    return;
                }
                frag.local = Circuit(0);
                frag.use_original = true;
                frag.status.cause = util::Cause::verify_failed;
                frag.status.fallback_taken = true;
                frag.status.detail = "synthesis audit failed after recompute";
                tracer_.add_counter("robust.synth_fallbacks");
            } catch (const util::fault::InjectedFault& e) {
                frag.skip = false;
                frag.use_original = true;
                frag.status.cause = util::Cause::injected;
                frag.status.fallback_taken = true;
                frag.status.detail = e.what();
                tracer_.add_counter("robust.injected_faults");
                tracer_.add_counter("robust.synth_fallbacks");
            } catch (const std::exception& e) {
                frag.skip = false;
                frag.use_original = true;
                frag.status.cause = util::Cause::exception;
                frag.status.fallback_taken = true;
                frag.status.detail = e.what();
                tracer_.add_counter("robust.synth_fallbacks");
            } catch (...) {
                frag.skip = false;
                frag.use_original = true;
                frag.status.cause = util::Cause::exception;
                frag.status.fallback_taken = true;
                frag.status.detail = "unknown exception";
                tracer_.add_counter("robust.synth_fallbacks");
            }
        },
        deadline.token());

    // Deterministic merge: block order, not completion order.
    Circuit flat(num_qubits);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        SynthFragment& frag = fragments[i];
        if (!frag.visited) {
            // The cancel token stopped the batch before this block was
            // claimed: keep its original gates and say so.
            frag.use_original = true;
            frag.status.cause = util::Cause::cancelled;
            frag.status.fallback_taken = true;
            frag.status.detail = "cancelled before the block ran";
        }
        res.block_reports.push_back(
            {util::Stage::synthesis, i,
             "synth block " + std::to_string(i) + " (" +
                 std::to_string(blocks[i].qubits.size()) + "q)",
             frag.status, frag.verify});
        if (!frag.status.ok()) res.degraded = true;
        if (frag.skip) continue;
        flat.append_mapped(frag.use_original ? blocks[i].body : frag.local,
                           blocks[i].qubits);
    }
    synth_ms += ms_since(t0);
    return flat;
}

std::vector<PulseJob> EpocCompiler::gate_fallback_jobs(
    const partition::CircuitBlock& blk, const qoc::LatencySearchOptions& lopt,
    util::BlockStatus& status, verify::Outcome& outcome, double& audit_err,
    const backend::Backend* be) {
    std::vector<PulseJob> out;
    for (const Gate& g : blk.body.gates()) {
        // Block bodies are local-indexed; map back to global qubit ids.
        std::vector<int> gq;
        gq.reserve(g.qubits.size());
        for (const int q : g.qubits) gq.push_back(blk.qubits.at(static_cast<std::size_t>(q)));
        if (is_identity_unitary(g.unitary())) continue;
        Gate gg = g;
        gg.qubits = gq;
        try {
            util::fault::maybe_throw("pulse.gate");
            const PulseTarget pt = gate_pulse_target(be, gg);
            const qoc::BlockHamiltonian& h = block_hamiltonian(be, pt.qubits);
            std::shared_ptr<const qoc::LatencyResult> lr =
                library_.get_or_generate(h, pt.target, lopt);
            if (!lr->feasible) {
                // Bottom of the ladder for real pulse data: ship the
                // best-so-far (below-threshold) pulse, flagged.
                if (status.cause == util::Cause::none)
                    status.cause = util::Cause::infeasible;
                status.fallback_taken = true;
                tracer_.add_counter("qoc.infeasible_blocks");
            }
            const AuditedPulse audited =
                audit_pulse_result(std::move(lr), h, pt.target, lopt, status);
            outcome = combine(outcome, audited.outcome);
            audit_err += audited.audit_err;
            double f = audited.result->pulse.fidelity;
            if (!audited.resolved) {
                // No finer rung below a single gate: ship the re-simulated
                // fidelity in place of the untrustworthy recorded one.
                f = audited.fidelity;
                tracer_.add_counter("robust.untrusted_fidelity_shipped");
            }
            out.push_back(PulseJob{pt.qubits, audited.result->pulse.duration(), f, ""});
        } catch (const std::exception& e) {
            // Rung 3: a placeholder pulse with worst-case duration and zero
            // fidelity — structurally schedulable, and impossible to mistake
            // for a good pulse.
            const double dt = be != nullptr ? be->base.dt : hamiltonian(g.arity()).dt;
            out.push_back(PulseJob{
                gq, dt * static_cast<double>(std::max(1, lopt.max_slots)), 0.0, ""});
            if (dynamic_cast<const util::fault::InjectedFault*>(&e) != nullptr) {
                status.cause = util::Cause::injected;
                tracer_.add_counter("robust.injected_faults");
            } else if (status.cause == util::Cause::none) {
                status.cause = util::Cause::exception;
            }
            status.fallback_taken = true;
            if (status.detail.empty()) status.detail = e.what();
            tracer_.add_counter("robust.placeholder_pulses");
        }
    }
    return out;
}

/// Generate one pulse per non-identity block, in parallel, preserving block
/// order in the returned job list. `coarse_granularity` applies the wide-block
/// slot coarsening used by the regrouped arm. Blocks whose pulse is
/// infeasible, degraded, or errored fall back to gate-by-gate pulses.
/// `warm` (plan path only) seeds GRAPE from — and deposits amplitudes back
/// into — the plan's per-block-index warm slots.
std::vector<PulseJob> EpocCompiler::pulse_jobs_for_blocks(
    const std::vector<partition::CircuitBlock>& blocks, bool coarse_granularity,
    const util::Deadline& deadline, EpocResult& res, double& audit_err,
    const WarmSlots* warm, const backend::Backend* be) {
    // Warm the Hamiltonian cache sequentially so the parallel loop only ever
    // takes the short lookup lock. Best-effort: a block whose Hamiltonian
    // construction fails hits the same error inside the parallel loop, where
    // the degradation ladder handles it.
    for (const partition::CircuitBlock& blk : blocks) {
        try {
            block_hamiltonian(be, blk.qubits);
        } catch (...) {
        }
    }

    qoc::LatencySearchOptions fine_opt = opt_.latency;
    fine_opt.deadline = &deadline;
    fine_opt.grape.deadline = &deadline;

    std::vector<PulseFragment> fragments(blocks.size());
    pool_.parallel_for(
        blocks.size(),
        [&](std::size_t i) {
            const partition::CircuitBlock& blk = blocks[i];
            PulseFragment& frag = fragments[i];
            frag.visited = true;
            const util::Tracer::Span span = tracer_.span(
                "pulse block " + std::to_string(i) + " (" +
                    std::to_string(blk.qubits.size()) + "q)",
                "qoc");
            qoc::LatencySearchOptions lopt = fine_opt;
            if (coarse_granularity) {
                // Coarser duration resolution for big blocks keeps the GRAPE
                // budget bounded (dim-16 propagators are ~8x dim-8 cost).
                if (blk.qubits.size() >= 4)
                    lopt.slot_granularity = std::max(lopt.slot_granularity, 4);
                else if (blk.qubits.size() == 3)
                    lopt.slot_granularity = std::max(lopt.slot_granularity, 2);
            }
            try {
                const Matrix bu = partition::block_unitary(blk);
                if (is_identity_unitary(bu)) return;
                util::fault::maybe_throw("pulse.block");
                // Leakage-aware backends pulse toward the block unitary
                // embedded on the computational subspace (identity on
                // leakage states); otherwise the 2^n unitary directly.
                const Matrix u =
                    (be != nullptr && be->levels > 2)
                        ? backend::embed_in_levels(
                              bu, static_cast<int>(blk.qubits.size()), be->levels)
                        : bu;
                const qoc::BlockHamiltonian& ham = block_hamiltonian(be, blk.qubits);
                if (warm != nullptr) {
                    // Seed a library miss's GRAPE run with the previous
                    // iterate's amplitudes for this structural block. The
                    // library key excludes the seed, so hits are unaffected.
                    std::vector<std::vector<double>> seed = warm->get(i);
                    if (!seed.empty()) {
                        lopt.grape.warm_amplitudes = std::move(seed);
                        tracer_.add_counter("qoc.warm_starts");
                    }
                }
                const std::shared_ptr<const qoc::LatencyResult> lr =
                    library_.get_or_generate(ham, u, lopt);
                if (warm != nullptr && lr->feasible && lr->authoritative())
                    warm->put(i, lr->pulse.amplitudes);
                if (coarse_granularity &&
                    lopt.slot_granularity > opt_.latency.slot_granularity) {
                    // Regression guards for the cache-key collision: the coarse
                    // arm's pulses must actually carry coarsened slot counts,
                    // even when the fine-granularity arm requested the same
                    // unitary first.
                    tracer_.add_counter("qoc.coarse_blocks");
                    tracer_.add_counter("qoc.coarse_block_slots",
                                        static_cast<std::uint64_t>(lr->pulse.num_slots()));
                    if (lr->pulse.num_slots() % lopt.slot_granularity != 0)
                        tracer_.add_counter("qoc.coarse_granularity_violations");
                }
                if (lr->feasible && lr->authoritative()) {
                    const AuditedPulse audited =
                        audit_pulse_result(lr, ham, u, lopt, frag.status);
                    frag.verify = audited.outcome;
                    if (audited.resolved) {
                        frag.audit_err = audited.audit_err;
                        frag.jobs.push_back(PulseJob{blk.qubits,
                                                     audited.result->pulse.duration(),
                                                     audited.result->pulse.fidelity, ""});
                        return;
                    }
                    // Audit still failed after the recompute: fall to the
                    // gate-by-gate rung (the rejected block pulse is not
                    // shipped, so its audit error does not enter the budget).
                    tracer_.add_counter("robust.pulse_block_fallbacks");
                    frag.jobs =
                        gate_fallback_jobs(blk, fine_opt, frag.status, frag.verify,
                                           frag.audit_err, be);
                    return;
                }
                // Ladder rung 2: the block pulse is infeasible or degraded —
                // regenerate this block gate by gate (small targets are far
                // more likely to meet the threshold / fit the budget).
                if (!lr->feasible) {
                    frag.status.cause = util::Cause::infeasible;
                    tracer_.add_counter("qoc.infeasible_blocks");
                } else if (lr->injected) {
                    frag.status.cause = util::Cause::injected;
                } else if (lr->timed_out) {
                    frag.status.cause = expiry_cause(deadline);
                } else {
                    frag.status.cause = util::Cause::nonfinite;
                }
                frag.status.fallback_taken = true;
                tracer_.add_counter("robust.pulse_block_fallbacks");
                frag.jobs = gate_fallback_jobs(blk, fine_opt, frag.status, frag.verify,
                                               frag.audit_err, be);
            } catch (const util::fault::InjectedFault& e) {
                frag.status.cause = util::Cause::injected;
                frag.status.fallback_taken = true;
                frag.status.detail = e.what();
                tracer_.add_counter("robust.injected_faults");
                tracer_.add_counter("robust.pulse_block_fallbacks");
                frag.jobs = gate_fallback_jobs(blk, fine_opt, frag.status, frag.verify,
                                               frag.audit_err, be);
            } catch (const std::exception& e) {
                frag.status.cause = util::Cause::exception;
                frag.status.fallback_taken = true;
                frag.status.detail = e.what();
                tracer_.add_counter("robust.pulse_block_fallbacks");
                frag.jobs = gate_fallback_jobs(blk, fine_opt, frag.status, frag.verify,
                                               frag.audit_err, be);
            } catch (...) {
                frag.status.cause = util::Cause::exception;
                frag.status.fallback_taken = true;
                frag.status.detail = "unknown exception";
                tracer_.add_counter("robust.pulse_block_fallbacks");
                frag.jobs = gate_fallback_jobs(blk, fine_opt, frag.status, frag.verify,
                                               frag.audit_err, be);
            }
        },
        deadline.token());

    std::vector<PulseJob> jobs;
    jobs.reserve(blocks.size());
    std::size_t bi = 0; // running non-identity block ordinal (label scheme)
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        PulseFragment& frag = fragments[i];
        if (!frag.visited) {
            // Cancelled before the block was claimed: placeholder pulses keep
            // the schedule structurally complete without doing QOC work.
            frag.status.cause = util::Cause::cancelled;
            frag.status.fallback_taken = true;
            frag.status.detail = "cancelled before the block ran";
            for (const Gate& g : blocks[i].body.gates()) {
                std::vector<int> gq;
                gq.reserve(g.qubits.size());
                for (const int q : g.qubits)
                    gq.push_back(blocks[i].qubits.at(static_cast<std::size_t>(q)));
                const double dt =
                    be != nullptr ? be->base.dt : hamiltonian(g.arity()).dt;
                frag.jobs.push_back(PulseJob{
                    gq, dt * static_cast<double>(std::max(1, opt_.latency.max_slots)),
                    0.0, ""});
            }
            tracer_.add_counter("robust.placeholder_pulses",
                                static_cast<std::uint64_t>(frag.jobs.size()));
        }
        res.block_reports.push_back(
            {util::Stage::pulse, i,
             std::string(coarse_granularity ? "grouped block " : "pulse block ") +
                 std::to_string(i) + " (" + std::to_string(blocks[i].qubits.size()) + "q)",
             frag.status, frag.verify});
        if (!frag.status.ok()) res.degraded = true;
        audit_err += frag.audit_err; // deterministic block-merge order
        if (frag.jobs.empty()) continue;
        const bool split = frag.jobs.size() > 1;
        for (std::size_t j = 0; j < frag.jobs.size(); ++j) {
            PulseJob job = std::move(frag.jobs[j]);
            job.label = "block" + std::to_string(bi) +
                        (split ? ".g" + std::to_string(j) : "");
            jobs.push_back(std::move(job));
        }
        ++bi;
    }
    return jobs;
}

std::vector<PulseJob> EpocCompiler::fine_pulse_jobs(const Circuit& current,
                                                    const util::Deadline& deadline,
                                                    EpocResult& res, double& audit_err,
                                                    const WarmSlots* warm,
                                                    const backend::Backend* be) {
    qoc::LatencySearchOptions fine_opt = opt_.latency;
    fine_opt.deadline = &deadline;
    fine_opt.grape.deadline = &deadline;

    // Warm the Hamiltonian cache sequentially (best-effort; see
    // pulse_jobs_for_blocks).
    for (const Gate& g : current.gates()) {
        try {
            block_hamiltonian(be, gate_pulse_target(be, g).qubits);
        } catch (...) {
        }
    }
    util::Tracer::Span fine_span = tracer_.span("pulses fine-grained", "pipeline");
    std::vector<PulseFragment> fine_frags(current.size());
    pool_.parallel_for(
        current.size(),
        [&](std::size_t i) {
            const Gate& g = current.gate(i);
            PulseFragment& frag = fine_frags[i];
            frag.visited = true;
            const util::Tracer::Span span = tracer_.span(
                "pulse gate " + std::to_string(i) + " (" + kind_name(g.kind) + ")",
                "qoc");
            try {
                if (is_identity_unitary(g.unitary())) return;
                util::fault::maybe_throw("pulse.gate");
                const PulseTarget pt = gate_pulse_target(be, g);
                const qoc::BlockHamiltonian& h = block_hamiltonian(be, pt.qubits);
                qoc::LatencySearchOptions lopt = fine_opt;
                if (warm != nullptr) {
                    // Plan path: seed a library miss's GRAPE run with the
                    // previous iterate's amplitudes for this gate slot. The
                    // library key excludes the seed, so hits are unaffected.
                    std::vector<std::vector<double>> seed = warm->get(i);
                    if (!seed.empty()) {
                        lopt.grape.warm_amplitudes = std::move(seed);
                        tracer_.add_counter("qoc.warm_starts");
                    }
                }
                std::shared_ptr<const qoc::LatencyResult> lr =
                    library_.get_or_generate(h, pt.target, lopt);
                if (warm != nullptr && lr->feasible && lr->authoritative())
                    warm->put(i, lr->pulse.amplitudes);
                if (!lr->feasible) {
                    // A single gate has no finer rung: ship the best
                    // below-threshold pulse, flagged.
                    frag.status.cause = util::Cause::infeasible;
                    frag.status.fallback_taken = true;
                    tracer_.add_counter("qoc.infeasible_blocks");
                } else if (!lr->authoritative()) {
                    frag.status.cause = lr->injected ? util::Cause::injected
                                        : lr->timed_out
                                            ? expiry_cause(deadline)
                                            : util::Cause::nonfinite;
                }
                // Audit (and any verify-triggered regenerate) under the
                // un-seeded options: the cache key is identical either way,
                // and a recompute must not re-run a possibly-bad seed.
                const AuditedPulse audited =
                    audit_pulse_result(std::move(lr), h, pt.target, fine_opt, frag.status);
                frag.verify = audited.outcome;
                frag.audit_err = audited.audit_err;
                double f = audited.result->pulse.fidelity;
                if (!audited.resolved) {
                    // No finer rung below a single gate: ship with the
                    // re-simulated fidelity instead of the recorded one.
                    f = audited.fidelity;
                    tracer_.add_counter("robust.untrusted_fidelity_shipped");
                }
                frag.jobs.push_back(PulseJob{pt.qubits,
                                             audited.result->pulse.duration(), f,
                                             kind_name(g.kind)});
            } catch (const std::exception& e) {
                const bool injected =
                    dynamic_cast<const util::fault::InjectedFault*>(&e) != nullptr;
                frag.status.cause =
                    injected ? util::Cause::injected : util::Cause::exception;
                frag.status.fallback_taken = true;
                frag.status.detail = e.what();
                const double dt =
                    be != nullptr ? be->base.dt : hamiltonian(g.arity()).dt;
                frag.jobs.push_back(PulseJob{
                    g.qubits,
                    dt * static_cast<double>(std::max(1, opt_.latency.max_slots)),
                    0.0, kind_name(g.kind)});
                if (injected) tracer_.add_counter("robust.injected_faults");
                tracer_.add_counter("robust.placeholder_pulses");
            }
        },
        deadline.token());
    std::vector<PulseJob> fine_jobs;
    fine_jobs.reserve(current.size());
    for (std::size_t i = 0; i < current.size(); ++i) {
        PulseFragment& frag = fine_frags[i];
        if (!frag.visited) {
            frag.status.cause = util::Cause::cancelled;
            frag.status.fallback_taken = true;
            frag.status.detail = "cancelled before the gate ran";
            const Gate& g = current.gate(i);
            const double dt = be != nullptr ? be->base.dt : hamiltonian(g.arity()).dt;
            frag.jobs.push_back(PulseJob{
                g.qubits,
                dt * static_cast<double>(std::max(1, opt_.latency.max_slots)), 0.0,
                kind_name(g.kind)});
            tracer_.add_counter("robust.placeholder_pulses");
        }
        res.block_reports.push_back({util::Stage::pulse, i,
                                     "gate " + std::to_string(i) + " (" +
                                         kind_name(current.gate(i).kind) + ")",
                                     frag.status, frag.verify});
        if (!frag.status.ok()) res.degraded = true;
        audit_err += frag.audit_err; // deterministic gate-merge order
        for (PulseJob& job : frag.jobs) fine_jobs.push_back(std::move(job));
    }
    fine_span.end();
    return fine_jobs;
}

void EpocCompiler::cold_compile(const Circuit& c, const util::Deadline& deadline,
                                EpocResult& res, const backend::Backend* be) {
    // Topology-aware mode: partition and regroup over the backend's coupling
    // map (every block a connected subgraph, bridging gates routed/rejected
    // per the configured policy).
    partition::PartitionOptions popt = opt_.partition;
    RegroupOptions ropt = opt_.regroup_opt;
    if (be != nullptr) {
        popt.coupling = &be->coupling;
        ropt.coupling = &be->coupling;
        ropt.bridge_policy = popt.bridge_policy;
    }
    // 1. Graph-based depth optimization. Failure or a spent budget keeps the
    // original circuit: ZX is a pure optimization.
    Circuit current = c;
    {
        const auto t0 = std::chrono::steady_clock::now();
        if (opt_.use_zx) {
            if (deadline.expired()) {
                res.block_reports.push_back(
                    {util::Stage::zx, 0, "zx",
                     {util::Stage::zx, expiry_cause(deadline), true, "skipped: budget spent"}});
                res.degraded = true;
                tracer_.add_counter("robust.deadline_skips");
            } else {
                try {
                    const util::Tracer::Span span = tracer_.span("zx", "pipeline");
                    util::fault::maybe_throw("zx.fail");
                    zx::ZxOptimizeResult zr = zx::zx_optimize(c);
                    // Stage oracle: the rewritten circuit must still be the
                    // input up to global phase. ZX is deterministic, so a
                    // failed audit keeps the original circuit outright — a
                    // re-run would reproduce the bug.
                    const verify::Outcome vo =
                        verifier_.check_circuit_equiv(c, zr.circuit, "zx");
                    if (vo == verify::Outcome::failed) {
                        res.block_reports.push_back(
                            {util::Stage::zx, 0, "zx",
                             {util::Stage::zx, util::Cause::verify_failed, true,
                              "zx equivalence audit failed; original circuit kept"},
                             vo});
                        res.degraded = true;
                        tracer_.add_counter("robust.zx_fallbacks");
                    } else {
                        current = std::move(zr.circuit);
                    }
                } catch (const std::exception& e) {
                    const bool injected =
                        dynamic_cast<const util::fault::InjectedFault*>(&e) != nullptr;
                    res.block_reports.push_back(
                        {util::Stage::zx, 0, "zx",
                         {util::Stage::zx,
                          injected ? util::Cause::injected : util::Cause::exception, true,
                          e.what()}});
                    res.degraded = true;
                    current = c;
                    if (injected) tracer_.add_counter("robust.injected_faults");
                    tracer_.add_counter("robust.zx_fallbacks");
                }
            }
        }
        res.zx_ms = ms_since(t0);
    }
    res.depth_after_zx = current.depth();

    // 2+3. Partition and synthesize (parallel over blocks). A partitioner
    // failure skips synthesis for the whole circuit (again: an optimization).
    if (opt_.use_synthesis) {
        try {
            util::Tracer::Span part_span = tracer_.span("partition", "pipeline");
            util::fault::maybe_throw("partition.fail");
            const std::vector<partition::CircuitBlock> blocks =
                partition::greedy_partition(current, popt);
            part_span.end();
            res.num_blocks = blocks.size();
            tracer_.add_counter("pipeline.blocks", blocks.size());
            // Stage oracle: the block list must reproduce the circuit it
            // partitions. A failed audit skips synthesis entirely (the
            // blocks are the synthesis input) and keeps `current`.
            const verify::Outcome vo =
                verifier_.check_blocks_equiv(current, blocks, "partition");
            if (vo == verify::Outcome::failed) {
                res.block_reports.push_back(
                    {util::Stage::partition, 0, "partition",
                     {util::Stage::partition, util::Cause::verify_failed, true,
                      "partition equivalence audit failed; synthesis skipped"},
                     vo});
                res.degraded = true;
                tracer_.add_counter("robust.partition_fallbacks");
            } else {
                const util::Tracer::Span span = tracer_.span("synthesis", "pipeline");
                current = synthesize_blocks(blocks, current.num_qubits(),
                                            res.synthesis_ms, deadline, res, be);
            }
        } catch (const std::exception& e) {
            const bool injected =
                dynamic_cast<const util::fault::InjectedFault*>(&e) != nullptr;
            res.block_reports.push_back(
                {util::Stage::partition, 0, "partition",
                 {util::Stage::partition,
                  injected ? util::Cause::injected : util::Cause::exception, true,
                  e.what()}});
            res.degraded = true;
            if (injected) tracer_.add_counter("robust.injected_faults");
            tracer_.add_counter("robust.partition_fallbacks");
        }
    }
    res.synthesized = current;
    res.synthesized_gates = current.size();

    // 4+5. Regroup (or not) and generate pulses (parallel over gates/blocks).
    //
    // The fine-grained arm (one pulse per synthesized gate) is always
    // evaluated -- it is cheap thanks to the pulse library. With regrouping
    // enabled the grouped schedule is evaluated too and the shorter of the
    // two wins: on wide, shallow circuits a wide block pulse can blockade
    // qubit lines and lose to well-packed per-gate pulses.
    {
        const auto t0 = std::chrono::steady_clock::now();

        double fine_budget = 0.0; // audited |recorded - resim| sum, fine arm
        std::vector<PulseJob> fine_jobs =
            fine_pulse_jobs(current, deadline, res, fine_budget, nullptr, be);
        util::Tracer::Span sched_span = tracer_.span("schedule asap", "pipeline");
        const PulseSchedule fine = schedule_asap(fine_jobs, c.num_qubits());
        sched_span.end();

        double shipped_budget = fine_budget; // replaced if the grouped arm wins
        if (opt_.regroup_enabled && deadline.expired()) {
            // No budget left for a second arm: ship the fine-grained one.
            res.block_reports.push_back(
                {util::Stage::regroup, 0, "regroup",
                 {util::Stage::regroup, expiry_cause(deadline), true,
                  "skipped: budget spent"}});
            res.degraded = true;
            tracer_.add_counter("robust.deadline_skips");
            res.schedule = fine;
        } else if (opt_.regroup_enabled) {
            try {
                util::Tracer::Span regroup_span = tracer_.span("regroup", "pipeline");
                util::fault::maybe_throw("regroup.fail");
                const std::vector<partition::CircuitBlock> groups =
                    regroup(current, ropt);
                regroup_span.end();
                tracer_.add_counter("pipeline.regroup_blocks", groups.size());
                // Stage oracle: the regrouped block-unitary product must
                // still be the synthesized circuit. Deterministic stage, so a
                // failed audit drops the grouped arm instead of re-running.
                const verify::Outcome vo =
                    verifier_.check_blocks_equiv(current, groups, "regroup");
                if (vo == verify::Outcome::failed) {
                    res.block_reports.push_back(
                        {util::Stage::regroup, 0, "regroup",
                         {util::Stage::regroup, util::Cause::verify_failed, true,
                          "regroup equivalence audit failed; fine-grained arm kept"},
                         vo});
                    res.degraded = true;
                    tracer_.add_counter("robust.regroup_fallbacks");
                    res.schedule = fine;
                } else {
                    util::Tracer::Span grouped_span =
                        tracer_.span("pulses grouped", "pipeline");
                    double grouped_budget = 0.0;
                    const std::vector<PulseJob> jobs =
                        pulse_jobs_for_blocks(groups, /*coarse_granularity=*/true,
                                              deadline, res, grouped_budget, nullptr,
                                              be);
                    grouped_span.end();
                    util::Tracer::Span gs_span =
                        tracer_.span("schedule asap", "pipeline");
                    const PulseSchedule grouped = schedule_asap(jobs, c.num_qubits());
                    gs_span.end();
                    const bool grouped_wins = grouped.latency <= fine.latency;
                    tracer_.add_counter(grouped_wins ? "pipeline.grouped_arm_wins"
                                                     : "pipeline.fine_arm_wins");
                    res.schedule = grouped_wins ? grouped : fine;
                    if (grouped_wins) shipped_budget = grouped_budget;
                }
            } catch (const std::exception& e) {
                const bool injected =
                    dynamic_cast<const util::fault::InjectedFault*>(&e) != nullptr;
                res.block_reports.push_back(
                    {util::Stage::regroup, 0, "regroup",
                     {util::Stage::regroup,
                      injected ? util::Cause::injected : util::Cause::exception, true,
                      e.what()}});
                res.degraded = true;
                if (injected) tracer_.add_counter("robust.injected_faults");
                tracer_.add_counter("robust.regroup_fallbacks");
                res.schedule = fine;
            }
        } else {
            res.schedule = fine;
        }
        if (res.schedule.dropped_jobs > 0) {
            // The shipped schedule refused jobs addressing out-of-register
            // qubits (schedule_asap drops instead of throwing): report it as
            // a §4e schedule-stage degradation so callers see the partial
            // schedule for what it is.
            res.block_reports.push_back(
                {util::Stage::schedule, 0, "schedule",
                 {util::Stage::schedule, util::Cause::invalid_input, true,
                  res.schedule.drop_detail}});
            res.degraded = true;
            tracer_.add_counter("robust.dropped_jobs", res.schedule.dropped_jobs);
        }
        if (verifier_.enabled()) verifier_.set_error_budget(shipped_budget);
        res.qoc_ms = ms_since(t0);
    }
}

CompilationPlan EpocCompiler::build_plan(const Circuit& c,
                                         const circuit::StrippedCircuit& stripped,
                                         const util::Deadline& deadline,
                                         const backend::Backend* be) {
    const util::Tracer::Span span = tracer_.span("plan build", "pipeline");
    partition::PartitionOptions popt = opt_.partition;
    RegroupOptions ropt = opt_.regroup_opt;
    if (be != nullptr) {
        popt.coupling = &be->coupling;
        ropt.coupling = &be->coupling;
        ropt.bridge_policy = popt.bridge_policy;
    }
    CompilationPlan plan;
    plan.key = stripped.key;
    plan.num_qubits = c.num_qubits();
    plan.num_slots = stripped.params.size();
    plan.depth_original = c.depth();

    // Parametric gates are reuse barriers: ZX, partition and synthesis run
    // only over the maximal parameter-free program-order segments between
    // them, which makes every cached stage product angle-independent by
    // construction. The parametric gates themselves pass through stamped
    // with slot sentinels (circuit/structure.h), in exactly the slot order
    // strip_parameters assigned, so the bindings recovered by scanning the
    // finished skeleton line up with the stripped angle vector.
    Circuit skeleton(c.num_qubits());
    Circuit zx_only(c.num_qubits()); // post-ZX, pre-synthesis (diagnostics)
    Circuit segment(c.num_qubits());
    std::size_t slot = 0;
    EpocResult scratch; // synthesize_blocks reporting sink; never shipped
    const auto process_segment = [&] {
        if (segment.empty()) return;
        Circuit seg = std::move(segment);
        segment = Circuit(c.num_qubits());
        if (deadline.expired()) throw PlanDegraded("plan build: budget spent");
        if (opt_.use_zx) {
            zx::ZxOptimizeResult zr = zx::zx_optimize(seg);
            // The same stage oracles a cold compile runs guard the build; a
            // failure aborts the plan instead of caching a degraded one.
            if (verifier_.check_circuit_equiv(seg, zr.circuit, "zx") ==
                verify::Outcome::failed)
                throw PlanDegraded("plan build: zx equivalence audit failed");
            seg = std::move(zr.circuit);
        }
        zx_only.append(seg);
        if (opt_.use_synthesis) {
            const std::vector<partition::CircuitBlock> blocks =
                partition::greedy_partition(seg, popt);
            plan.partition_blocks += blocks.size();
            if (verifier_.check_blocks_equiv(seg, blocks, "partition") ==
                verify::Outcome::failed)
                throw PlanDegraded("plan build: partition equivalence audit failed");
            double synth_ms = 0.0;
            seg = synthesize_blocks(blocks, c.num_qubits(), synth_ms, deadline, scratch,
                                    be);
            if (scratch.degraded)
                throw PlanDegraded("plan build: degraded synthesis block");
        }
        skeleton.append(seg);
    };
    for (const Gate& g : c.gates()) {
        // Mirror strip_parameters' structural/parametric split exactly, so
        // the sentinel slot numbering matches the stripped angle vector.
        const bool structural_unitary = g.is_explicit_unitary() && g.matrix != nullptr;
        const int np = circuit::kind_num_params(g.kind);
        if (structural_unitary || np <= 0) {
            segment.add(g);
            continue;
        }
        process_segment();
        Gate sg = g;
        if (sg.params.size() < static_cast<std::size_t>(np))
            sg.params.resize(static_cast<std::size_t>(np), 0.0);
        for (int p = 0; p < np; ++p)
            sg.params[static_cast<std::size_t>(p)] = circuit::slot_sentinel(slot++);
        zx_only.add(sg);
        skeleton.add(sg);
    }
    process_segment();
    if (slot != stripped.params.size())
        throw PlanDegraded("plan build: slot count mismatch against the stripped key");

    plan.depth_after_zx = zx_only.depth();
    plan.skeleton = std::move(skeleton);
    plan.fine_bindings = circuit::scan_bindings(plan.skeleton);
    if (opt_.regroup_enabled) {
        // Regroup is structure-only (it never reads parameter values), so it
        // runs directly on the sentinel skeleton; each group keeps the
        // bindings needed to re-instantiate its body from a fresh angle
        // vector.
        const std::vector<partition::CircuitBlock> groups =
            regroup(plan.skeleton, ropt);
        plan.groups.reserve(groups.size());
        for (const partition::CircuitBlock& blk : groups)
            plan.groups.push_back(PlanGroup{blk, circuit::scan_bindings(blk.body)});
    }
    tracer_.add_counter("plan.cached_blocks", plan.groups.size());
    return plan;
}

bool EpocCompiler::instantiate_plan(const CompilationPlan& plan,
                                    const std::vector<double>& params, bool is_hit,
                                    const util::Deadline& deadline, EpocResult& res,
                                    const backend::Backend* be) {
    util::fault::maybe_throw("plan.instantiate");
    // Bind the fresh angles into copies of the plan's template artifacts.
    // bind_parameters throws on a stale binding (caught by the caller and
    // treated as a plan failure) — a half-bound circuit is never shipped.
    Circuit skel = plan.skeleton;
    circuit::bind_parameters(skel, plan.fine_bindings, params);
    std::vector<partition::CircuitBlock> groups;
    groups.reserve(plan.groups.size());
    for (const PlanGroup& pg : plan.groups) {
        partition::CircuitBlock blk = pg.block;
        circuit::bind_parameters(blk.body, pg.bindings, params);
        groups.push_back(std::move(blk));
    }
    // Instantiation oracle: the same blocks-equivalence check a cold compile
    // runs over its fresh regroup layout, pointed at the reused one. Runs
    // before `res` is touched, so a stale or doctored plan is rejected while
    // the cold fallback is still pristine.
    if (!groups.empty() &&
        verifier_.check_plan_layout(skel, groups) == verify::Outcome::failed)
        return false;

    res.plan_hit = is_hit;
    if (is_hit) {
        res.plan_blocks_reused = groups.empty() ? plan.partition_blocks : groups.size();
        tracer_.add_counter("plan.blocks_reinstantiated", res.plan_blocks_reused);
    }
    res.depth_after_zx = plan.depth_after_zx;
    res.num_blocks = plan.partition_blocks;
    tracer_.add_counter("pipeline.blocks", plan.partition_blocks);
    res.synthesized = skel;
    res.synthesized_gates = skel.size();

    // Pulse stage: the same two-arm evaluation as the cold pipeline, with
    // per-slot warm starting when enabled (advisory only — see plan_cache.h).
    const auto t0 = std::chrono::steady_clock::now();
    double fine_budget = 0.0;
    const WarmSlots* fine_warm = opt_.plan_warm_start ? &plan.fine_warm : nullptr;
    std::vector<PulseJob> fine_jobs =
        fine_pulse_jobs(skel, deadline, res, fine_budget, fine_warm, be);
    util::Tracer::Span sched_span = tracer_.span("schedule asap", "pipeline");
    const PulseSchedule fine = schedule_asap(fine_jobs, skel.num_qubits());
    sched_span.end();

    double shipped_budget = fine_budget;
    if (!groups.empty() && deadline.expired()) {
        // No budget left for the second arm: ship the fine-grained one.
        res.block_reports.push_back(
            {util::Stage::regroup, 0, "regroup",
             {util::Stage::regroup, expiry_cause(deadline), true,
              "skipped: budget spent"}});
        res.degraded = true;
        tracer_.add_counter("robust.deadline_skips");
        res.schedule = fine;
    } else if (!groups.empty()) {
        util::Tracer::Span grouped_span = tracer_.span("pulses grouped", "pipeline");
        double grouped_budget = 0.0;
        const WarmSlots* group_warm = opt_.plan_warm_start ? &plan.group_warm : nullptr;
        const std::vector<PulseJob> jobs =
            pulse_jobs_for_blocks(groups, /*coarse_granularity=*/true, deadline, res,
                                  grouped_budget, group_warm, be);
        grouped_span.end();
        util::Tracer::Span gs_span = tracer_.span("schedule asap", "pipeline");
        const PulseSchedule grouped = schedule_asap(jobs, skel.num_qubits());
        gs_span.end();
        const bool grouped_wins = grouped.latency <= fine.latency;
        tracer_.add_counter(grouped_wins ? "pipeline.grouped_arm_wins"
                                         : "pipeline.fine_arm_wins");
        res.schedule = grouped_wins ? grouped : fine;
        if (grouped_wins) shipped_budget = grouped_budget;
    } else {
        res.schedule = fine;
    }
    if (res.schedule.dropped_jobs > 0) {
        // Same §4e accounting as the cold path: out-of-register jobs were
        // dropped by schedule_asap, so the shipped schedule is degraded.
        res.block_reports.push_back({util::Stage::schedule, 0, "schedule",
                                     {util::Stage::schedule, util::Cause::invalid_input,
                                      true, res.schedule.drop_detail}});
        res.degraded = true;
        tracer_.add_counter("robust.dropped_jobs", res.schedule.dropped_jobs);
    }
    if (verifier_.enabled()) verifier_.set_error_budget(shipped_budget);
    res.qoc_ms = ms_since(t0);
    return true;
}

bool EpocCompiler::try_plan_compile(const Circuit& c, const util::Deadline& deadline,
                                    EpocResult& res, const backend::Backend* be) {
    try {
        const util::Tracer::Span span = tracer_.span("plan", "pipeline");
        util::fault::maybe_throw("plan.lookup");
        const circuit::StrippedCircuit stripped = circuit::strip_parameters(c);
        // The backend fingerprint joins the plan key: the same structure
        // targeted at two devices partitions, routes and synthesizes
        // differently, so the plans must never be shared.
        const std::string plan_key =
            be != nullptr ? stripped.key + "|B:" + fp_hex(be->fingerprint_hash())
                          : stripped.key;
        for (int attempt = 0; attempt < 2; ++attempt) {
            bool built = false;
            const std::shared_ptr<const CompilationPlan> plan =
                plan_cache_.get_or_build(
                    plan_key, [&] { return build_plan(c, stripped, deadline, be); },
                    &built);
            if (built) {
                tracer_.add_counter("plan.misses");
                tracer_.add_counter("plan.builds");
            } else {
                tracer_.add_counter("plan.hits");
            }
            if (instantiate_plan(*plan, stripped.params, !built, deadline, res, be))
                return true;
            // The instantiation oracle rejected the cached layout (stale or
            // doctored): compare-and-evict exactly this plan, rebuild once,
            // then give up and go cold.
            plan_cache_.erase_if(plan_key, plan);
            tracer_.add_counter("plan.evictions");
            verifier_.note_recompute();
            if (built) break; // our own fresh build failed its oracle
        }
    } catch (const util::fault::InjectedFault&) {
        tracer_.add_counter("robust.injected_faults");
    } catch (const std::exception&) {
        // PlanDegraded, a stale binding, or anything else on the plan path:
        // fall back to the cold pipeline, whose ladder reports any real
        // degradation honestly.
    } catch (...) {
    }
    return false;
}

EpocResult EpocCompiler::compile(const Circuit& c) { return compile(c, {}); }

EpocResult EpocCompiler::compile(const Circuit& c, const CompileCallOptions& call) {
    EpocResult res;
    verifier_.begin_compile(); // per-compile audit tally
    res.verify.level = verifier_.options().level;
    const std::shared_ptr<const backend::Backend> be_ptr =
        call.backend != nullptr ? call.backend : opt_.backend;
    const backend::Backend* be = be_ptr.get();
    res.backend_name = be != nullptr ? be->name : "";
    res.status = validate_input(c);
    res.threads_used = pool_.num_threads();
    if (res.status.ok() && be != nullptr && c.num_qubits() > be->coupling.num_qubits()) {
        res.status.stage = util::Stage::input;
        res.status.cause = util::Cause::invalid_input;
        res.status.detail = "circuit of width " + std::to_string(c.num_qubits()) +
                            " exceeds backend '" + be->name + "' register of " +
                            std::to_string(be->coupling.num_qubits()) + " qubits";
    }
    if (!res.status.ok()) {
        // Structured rejection: an empty result, never a deep out_of_range.
        res.schedule.num_qubits = std::max(0, c.num_qubits());
        return res;
    }
    res.depth_original = c.depth();
    res.gates_original = c.size();
    const auto t_start = std::chrono::steady_clock::now();
    if (c.empty()) {
        // A trivially valid empty schedule; skip the pipeline entirely.
        res.schedule.num_qubits =
            be != nullptr ? be->coupling.num_qubits() : c.num_qubits();
        res.compile_ms = ms_since(t_start);
        return res;
    }

    // Device-aware compiles run over the full physical register: blocks may
    // route through coupling-path qubits outside the logical circuit, so the
    // whole pipeline (stage oracles, blocks_to_circuit, the schedule) sees
    // the backend width. Identity layout — qubit i of `c` is physical i.
    std::optional<Circuit> widened;
    const Circuit* input = &c;
    if (be != nullptr && c.num_qubits() < be->coupling.num_qubits()) {
        widened.emplace(be->coupling.num_qubits());
        std::vector<int> ident(static_cast<std::size_t>(c.num_qubits()));
        std::iota(ident.begin(), ident.end(), 0);
        widened->append_mapped(c, ident);
        input = &*widened;
    }

    util::Deadline deadline;
    const double budget_ms = call.deadline_ms >= 0.0 ? call.deadline_ms : opt_.deadline_ms;
    if (budget_ms > 0.0) deadline = util::Deadline::after_ms(budget_ms);
    deadline.link(call.cancel != nullptr ? call.cancel : opt_.cancel);

    util::Tracer::Span compile_span = tracer_.span("compile", "pipeline");

    bool planned = false;
    if (opt_.plan_cache) {
        // Plan path: reuse (or build) the structure-keyed compilation plan.
        // It assembles into a scratch result committed only on success, so
        // any plan failure leaves a pristine state for the cold fallback.
        EpocResult scratch;
        scratch.verify.level = res.verify.level;
        scratch.status = res.status;
        scratch.threads_used = res.threads_used;
        scratch.depth_original = res.depth_original;
        scratch.gates_original = res.gates_original;
        scratch.backend_name = res.backend_name;
        planned = try_plan_compile(*input, deadline, scratch, be);
        if (planned)
            res = std::move(scratch);
        else
            tracer_.add_counter("robust.plan_fallbacks");
    }
    if (!planned) cold_compile(*input, deadline, res, be);

    res.num_pulses = res.schedule.pulses.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t_start);
    res.library_stats = library_.stats();
    res.synth_cache_stats = synth_cache_.stats();
    if (store_ != nullptr) {
        res.store_enabled = true;
        res.store_stats = store_->stats();
    }
    res.deadline_hit = deadline.armed() && deadline.expired();
    res.verify = verifier_.summary();
    if (res.degraded) {
        // Surface the first failure as the compile-level status (the full
        // account is in block_reports).
        for (const BlockReport& br : res.block_reports) {
            if (!br.status.ok()) {
                res.status = br.status;
                break;
            }
        }
        tracer_.add_counter("robust.degraded_compiles");
    }
    compile_span.end();
    if (tracer_.enabled()) {
        // Fold the sharded-cache stats into the counter registry so the trace
        // is self-contained (set, not add: the stats are already cumulative).
        tracer_.set_counter("pulse_library.hits", res.library_stats.hits);
        tracer_.set_counter("pulse_library.misses", res.library_stats.misses);
        tracer_.set_counter("pulse_library.single_flight_waits",
                            res.library_stats.single_flight_waits);
        tracer_.set_counter("pulse_library.uncached_degraded",
                            res.library_stats.uncached_degraded);
        tracer_.set_counter("synth_cache.hits", res.synth_cache_stats.hits);
        tracer_.set_counter("synth_cache.misses", res.synth_cache_stats.misses);
        tracer_.set_counter("synth_cache.single_flight_waits",
                            res.synth_cache_stats.waits);
        tracer_.set_counter("synth_cache.uncached_degraded",
                            res.synth_cache_stats.uncacheable);
        if (store_ != nullptr) {
            tracer_.set_counter("store.hits", res.store_stats.hits);
            tracer_.set_counter("store.misses", res.store_stats.misses);
            tracer_.set_counter("store.writes", res.store_stats.writes);
            tracer_.set_counter("store.corrupt", res.store_stats.corrupt);
            tracer_.set_counter("store.evicted", res.store_stats.evicted);
            tracer_.set_counter("store.bytes", res.store_stats.bytes);
            tracer_.set_counter("store.invalidated", res.store_stats.invalidated);
            tracer_.set_counter("store.quarantine_evicted",
                                res.store_stats.quarantine_evicted);
            tracer_.set_counter("store.pack.hits", res.store_stats.pack_hits);
            tracer_.set_counter("store.pack.denied", res.store_stats.pack_denied);
            tracer_.set_counter("store.pack.corrupt", res.store_stats.pack_corrupt);
            tracer_.set_counter("store.pack.suspect", res.store_stats.pack_suspect);
            tracer_.set_counter("store.pack.open", res.store_stats.packs_open);
            tracer_.set_counter("store.pack.entries", res.store_stats.pack_entries);
            tracer_.set_counter("store.pack.packed", res.store_stats.packed);
            tracer_.set_counter("store.pack.bytes", res.store_stats.pack_bytes);
        }
        if (verifier_.enabled()) {
            tracer_.set_counter("verify.checks", res.verify.checks);
            tracer_.set_counter("verify.passed", res.verify.passed);
            tracer_.set_counter("verify.failed", res.verify.failed);
            tracer_.set_counter("verify.unverified", res.verify.unverified);
            tracer_.set_counter("verify.skipped", res.verify.skipped);
            tracer_.set_counter("verify.revalidations", res.verify.revalidations);
            tracer_.set_counter("verify.pack_revalidations",
                                res.verify.pack_revalidations);
            tracer_.set_counter("verify.revalidate_rejects",
                                res.verify.revalidate_rejects);
            tracer_.set_counter("verify.recomputes", res.verify.recomputes);
        }
        res.trace = tracer_.report();
    }
    return res;
}

} // namespace epoc::core
