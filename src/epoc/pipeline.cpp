#include "epoc/pipeline.h"

#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "synthesis/kak.h"
#include "qoc/decoherence.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <chrono>
#include <cmath>
#include <optional>

namespace epoc::core {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using linalg::Matrix;

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool is_identity_unitary(const Matrix& u) {
    return linalg::hs_fidelity(u, Matrix::identity(u.rows())) > 1.0 - 1e-10;
}

/// Per-block synthesis outcome, computed in parallel and merged in block
/// order so the flat circuit is identical to the sequential pass.
struct SynthFragment {
    bool skip = false;       ///< identity block: emit nothing
    bool use_original = false; ///< bridge or synthesis loss: emit blk.body
    Circuit local{0};        ///< otherwise: the synthesized local circuit
};

} // namespace

EpocCompiler::EpocCompiler(EpocOptions opt)
    : opt_(std::move(opt)),
      tracer_(opt_.trace_enabled),
      pool_(opt_.num_threads),
      library_(opt_.phase_aware_library) {
    library_.set_tracer(&tracer_);
}

const qoc::BlockHamiltonian& EpocCompiler::hamiltonian(int num_qubits) {
    // std::map never invalidates references on insert, so handing out refs
    // under a short lock is safe even while other threads add entries.
    std::lock_guard<std::mutex> lock(hams_mutex_);
    auto it = hams_.find(num_qubits);
    if (it == hams_.end())
        it = hams_.emplace(num_qubits, qoc::make_block_hamiltonian(num_qubits, opt_.device))
                 .first;
    return it->second;
}

Circuit EpocCompiler::synthesize_blocks(const std::vector<partition::CircuitBlock>& blocks,
                                        int num_qubits, double& synth_ms) {
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<SynthFragment> fragments(blocks.size());
    pool_.parallel_for(blocks.size(), [&](std::size_t i) {
        const partition::CircuitBlock& blk = blocks[i];
        SynthFragment& frag = fragments[i];
        const util::Tracer::Span span = tracer_.span(
            "synth block " + std::to_string(i) + " (" +
                std::to_string(blk.qubits.size()) + "q)",
            "synthesis");

        // Bridging CNOTs pass through untouched.
        if (blk.bridge && blk.body.size() == 1 && blk.body.gate(0).kind == GateKind::CX) {
            frag.use_original = true;
            return;
        }
        const Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) {
            frag.skip = true;
            return;
        }

        if (blk.qubits.size() == 1) {
            // Single-qubit blocks synthesize exactly via ZYZ: one VUG.
            const circuit::Zyz e = circuit::zyz_decompose(u);
            Circuit local(1);
            local.u3(e.theta, e.phi, e.lambda, 0);
            frag.local = std::move(local);
            return;
        }

        if (opt_.use_kak && blk.qubits.size() == 2) {
            // Analytic fast path: exact, so the keep-original heuristic below
            // compares on entangling content via the peepholed KAK circuit.
            tracer_.add_counter("synth.kak_fast_path");
            const circuit::Circuit kc =
                circuit::peephole_optimize(synthesis::kak_synthesize(u));
            if (kc.two_qubit_count() <= blk.body.two_qubit_count())
                frag.local = kc;
            else
                frag.use_original = true;
            return;
        }

        const std::string key = linalg::phase_canonical_key(u, 6);
        const std::shared_ptr<const synthesis::SynthesisResult> sr =
            synth_cache_.get_or_compute(key, [&] {
                // Single-flight: exactly one QSearch/LEAP run per distinct
                // unitary, so these counters match the sequential schedule
                // for every thread count.
                const util::Tracer::Span qspan = tracer_.span(
                    "qsearch " + std::to_string(blk.qubits.size()) + "q", "synthesis");
                synthesis::SynthesisResult r = synthesis::qsearch_synthesize(u, opt_.qsearch);
                if (!r.converged && opt_.leap_fallback) {
                    const util::Tracer::Span lspan = tracer_.span(
                        "leap " + std::to_string(blk.qubits.size()) + "q", "synthesis");
                    tracer_.add_counter("synth.leap_fallbacks");
                    synthesis::LeapOptions lo;
                    lo.threshold = opt_.qsearch.threshold;
                    lo.instantiate = opt_.qsearch.instantiate;
                    synthesis::SynthesisResult leap = synthesis::leap_synthesize(u, lo);
                    if (leap.distance < r.distance) r = std::move(leap);
                }
                tracer_.add_counter(r.converged ? "synth.converged" : "synth.unconverged");
                return r;
            });
        // Synthesis is an optimization, not an obligation: if the searched
        // circuit carries no fewer entangling gates than the original block
        // (or missed the accuracy target), keep the original gates -- they
        // may be better parallelized.
        const bool synth_wins =
            sr->converged &&
            (static_cast<std::size_t>(sr->cnot_count) < blk.body.two_qubit_count() ||
             (static_cast<std::size_t>(sr->cnot_count) == blk.body.two_qubit_count() &&
              sr->circuit.depth() <= blk.body.depth()));
        tracer_.add_counter(synth_wins ? "synth.blocks_replaced"
                                       : "synth.blocks_kept_original");
        if (synth_wins)
            frag.local = sr->circuit;
        else
            frag.use_original = true;
    });

    // Deterministic merge: block order, not completion order.
    Circuit flat(num_qubits);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const SynthFragment& frag = fragments[i];
        if (frag.skip) continue;
        flat.append_mapped(frag.use_original ? blocks[i].body : frag.local,
                           blocks[i].qubits);
    }
    synth_ms += ms_since(t0);
    return flat;
}

/// Generate one pulse per non-identity block, in parallel, preserving block
/// order in the returned job list. `coarse_granularity` applies the wide-block
/// slot coarsening used by the regrouped arm.
std::vector<PulseJob> EpocCompiler::pulse_jobs_for_blocks(
    const std::vector<partition::CircuitBlock>& blocks, bool coarse_granularity) {
    // Warm the Hamiltonian cache sequentially so the parallel loop only ever
    // takes the short lookup lock.
    for (const partition::CircuitBlock& blk : blocks)
        hamiltonian(static_cast<int>(blk.qubits.size()));

    std::vector<std::optional<PulseJob>> slots(blocks.size());
    pool_.parallel_for(blocks.size(), [&](std::size_t i) {
        const partition::CircuitBlock& blk = blocks[i];
        const util::Tracer::Span span = tracer_.span(
            "pulse block " + std::to_string(i) + " (" +
                std::to_string(blk.qubits.size()) + "q)",
            "qoc");
        const Matrix u = partition::block_unitary(blk);
        if (is_identity_unitary(u)) return;
        qoc::LatencySearchOptions lopt = opt_.latency;
        if (coarse_granularity) {
            // Coarser duration resolution for big blocks keeps the GRAPE
            // budget bounded (dim-16 propagators are ~8x dim-8 cost).
            if (blk.qubits.size() >= 4)
                lopt.slot_granularity = std::max(lopt.slot_granularity, 4);
            else if (blk.qubits.size() == 3)
                lopt.slot_granularity = std::max(lopt.slot_granularity, 2);
        }
        const std::shared_ptr<const qoc::LatencyResult> lr = library_.get_or_generate(
            hamiltonian(static_cast<int>(blk.qubits.size())), u, lopt);
        if (coarse_granularity && lopt.slot_granularity > opt_.latency.slot_granularity) {
            // Regression guards for the cache-key collision: the coarse arm's
            // pulses must actually carry coarsened slot counts, even when the
            // fine-granularity arm requested the same unitary first.
            tracer_.add_counter("qoc.coarse_blocks");
            tracer_.add_counter("qoc.coarse_block_slots",
                                static_cast<std::uint64_t>(lr->pulse.num_slots()));
            if (lr->pulse.num_slots() % lopt.slot_granularity != 0)
                tracer_.add_counter("qoc.coarse_granularity_violations");
        }
        slots[i] = PulseJob{blk.qubits, lr->pulse.duration(), lr->pulse.fidelity, ""};
    });

    std::vector<PulseJob> jobs;
    jobs.reserve(blocks.size());
    for (std::optional<PulseJob>& s : slots) {
        if (!s) continue;
        s->label = "block" + std::to_string(jobs.size());
        jobs.push_back(std::move(*s));
    }
    return jobs;
}

EpocResult EpocCompiler::compile(const Circuit& c) {
    EpocResult res;
    res.depth_original = c.depth();
    res.gates_original = c.size();
    res.threads_used = pool_.num_threads();
    const auto t_start = std::chrono::steady_clock::now();
    util::Tracer::Span compile_span = tracer_.span("compile", "pipeline");

    // 1. Graph-based depth optimization.
    Circuit current = c;
    {
        const auto t0 = std::chrono::steady_clock::now();
        if (opt_.use_zx) {
            const util::Tracer::Span span = tracer_.span("zx", "pipeline");
            zx::ZxOptimizeResult zr = zx::zx_optimize(c);
            current = std::move(zr.circuit);
        }
        res.zx_ms = ms_since(t0);
    }
    res.depth_after_zx = current.depth();

    // 2+3. Partition and synthesize (parallel over blocks).
    if (opt_.use_synthesis) {
        util::Tracer::Span part_span = tracer_.span("partition", "pipeline");
        const std::vector<partition::CircuitBlock> blocks =
            partition::greedy_partition(current, opt_.partition);
        part_span.end();
        res.num_blocks = blocks.size();
        tracer_.add_counter("pipeline.blocks", blocks.size());
        const util::Tracer::Span span = tracer_.span("synthesis", "pipeline");
        current = synthesize_blocks(blocks, current.num_qubits(), res.synthesis_ms);
    }
    res.synthesized = current;
    res.synthesized_gates = current.size();

    // 4+5. Regroup (or not) and generate pulses (parallel over gates/blocks).
    //
    // The fine-grained arm (one pulse per synthesized gate) is always
    // evaluated -- it is cheap thanks to the pulse library. With regrouping
    // enabled the grouped schedule is evaluated too and the shorter of the
    // two wins: on wide, shallow circuits a wide block pulse can blockade
    // qubit lines and lose to well-packed per-gate pulses.
    {
        const auto t0 = std::chrono::steady_clock::now();

        for (const Gate& g : current.gates()) hamiltonian(g.arity());
        util::Tracer::Span fine_span = tracer_.span("pulses fine-grained", "pipeline");
        std::vector<std::optional<PulseJob>> fine_slots(current.size());
        pool_.parallel_for(current.size(), [&](std::size_t i) {
            const Gate& g = current.gate(i);
            const util::Tracer::Span span = tracer_.span(
                "pulse gate " + std::to_string(i) + " (" + kind_name(g.kind) + ")",
                "qoc");
            const Matrix u = g.unitary();
            if (is_identity_unitary(u)) return;
            const std::shared_ptr<const qoc::LatencyResult> lr = library_.get_or_generate(
                hamiltonian(g.arity()), u, opt_.latency);
            fine_slots[i] = PulseJob{g.qubits, lr->pulse.duration(), lr->pulse.fidelity,
                                     kind_name(g.kind)};
        });
        std::vector<PulseJob> fine_jobs;
        fine_jobs.reserve(current.size());
        for (std::optional<PulseJob>& s : fine_slots)
            if (s) fine_jobs.push_back(std::move(*s));
        fine_span.end();
        util::Tracer::Span sched_span = tracer_.span("schedule asap", "pipeline");
        const PulseSchedule fine = schedule_asap(fine_jobs, c.num_qubits());
        sched_span.end();

        if (opt_.regroup_enabled) {
            util::Tracer::Span regroup_span = tracer_.span("regroup", "pipeline");
            const std::vector<partition::CircuitBlock> groups =
                regroup(current, opt_.regroup_opt);
            regroup_span.end();
            tracer_.add_counter("pipeline.regroup_blocks", groups.size());
            util::Tracer::Span grouped_span = tracer_.span("pulses grouped", "pipeline");
            const std::vector<PulseJob> jobs =
                pulse_jobs_for_blocks(groups, /*coarse_granularity=*/true);
            grouped_span.end();
            util::Tracer::Span gs_span = tracer_.span("schedule asap", "pipeline");
            const PulseSchedule grouped = schedule_asap(jobs, c.num_qubits());
            gs_span.end();
            const bool grouped_wins = grouped.latency <= fine.latency;
            tracer_.add_counter(grouped_wins ? "pipeline.grouped_arm_wins"
                                             : "pipeline.fine_arm_wins");
            res.schedule = grouped_wins ? grouped : fine;
        } else {
            res.schedule = fine;
        }
        res.qoc_ms = ms_since(t0);
    }
    res.num_pulses = res.schedule.pulses.size();
    res.latency_ns = res.schedule.latency;
    res.esp = res.schedule.esp;
    res.esp_decoherent = qoc::esp_with_decoherence(res.schedule);
    res.compile_ms = ms_since(t_start);
    res.library_stats = library_.stats();
    res.synth_cache_stats = synth_cache_.stats();
    compile_span.end();
    if (tracer_.enabled()) {
        // Fold the sharded-cache stats into the counter registry so the trace
        // is self-contained (set, not add: the stats are already cumulative).
        tracer_.set_counter("pulse_library.hits", res.library_stats.hits);
        tracer_.set_counter("pulse_library.misses", res.library_stats.misses);
        tracer_.set_counter("pulse_library.single_flight_waits",
                            res.library_stats.single_flight_waits);
        tracer_.set_counter("synth_cache.hits", res.synth_cache_stats.hits);
        tracer_.set_counter("synth_cache.misses", res.synth_cache_stats.misses);
        tracer_.set_counter("synth_cache.single_flight_waits",
                            res.synth_cache_stats.waits);
        res.trace = tracer_.report();
    }
    return res;
}

} // namespace epoc::core
