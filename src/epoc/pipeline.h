// The EPOC compiler (paper Figure 3, right column):
//
//   input circuit
//     -> graph-based ZX depth optimization        (zx/optimize.h)
//     -> greedy circuit partition                 (partition/partition.h)
//     -> VUG-based heuristic synthesis per block  (synthesis/qsearch.h)
//     -> regrouping of VUGs + CNOTs               (epoc/regroup.h)
//     -> GRAPE pulses via the pulse library       (qoc/*)
//     -> ASAP schedule: latency + ESP             (epoc/scheduler.h)
//
// Every stage can be toggled for the ablation benchmarks; regrouping off
// reproduces the paper's "without grouping" arm of Figures 8-10.
//
// Threading model: the two per-block loops (synthesis, GRAPE pulse
// generation) fan out over EpocOptions::num_threads workers — the paper ran
// its GRAPE stage on an 8-node x 32-core cluster, and per-block work is
// embarrassingly parallel. Both caches (pulse library, synthesis cache) are
// sharded-lock + single-flight, and per-block outputs are merged in block
// order, so the compiled result is bit-identical for every thread count;
// `num_threads = 1` runs inline on the caller with no threads created.
//
// Failure semantics: compile() never throws for per-block failures. Each
// block that fails, times out, or proves infeasible takes one rung down a
// degradation ladder —
//
//   synthesis fails/times out  ->  keep the block's original gates
//   block pulse infeasible or
//   errored                    ->  gate-by-gate pulses for that block
//   gate pulse errored         ->  placeholder pulse (worst-case duration,
//                                  fidelity 0) so the schedule stays valid
//
// and the compile returns a complete schedule with EpocResult::degraded set,
// one BlockReport per unit of work, and robust.* trace counters. Degraded
// pulses/syntheses are never cached as authoritative (see DESIGN.md
// "Failure semantics").
#pragma once

#include "backend/backend.h"
#include "circuit/circuit.h"
#include "circuit/structure.h"
#include "epoc/plan_cache.h"
#include "epoc/regroup.h"
#include "epoc/scheduler.h"
#include "qoc/pulse_library.h"
#include "store/pulse_store.h"
#include "synthesis/leap.h"
#include "synthesis/qsearch.h"
#include "util/deadline.h"
#include "util/sharded_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "verify/verify.h"
#include "zx/optimize.h"

#include <map>
#include <memory>
#include <mutex>

namespace epoc::core {

struct EpocOptions {
    bool use_zx = true;
    bool use_synthesis = true;
    bool regroup_enabled = true;
    partition::PartitionOptions partition{/*max_qubits=*/3, /*max_gates=*/24};
    RegroupOptions regroup_opt{/*max_qubits=*/3, /*max_gates=*/32};
    synthesis::QSearchOptions qsearch;
    bool leap_fallback = true;
    /// Use the analytic KAK decomposition (synthesis/kak.h) as the synthesis
    /// fast path for 2-qubit blocks: exact and ~1000x faster than QSearch,
    /// at the cost of a fixed (non-searched) circuit shape.
    bool use_kak = false;
    qoc::DeviceParams device;
    /// Target hardware backend (backend/backend.h). When set, the compile is
    /// device-aware end to end: the circuit is widened to the device register,
    /// partitioning/regrouping run in topology-aware mode over the backend's
    /// coupling map (every block a connected subgraph; non-adjacent bridging
    /// gates routed or rejected per `partition.bridge_policy`), synthesis
    /// restricts CNOT placements to coupling edges, pulse targets use the
    /// backend's edge-resolved Hamiltonians (3-level leakage-aware when
    /// `levels == 3`), and the backend fingerprint joins every pulse-library,
    /// store and plan-cache key — so backends never share cached artifacts.
    /// nullptr (the default) keeps the topology-unconstrained `device` model.
    /// `partition.coupling` / `regroup_opt.coupling` are overridden while a
    /// backend is set. Overridable per call via CompileCallOptions::backend.
    std::shared_ptr<const backend::Backend> backend;
    qoc::LatencySearchOptions latency;
    bool phase_aware_library = true;
    /// Worker count for the per-block synthesis and pulse-generation loops.
    /// 0 = hardware_concurrency(); 1 = exact sequential (pre-threading)
    /// behaviour. Output is bit-identical for every value.
    int num_threads = 0;
    /// Record per-stage spans and counters (util/trace.h) and surface them on
    /// EpocResult::trace. Off by default: the disabled path is one relaxed
    /// atomic load per instrumentation point and never perturbs the compiled
    /// artifact.
    bool trace_enabled = false;
    /// Wall-clock budget for one compile() call, in milliseconds; <= 0 means
    /// unlimited. The deadline is polled cooperatively inside QSearch/LEAP,
    /// every GRAPE iteration and the latency search: on expiry each loop
    /// returns best-so-far and the degradation ladder takes over, so the
    /// compile still returns a valid (if degraded) schedule — it never
    /// throws. Adjustable between compiles via EpocCompiler::set_deadline_ms.
    double deadline_ms = 0.0;
    /// Optional external cancellation (non-owning; must outlive the
    /// compiler's compile() calls). Firing it behaves like an immediate
    /// deadline expiry: in-flight blocks finish their current poll interval,
    /// unstarted blocks fall back, and compile() returns a degraded result
    /// with Cause::cancelled.
    const util::CancelToken* cancel = nullptr;
    /// Directory of the persistent on-disk pulse store (store/pulse_store.h),
    /// attached to the pulse library as its L2 tier: memory miss -> probe
    /// disk -> verify -> promote; authoritative results written back, so
    /// GRAPE work survives the process and is shared between concurrent
    /// compilers pointed at the same directory. Empty disables persistence;
    /// when empty the EPOC_PULSE_STORE environment variable is consulted
    /// instead (an explicitly set option always wins over the env).
    std::string pulse_store_dir;
    /// Byte budget for the store directory (LRU-by-mtime compaction keeps it
    /// under this); <= 0 disables compaction. Ignored when no store is set.
    std::uint64_t pulse_store_max_bytes = 256ull << 20;
    /// Read-only shared pack directories (store/pack.h) layered behind the
    /// local store tier: each holds immutable `*.pack` segments (shipped warm
    /// libraries) probed on a local miss, so a fresh machine cold-starts at
    /// warm-run speed. Requires a store (`pulse_store_dir` or env) to be
    /// armed — the pack tier is part of the store. Empty consults the
    /// EPOC_PULSE_PACKS environment variable (colon-separated directories;
    /// an explicitly set option always wins). Every pack hit is re-simulated
    /// through the verify layer before being trusted, whatever the verify
    /// level — foreign bytes are trust-but-verify, never trust.
    std::vector<std::string> pulse_pack_dirs;
    /// Independent output auditing (src/verify/verify.h): `off` disables
    /// every check (the compile is bit-identical to a verifier-less build),
    /// `sampled` audits stage equivalence always and per-block artifacts on a
    /// deterministic subset, `full` audits everything. The default `unset`
    /// resolves through the EPOC_VERIFY environment variable (off|sampled|
    /// full), falling back to off — an explicitly set option always wins.
    /// Audit failures never throw: they take the degradation ladder as
    /// Cause::verify_failed (recompute once, then fall a rung).
    verify::VerifyLevel verify_level = verify::VerifyLevel::unset;
    /// Verifier tolerances and sampling knobs. Its `level` field is ignored —
    /// the level always comes from `verify_level` above.
    verify::VerifyOptions verify_opt;
    /// Incremental variational compilation (epoc/plan_cache.h): key each
    /// compile on the circuit's parameter-stripped structure and cache the
    /// structural pipeline product (ZX + partition + synthesis + regroup as a
    /// slot-sentinel skeleton). A repeat structure with fresh angles binds the
    /// cached plan and goes straight to pulse generation; the first compile of
    /// a structure builds (and verifies) the plan. Any plan-path failure —
    /// a degraded build, a failed instantiation oracle, an injected fault —
    /// falls back to the ordinary cold pipeline; plan compiles never throw
    /// where cold compiles would not.
    bool plan_cache = false;
    /// Warm-start GRAPE on plan compiles: a pulse-library miss for a plan
    /// block seeds the optimizer with the previous iterate's amplitudes for
    /// that structural slot (AccQOC-style MST seeding across a parameter
    /// sweep). Advisory only — never part of a cache key, never persisted to
    /// the L2 store, and a warm run that stalls below target is cold-rescued
    /// (qoc/grape.h) — so it can only trade iterations, not fidelity or
    /// reproducibility of the *cold* path. Disable for bit-exact
    /// cross-compiler digest comparisons. Ignored unless plan_cache is on.
    bool plan_warm_start = true;

    EpocOptions() {
        // Cheaper defaults than the standalone synthesizer: blocks repeat, the
        // cache catches the rest.
        qsearch.instantiate.restarts = 2;
        qsearch.instantiate.max_iterations = 120;
        qsearch.threshold = 1e-5;
        qsearch.max_nodes = 60;
    }
};

/// Outcome of one unit of per-block pipeline work (a synthesis block, a
/// regrouped pulse block, or a fine-grained gate pulse). Reports are merged
/// in block order, so the vector is deterministic across thread counts.
struct BlockReport {
    util::Stage stage = util::Stage::synthesis;
    /// Index within the stage's own loop (synthesis block index, grouped
    /// block index, or gate index of the fine-grained arm).
    std::size_t index = 0;
    std::string label; ///< human-readable, e.g. "synth block 3 (2q)"
    util::BlockStatus status;
    /// What the independent audit concluded about this unit of work:
    /// not_checked (verification off / sampled out), passed, failed (the
    /// status then carries Cause::verify_failed), or unverified (the
    /// verifier itself failed — the artifact shipped unaudited).
    verify::Outcome verify = verify::Outcome::not_checked;
};

struct EpocResult {
    PulseSchedule schedule;
    double latency_ns = 0.0;
    double esp = 1.0;
    /// ESP additionally discounted by T1/T2 decoherence over the schedule
    /// latency (qoc/decoherence.h) -- the end-to-end success estimate that
    /// rewards shorter schedules.
    double esp_decoherent = 1.0;
    double compile_ms = 0.0;
    /// Name of the hardware backend this compile targeted ("" = the
    /// topology-unconstrained device model).
    std::string backend_name;

    // Stage diagnostics.
    int depth_original = 0;
    int depth_after_zx = 0;
    std::size_t gates_original = 0;
    std::size_t num_blocks = 0;
    std::size_t synthesized_gates = 0;
    std::size_t num_pulses = 0;
    double zx_ms = 0.0;
    double synthesis_ms = 0.0;
    double qoc_ms = 0.0;
    /// Worker count the parallel loops actually used for this compile.
    int threads_used = 1;
    /// Cumulative pulse-library activity (hits/misses/single-flight waits,
    /// plus L2 store_hits/store_misses/store_writes when a store is set).
    qoc::PulseLibraryStats library_stats;
    /// Cumulative synthesis-cache activity (same counters, QSearch results).
    util::CacheStats synth_cache_stats;
    /// True iff this compiler runs with a persistent pulse store attached
    /// (EpocOptions::pulse_store_dir / EPOC_PULSE_STORE); `store_stats` is
    /// only meaningful then.
    bool store_enabled = false;
    /// Cumulative on-disk store activity (hits/misses/writes/corrupt/
    /// evicted/bytes), from the store's own accounting.
    store::PulseStoreStats store_stats;
    /// Spans + counters collected by the compiler's tracer (empty unless
    /// EpocOptions::trace_enabled). Like the cache stats, spans/counters
    /// accumulate across compile() calls on one compiler; call
    /// `compiler.tracer().reset()` between compiles for per-run traces.
    util::TraceReport trace;

    /// The post-synthesis flat circuit (U3 + CX), for inspection.
    circuit::Circuit synthesized;

    // Resilience diagnostics.
    //
    /// True when any degradation-ladder rung was taken (a block fell back to
    /// its original gates, a pulse fell back to gate-by-gate or placeholder,
    /// a stage was skipped on timeout, an infeasible pulse was shipped
    /// flagged, ...). A degraded result is still a valid, schedulable
    /// artifact — inspect block_reports for the exact account.
    bool degraded = false;
    /// Compile-level status: ok for clean and merely-degraded compiles;
    /// Cause::invalid_input when boundary validation rejected the circuit
    /// (in which case the result is empty); otherwise mirrors the first
    /// non-ok block report (deterministic across thread counts).
    util::BlockStatus status;
    /// True when the compile deadline (or cancel token) expired at any point.
    bool deadline_hit = false;
    /// True when this compile reused a cached CompilationPlan (plan_cache on,
    /// the structure key hit, and the instantiation oracle passed). False on
    /// the structure's first compile (the plan *build*) and on any fallback
    /// to the cold pipeline.
    bool plan_hit = false;
    /// Number of plan blocks re-instantiated from the cached layout on a plan
    /// hit (the regroup groups, or the partition blocks when regrouping is
    /// off). Zero on builds and cold compiles.
    std::size_t plan_blocks_reused = 0;
    /// Per-compile verification tally: level, check/pass/fail/unverified
    /// counts, store revalidations and rejects, recomputes, and the shipped
    /// schedule's audited error budget (sum over audited pulses of
    /// |recorded - re-simulated| fidelity). Level `off` with zero counts
    /// unless verify_level resolved to sampled/full.
    verify::VerifySummary verify;
    /// One entry per unit of per-block work, in deterministic block order:
    /// every synthesis block, every grouped-arm pulse block, every
    /// fine-grained gate pulse — clean or not ("every block accounted for").
    std::vector<BlockReport> block_reports;
};

/// Per-call overrides for one compile() invocation. The compile-service
/// daemon runs many concurrent requests through one EpocCompiler, and each
/// request carries its own budget and cancellation — state that cannot live
/// on the shared EpocOptions.
struct CompileCallOptions {
    /// Wall-clock budget for this call, in milliseconds. Negative means
    /// "use EpocOptions::deadline_ms"; 0 means unlimited (like the option).
    double deadline_ms = -1.0;
    /// Cancellation for this call (non-owning; must outlive the call).
    /// nullptr falls back to EpocOptions::cancel.
    const util::CancelToken* cancel = nullptr;
    /// Hardware backend for this call; nullptr falls back to
    /// EpocOptions::backend. The daemon resolves each job's backend name
    /// against its registry and passes the result here.
    std::shared_ptr<const backend::Backend> backend;
};

/// Stateful compiler: the pulse library and synthesis cache persist across
/// compile() calls, mirroring the paper's reusable pulse database.
///
/// Concurrency: compile() may be called from any number of threads at once
/// on one compiler — the serving precondition. All shared state is either
/// immutable after construction (options), internally synchronized (thread
/// pool, tracer, Hamiltonian map) or single-flight caches, and per-call
/// state (deadline, result assembly) lives on the caller's stack; identical
/// circuits compiled concurrently are bit-identical to sequential runs
/// (asserted in tests/test_concurrent_compile.cpp). One caveat: the
/// verifier's per-compile tally (EpocResult::verify) is reset at each
/// compile() entry, so under concurrent *verifying* compiles the per-result
/// tallies interleave — counts stay race-free and conservation still holds
/// in aggregate, but attribute them to "the compiler since somebody's
/// begin", not to one call. Schedules and reports are unaffected.
class EpocCompiler {
public:
    explicit EpocCompiler(EpocOptions opt = {});

    EpocResult compile(const circuit::Circuit& c);
    /// compile() with per-call deadline/cancellation overrides; see
    /// CompileCallOptions. compile(c) is compile(c, {}).
    EpocResult compile(const circuit::Circuit& c, const CompileCallOptions& call);

    qoc::PulseLibrary& library() { return library_; }
    /// The persistent pulse store, nullptr when persistence is off.
    store::PulseStore* store() { return store_.get(); }
    const EpocOptions& options() const { return opt_; }
    /// The compiler's tracer (enabled iff EpocOptions::trace_enabled).
    util::Tracer& tracer() { return tracer_; }
    /// Change the wall-clock budget for subsequent compile() calls (<= 0
    /// means unlimited). Because degraded entries are never cached, a compile
    /// that degraded under a tight budget genuinely re-attempts its blocks
    /// when re-run with more slack. NOT safe against in-flight compile()
    /// calls on other threads — concurrent callers pass per-call budgets via
    /// CompileCallOptions instead (the daemon does).
    void set_deadline_ms(double ms) { opt_.deadline_ms = ms; }
    /// The compiler's verifier (enabled iff verify_level resolved to
    /// sampled/full; see EpocOptions::verify_level).
    const verify::Verifier& verifier() const { return verifier_; }
    /// The compilation plan cache (populated only when EpocOptions::plan_cache
    /// is on). Exposed for inspection and for the verify test battery, which
    /// plants doctored plans through PlanCache::replace to prove the
    /// instantiation oracle rejects them.
    PlanCache& plan_cache() { return plan_cache_; }

private:
    /// One pulse result through the schedule audit, with the recompute-once
    /// rung applied. `result` is what to ship: the original on pass /
    /// not-checked / unverified, the regenerated one after a cured failure.
    struct AuditedPulse {
        std::shared_ptr<const qoc::LatencyResult> result;
        verify::Outcome outcome = verify::Outcome::not_checked;
        /// |recorded - re-simulated| fidelity of the shipped result.
        double audit_err = 0.0;
        /// Re-simulated fidelity of the shipped result (== recorded within
        /// tolerance whenever the audit passed).
        double fidelity = 0.0;
        /// False when the audit still failed after the recompute: the caller
        /// must fall a rung, or — when no finer rung exists — ship with the
        /// re-simulated fidelity instead of the untrustworthy recorded one.
        bool resolved = true;
    };

    /// The pulse target of one gate under a backend: the (sorted) physical
    /// qubit set the pulse spans — the gate's operands plus, for backends,
    /// their connected closure on the coupling map — and the gate unitary
    /// embedded over that set (lifted to the 3-level space when the backend
    /// models leakage). be == nullptr reproduces the legacy target exactly.
    struct PulseTarget {
        std::vector<int> qubits;
        linalg::Matrix target;
    };

    const qoc::BlockHamiltonian& hamiltonian(int num_qubits);
    /// Device-resolved Hamiltonian for a block over physical `qubits`,
    /// cached per (backend fingerprint, qubit set); be == nullptr falls back
    /// to the legacy per-width `hamiltonian(|qubits|)`.
    const qoc::BlockHamiltonian& block_hamiltonian(const backend::Backend* be,
                                                   const std::vector<int>& qubits);
    PulseTarget gate_pulse_target(const backend::Backend* be,
                                  const circuit::Gate& g) const;
    util::Cause expiry_cause(const util::Deadline& deadline) const;
    circuit::Circuit synthesize_blocks(const std::vector<partition::CircuitBlock>& blocks,
                                       int num_qubits, double& synth_ms,
                                       const util::Deadline& deadline, EpocResult& res,
                                       const backend::Backend* be);
    std::vector<PulseJob> pulse_jobs_for_blocks(
        const std::vector<partition::CircuitBlock>& blocks, bool coarse_granularity,
        const util::Deadline& deadline, EpocResult& res, double& audit_err,
        const WarmSlots* warm = nullptr, const backend::Backend* be = nullptr);
    /// The fine-grained pulse arm: one pulse per gate of `current`, in
    /// parallel, merged in gate order (reports + audit errors included). The
    /// shared implementation of the cold pipeline's always-on fine arm and
    /// the plan path's fine arm; `warm` (optional, plan path only) seeds and
    /// collects per-gate-index warm-start amplitudes.
    std::vector<PulseJob> fine_pulse_jobs(const circuit::Circuit& current,
                                          const util::Deadline& deadline, EpocResult& res,
                                          double& audit_err,
                                          const WarmSlots* warm = nullptr,
                                          const backend::Backend* be = nullptr);
    /// Build a CompilationPlan for `c` (whose structure key is
    /// `stripped.key`): ZX + partition + synthesis over the maximal
    /// parameter-free segments, parametric gates carried through as slot
    /// sentinels, then regroup over the assembled skeleton. Throws (so the
    /// single-flight slot is erased and the compile goes cold) on *any*
    /// degradation — only clean plans are ever cached.
    CompilationPlan build_plan(const circuit::Circuit& c,
                               const circuit::StrippedCircuit& stripped,
                               const util::Deadline& deadline,
                               const backend::Backend* be);
    /// Bind `params` into `plan` and run the pulse stage on the result.
    /// Returns false — before touching `res` — when the instantiation oracle
    /// rejects the plan's layout (stale/doctored entry); the caller evicts
    /// and rebuilds. `is_hit` is false on the build compile.
    bool instantiate_plan(const CompilationPlan& plan, const std::vector<double>& params,
                          bool is_hit, const util::Deadline& deadline, EpocResult& res,
                          const backend::Backend* be);
    /// The whole plan path: strip, lookup-or-build, instantiate, with the
    /// evict-and-rebuild-once rung on an oracle failure. Never throws; false
    /// means "run the cold pipeline" (res is untouched then).
    bool try_plan_compile(const circuit::Circuit& c, const util::Deadline& deadline,
                          EpocResult& res, const backend::Backend* be);
    /// The ordinary (non-plan) pipeline: ZX -> partition/synthesis -> pulse
    /// arms, filling `res` up to (but not including) the common result tail.
    void cold_compile(const circuit::Circuit& c, const util::Deadline& deadline,
                      EpocResult& res, const backend::Backend* be);
    /// Ladder rung 2: one pulse per gate of `blk.body` (mapped to global
    /// qubits); rung 3 inside substitutes a placeholder job on failure.
    /// Audited pulses fold their outcome into `outcome` (worst wins) and
    /// their audit error into `audit_err`.
    std::vector<PulseJob> gate_fallback_jobs(const partition::CircuitBlock& blk,
                                             const qoc::LatencySearchOptions& lopt,
                                             util::BlockStatus& status,
                                             verify::Outcome& outcome, double& audit_err,
                                             const backend::Backend* be);
    /// Schedule audit for one generated pulse (only called on feasible,
    /// authoritative, sampled-in results): audit, recompute once on failure
    /// via PulseLibrary::regenerate, re-audit. Updates `status` with
    /// Cause::verify_failed when an audit failure was detected (cured or not).
    AuditedPulse audit_pulse_result(std::shared_ptr<const qoc::LatencyResult> lr,
                                    const qoc::BlockHamiltonian& h,
                                    const linalg::Matrix& target,
                                    const qoc::LatencySearchOptions& lopt,
                                    util::BlockStatus& status);

    EpocOptions opt_;
    util::Tracer tracer_; ///< declared before library_, which holds a pointer
    verify::Verifier verifier_; ///< declared after tracer_ (holds a pointer)
    util::ThreadPool pool_;
    /// Declared before library_, which holds a non-owning PulseTier pointer.
    std::unique_ptr<store::PulseStore> store_;
    qoc::PulseLibrary library_;
    util::ShardedFlightCache<synthesis::SynthesisResult> synth_cache_;
    PlanCache plan_cache_;
    std::mutex hams_mutex_;
    /// Hamiltonian cache, keyed "n:<width>" for the legacy uniform-device
    /// model and "b:<backend-fingerprint-hash>:<qubit ids>" for
    /// backend-resolved block Hamiltonians.
    std::map<std::string, qoc::BlockHamiltonian> hams_;
};

} // namespace epoc::core
