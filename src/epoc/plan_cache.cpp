#include "epoc/plan_cache.h"

namespace epoc::core {

void WarmSlots::put(std::size_t index, std::vector<std::vector<double>> amplitudes) const {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[index] = std::move(amplitudes);
}

std::vector<std::vector<double>> WarmSlots::get(std::size_t index) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(index);
    return it == slots_.end() ? std::vector<std::vector<double>>{} : it->second;
}

std::size_t WarmSlots::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

std::shared_ptr<const CompilationPlan> PlanCache::get_or_build(
    const std::string& key, const std::function<CompilationPlan()>& build, bool* built) {
    bool ran = false;
    auto plan = cache_.get_or_compute(key, [&] {
        ran = true;
        return build();
    });
    // Plans are only cached when the build ran clean (a degraded build throws
    // before reaching here), so no `cacheable` vetting is needed: every entry
    // in the table is authoritative by construction.
    if (built != nullptr) *built = ran;
    return plan;
}

bool PlanCache::erase_if(const std::string& key,
                         const std::shared_ptr<const CompilationPlan>& expected) {
    return cache_.erase_if(key, expected);
}

std::shared_ptr<const CompilationPlan> PlanCache::peek(const std::string& key) const {
    return cache_.peek(key);
}

void PlanCache::replace(const std::string& key, CompilationPlan plan) {
    cache_.erase(key);
    auto holder = std::make_shared<CompilationPlan>(std::move(plan));
    cache_.get_or_compute(key, [&] { return std::move(*holder); });
}

} // namespace epoc::core
