// Compilation plan cache: hoisting the structural pipeline stages out of the
// variational iteration loop.
//
// A CompilationPlan is everything about a compile that depends only on the
// circuit's *structure* (circuit/structure.h): the ZX-optimized,
// synthesized skeleton circuit with rotation angles replaced by slot
// sentinels, the partition block count, the regroup block layout, and the
// parameter-slot bindings needed to re-instantiate each of them from a fresh
// angle vector. On a plan hit, compile() skips ZX, partitioning, synthesis
// and regrouping entirely — it binds the new angles into the skeleton and
// the stored block layout and goes straight to pulse generation.
//
// Reuse safety follows the repo's established cache rules:
//   * Keys come from strip_parameters(): any structural edit changes the
//     key, so a plan can never be applied to a different wiring.
//   * Only clean builds are cached. A build that degrades (deadline expiry,
//     an injected fault, a failed stage audit) throws instead of returning,
//     the single-flight slot is erased, and the compile falls back to the
//     ordinary cold pipeline — the cache-poisoning rule of the pulse and
//     synthesis caches, applied to plans.
//   * Every instantiation re-runs the regroup-layout stage oracle
//     (verify::Verifier::check_plan_layout) before the plan's output is
//     trusted, so a stale or doctored entry is detected, compare-and-evicted
//     and rebuilt — never shipped.
//
// Warm-start state (the AccQOC-style GRAPE seeding of the satellite pulse
// path) lives on the plan as *advisory* mutable slots keyed by block/gate
// index: the previous iterate's amplitudes seed the next miss's optimizer.
// It is deliberately NOT part of any cache key (pulse-library keys exclude
// warm_amplitudes already) and is never persisted — see PulseLibrary's
// warm-started write-back skip.
#pragma once

#include "circuit/structure.h"
#include "partition/partition.h"
#include "util/sharded_cache.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace epoc::core {

/// Mutable per-plan warm-start state: the latest authoritative amplitudes
/// produced for each block (or fine-grained gate) index. Thread-safe; lives
/// on an otherwise-immutable CompilationPlan, so every member is usable
/// through a const reference. Advisory only: cleared state or a missed index
/// simply means a cold GRAPE start.
class WarmSlots {
public:
    WarmSlots() = default;
    // Plans move through the single-flight cache once, before any sharing;
    // the mutex is state-free so moving just the table is sound.
    WarmSlots(WarmSlots&& other) noexcept : slots_(std::move(other.slots_)) {}
    WarmSlots& operator=(WarmSlots&& other) noexcept {
        slots_ = std::move(other.slots_);
        return *this;
    }

    void put(std::size_t index, std::vector<std::vector<double>> amplitudes) const;

    /// The stored amplitudes for `index`, empty when none were recorded.
    std::vector<std::vector<double>> get(std::size_t index) const;

    std::size_t size() const;

private:
    mutable std::mutex mutex_;
    mutable std::unordered_map<std::size_t, std::vector<std::vector<double>>> slots_;
};

/// One regrouped pulse block of the plan: the structural block (its body
/// carries slot sentinels where the input had angles) plus the bindings that
/// turn a fresh angle vector back into a concrete block.
struct PlanGroup {
    partition::CircuitBlock block;
    std::vector<circuit::ParamBinding> bindings;
};

/// The reusable product of the structural pipeline stages for one circuit
/// structure. Immutable once cached except for the advisory warm-start slots.
struct CompilationPlan {
    std::string key; ///< strip_parameters() structure key
    int num_qubits = 0;
    std::size_t num_slots = 0; ///< length of the angle vector the plan binds

    /// ZX-optimized + synthesized template circuit; parametric gates carry
    /// slot sentinels (circuit/structure.h) where the input had angles.
    circuit::Circuit skeleton{0};
    /// Bindings into `skeleton` for the fine-grained pulse arm.
    std::vector<circuit::ParamBinding> fine_bindings;
    /// Regroup block layout over `skeleton` (empty when regrouping is off).
    std::vector<PlanGroup> groups;

    // Stage diagnostics frozen at build time (angle-independent by
    // construction, so every instantiation reports the same numbers a cold
    // compile of the same structure would).
    int depth_original = 0;
    int depth_after_zx = 0;
    std::size_t partition_blocks = 0;

    // Advisory warm-start state, keyed by skeleton gate index (fine arm) and
    // group index (regrouped arm). Mutable by design; see header comment.
    WarmSlots fine_warm;
    WarmSlots group_warm;
};

/// Structure-keyed, single-flight plan cache. A thin wrapper over
/// ShardedFlightCache that adds the build-tracking and test hooks the
/// pipeline and the plan test-battery need.
class PlanCache {
public:
    explicit PlanCache(std::size_t num_shards = 8) : cache_(num_shards) {}

    /// The plan for `key`, building it with `build` on a miss (single-flight:
    /// concurrent compiles of one structure run one build). `built` (optional)
    /// reports whether this call ran the build — the pipeline's plan_hit flag
    /// is its negation. A throwing build erases the slot (the next compile
    /// retries) and rethrows.
    std::shared_ptr<const CompilationPlan> get_or_build(
        const std::string& key, const std::function<CompilationPlan()>& build,
        bool* built = nullptr);

    /// Compare-and-evict (see ShardedFlightCache::erase_if): drop the entry
    /// only while it still holds exactly `expected`. Of N compiles that saw
    /// one stale plan, one wins the eviction and rebuilds; the rest wait on
    /// the winner's replacement.
    bool erase_if(const std::string& key,
                  const std::shared_ptr<const CompilationPlan>& expected);

    /// Lookup only; nullptr on miss. Does not touch the statistics.
    std::shared_ptr<const CompilationPlan> peek(const std::string& key) const;

    /// Overwrite the entry under `key` (test/maintenance hook: the verify
    /// suite plants doctored plans to prove the instantiation oracle catches
    /// them). Not part of the compile path.
    void replace(const std::string& key, CompilationPlan plan);

    std::size_t size() const { return cache_.size(); }
    util::CacheStats stats() const { return cache_.stats(); }

private:
    util::ShardedFlightCache<CompilationPlan> cache_;
};

} // namespace epoc::core
