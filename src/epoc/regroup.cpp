#include "epoc/regroup.h"

#include <algorithm>

namespace epoc::core {

namespace {

/// Merge two consecutive blocks into one over the union of their qubits.
/// Safe because the block list is a valid execution order: concatenating
/// adjacent entries preserves the global gate sequence.
partition::CircuitBlock merge_blocks(const partition::CircuitBlock& a,
                                     const partition::CircuitBlock& b) {
    partition::CircuitBlock out;
    out.qubits = a.qubits;
    for (const int q : b.qubits)
        if (std::find(out.qubits.begin(), out.qubits.end(), q) == out.qubits.end())
            out.qubits.push_back(q);
    std::sort(out.qubits.begin(), out.qubits.end());
    out.body = circuit::Circuit(static_cast<int>(out.qubits.size()));
    const auto local = [&out](int global) {
        return static_cast<int>(std::find(out.qubits.begin(), out.qubits.end(), global) -
                                out.qubits.begin());
    };
    for (const partition::CircuitBlock* blk : {&a, &b})
        for (circuit::Gate g : blk->body.gates()) {
            for (int& q : g.qubits) q = local(blk->qubits[static_cast<std::size_t>(q)]);
            out.body.add(std::move(g));
        }
    return out;
}

} // namespace

std::vector<partition::CircuitBlock> regroup(const circuit::Circuit& synthesized,
                                             const RegroupOptions& opt) {
    partition::PartitionOptions popt;
    popt.max_qubits = opt.max_qubits;
    popt.max_gates = opt.max_gates;
    popt.coupling = opt.coupling;
    popt.bridge_policy = opt.bridge_policy;
    std::vector<partition::CircuitBlock> blocks =
        partition::greedy_partition(synthesized, popt);

    // Absorb bridges and fuse neighbours: repeatedly merge consecutive blocks
    // whose qubit union still fits the limits. This is the aggregation the
    // paper's regrouping step performs on the fine-grained synthesis output.
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<partition::CircuitBlock> merged;
        for (partition::CircuitBlock& b : blocks) {
            if (!merged.empty()) {
                const partition::CircuitBlock& prev = merged.back();
                // Fuse only when one footprint contains the other: absorbing
                // a bridge (or being absorbed by the following group block)
                // never widens the pulse, so the scheduler loses no
                // parallelism. Union-growing merges create convoy effects --
                // a wide pulse blockades qubit lines its gates barely use.
                const auto subset = [](const std::vector<int>& a, const std::vector<int>& b2) {
                    return std::includes(b2.begin(), b2.end(), a.begin(), a.end());
                };
                const bool contained =
                    subset(b.qubits, prev.qubits) || subset(prev.qubits, b.qubits);
                const int union_size = static_cast<int>(
                    std::max(prev.qubits.size(), b.qubits.size()));
                if (contained && union_size <= opt.max_qubits &&
                    static_cast<int>(prev.body.size() + b.body.size()) <= opt.max_gates) {
                    merged.back() = merge_blocks(prev, b);
                    progress = true;
                    continue;
                }
            }
            merged.push_back(std::move(b));
        }
        blocks = std::move(merged);
    }
    return blocks;
}

} // namespace epoc::core
