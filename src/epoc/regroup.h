// Regrouping (paper Section 3.3): aggregate the fine-grained VUG + CNOT gates
// produced by synthesis into slightly larger unitary blocks that are worth
// running quantum optimal control on. Without this step each tiny VUG gets
// its own pulse and the pulse sequence serializes; with it, a whole block
// becomes a single time-optimal pulse.
#pragma once

#include "partition/partition.h"

namespace epoc::core {

struct RegroupOptions {
    /// Qubits per regrouped unitary (the paper's "suitable size" knob; QOC
    /// cost grows exponentially here).
    int max_qubits = 2;
    /// Gates folded into one block before a vertical cut.
    int max_gates = 32;
    /// Device coupling map: regrouped blocks stay connected subgraphs (see
    /// PartitionOptions::coupling). nullptr = topology-unconstrained.
    const circuit::CouplingMap* coupling = nullptr;
    /// Policy for non-adjacent bridging gates when `coupling` is set.
    partition::BridgePolicy bridge_policy = partition::BridgePolicy::route;
};

/// Aggregate a synthesized circuit into pulse-sized blocks.
std::vector<partition::CircuitBlock> regroup(const circuit::Circuit& synthesized,
                                             const RegroupOptions& opt);

} // namespace epoc::core
