#include "epoc/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace epoc::core {

double PulseSchedule::utilization() const {
    if (latency <= 0.0 || num_qubits == 0) return 0.0;
    double busy = 0.0;
    for (const ScheduledPulse& p : pulses)
        busy += p.job.duration * static_cast<double>(p.job.qubits.size());
    return busy / (latency * static_cast<double>(num_qubits));
}

PulseSchedule schedule_asap(const std::vector<PulseJob>& jobs, int num_qubits) {
    PulseSchedule s;
    s.num_qubits = num_qubits;
    std::vector<double> free_at(static_cast<std::size_t>(num_qubits), 0.0);
    for (const PulseJob& job : jobs) {
        double start = 0.0;
        for (const int q : job.qubits) {
            if (q < 0 || q >= num_qubits)
                throw std::out_of_range("schedule_asap: qubit out of range");
            start = std::max(start, free_at[static_cast<std::size_t>(q)]);
        }
        const double end = start + job.duration;
        for (const int q : job.qubits) free_at[static_cast<std::size_t>(q)] = end;
        s.latency = std::max(s.latency, end);
        s.esp *= job.fidelity;
        s.pulses.push_back({job, start, end});
    }
    return s;
}

} // namespace epoc::core
