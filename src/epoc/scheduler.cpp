#include "epoc/scheduler.h"

#include <algorithm>

namespace epoc::core {

double PulseSchedule::utilization() const {
    if (latency <= 0.0 || num_qubits == 0) return 0.0;
    double busy = 0.0;
    for (const ScheduledPulse& p : pulses)
        busy += p.job.duration * static_cast<double>(p.job.qubits.size());
    return busy / (latency * static_cast<double>(num_qubits));
}

PulseSchedule schedule_asap(const std::vector<PulseJob>& jobs, int num_qubits) {
    PulseSchedule s;
    s.num_qubits = num_qubits;
    std::vector<double> free_at(static_cast<std::size_t>(std::max(0, num_qubits)), 0.0);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const PulseJob& job = jobs[j];
        double start = 0.0;
        bool in_range = true;
        for (const int q : job.qubits) {
            if (q < 0 || q >= num_qubits) {
                in_range = false;
                break;
            }
            start = std::max(start, free_at[static_cast<std::size_t>(q)]);
        }
        if (!in_range) {
            // A job addressing a line the register does not have cannot be
            // placed; drop it (recorded, never thrown) and keep scheduling
            // the rest — a degraded-but-valid schedule beats an exception
            // escaping compile()'s never-throws contract.
            ++s.dropped_jobs;
            if (s.drop_detail.empty())
                s.drop_detail = "job " + std::to_string(j) +
                                (job.label.empty() ? "" : " (" + job.label + ")") +
                                " addresses a qubit outside register of width " +
                                std::to_string(num_qubits);
            continue;
        }
        const double end = start + job.duration;
        for (const int q : job.qubits) free_at[static_cast<std::size_t>(q)] = end;
        s.latency = std::max(s.latency, end);
        s.esp *= job.fidelity;
        s.pulses.push_back({job, start, end});
    }
    return s;
}

} // namespace epoc::core
