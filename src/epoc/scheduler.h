// ASAP pulse scheduling onto qubit lines.
//
// Each pulse occupies its qubits for its duration; a pulse starts as soon as
// all of its qubits are free. Circuit latency is the last pulse's end time;
// the estimated success probability (ESP, paper Eq. 3) is the product of the
// pulse fidelities.
#pragma once

#include <string>
#include <vector>

namespace epoc::core {

struct PulseJob {
    std::vector<int> qubits; ///< global qubit ids
    double duration = 0.0;   ///< ns (0 for virtual gates like RZ)
    double fidelity = 1.0;
    std::string label;
};

struct ScheduledPulse {
    PulseJob job;
    double start = 0.0;
    double end = 0.0;
};

struct PulseSchedule {
    std::vector<ScheduledPulse> pulses;
    double latency = 0.0; ///< ns
    double esp = 1.0;     ///< product of pulse fidelities
    int num_qubits = 0;

    /// Fraction of (latency * num_qubits) covered by pulses: the qubit-line
    /// utilization the paper's parallelism argument is about.
    double utilization() const;
};

/// Schedule jobs in order (ASAP semantics).
PulseSchedule schedule_asap(const std::vector<PulseJob>& jobs, int num_qubits);

} // namespace epoc::core
