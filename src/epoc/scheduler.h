// ASAP pulse scheduling onto qubit lines.
//
// Each pulse occupies its qubits for its duration; a pulse starts as soon as
// all of its qubits are free. Circuit latency is the last pulse's end time;
// the estimated success probability (ESP, paper Eq. 3) is the product of the
// pulse fidelities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epoc::core {

struct PulseJob {
    std::vector<int> qubits; ///< global qubit ids
    double duration = 0.0;   ///< ns (0 for virtual gates like RZ)
    double fidelity = 1.0;
    std::string label;
};

struct ScheduledPulse {
    PulseJob job;
    double start = 0.0;
    double end = 0.0;
};

struct PulseSchedule {
    std::vector<ScheduledPulse> pulses;
    double latency = 0.0; ///< ns
    double esp = 1.0;     ///< product of pulse fidelities
    int num_qubits = 0;
    /// Jobs the scheduler refused because they addressed a qubit outside
    /// [0, num_qubits): dropped from the schedule (and from esp/latency)
    /// instead of thrown. Nonzero only on malformed input — the pipeline
    /// surfaces it as a Stage::schedule / Cause::invalid_input degradation.
    std::size_t dropped_jobs = 0;
    /// Human-readable account of the first dropped job, empty when none.
    std::string drop_detail;

    /// Fraction of (latency * num_qubits) covered by pulses: the qubit-line
    /// utilization the paper's parallelism argument is about.
    double utilization() const;
};

/// Schedule jobs in order (ASAP semantics). Never throws: a job addressing a
/// qubit outside the register is dropped and counted on
/// PulseSchedule::dropped_jobs (the compile() never-throws contract reaches
/// through here — the historical std::out_of_range escaped it), so the
/// returned schedule is always valid for the jobs that were schedulable.
PulseSchedule schedule_asap(const std::vector<PulseJob>& jobs, int num_qubits);

} // namespace epoc::core
