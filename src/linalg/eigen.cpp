#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace epoc::linalg {

SymmetricEigen jacobi_symmetric(const Matrix& a, double tol) {
    if (!a.is_square()) throw std::invalid_argument("jacobi_symmetric: not square");
    const std::size_t n = a.rows();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            if (std::abs(a(r, c).imag()) > 1e-10)
                throw std::invalid_argument("jacobi_symmetric: matrix not real");
            if (std::abs(a(r, c).real() - a(c, r).real()) > 1e-9)
                throw std::invalid_argument("jacobi_symmetric: matrix not symmetric");
        }

    std::vector<std::vector<double>> m(n, std::vector<double>(n));
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) m[r][c] = a(r, c).real();
    std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

    for (int sweep = 0; sweep < 100; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q) off += m[p][q] * m[p][q];
        if (off < tol * tol) break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::abs(m[p][q]) < tol * 1e-3) continue;
                const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    const double mkp = m[k][p], mkq = m[k][q];
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double mpk = m[p][k], mqk = m[q][k];
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return m[x][x] < m[y][y]; });

    SymmetricEigen out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        out.values[j] = m[order[j]][order[j]];
        for (std::size_t i = 0; i < n; ++i)
            out.vectors(i, j) = cplx{v[i][order[j]], 0.0};
    }
    return out;
}

HermitianEigen hermitian_eigen(const Matrix& h, double tol) {
    if (!h.is_square()) throw std::invalid_argument("hermitian_eigen: not square");
    const std::size_t n = h.rows();
    if (h.max_abs_diff(h.dagger()) > 1e-9)
        throw std::invalid_argument("hermitian_eigen: matrix not Hermitian");

    // Real embedding: E = [[Re, -Im], [Im, Re]] is symmetric; eigenvalues of
    // h appear twice, eigenvectors come in (x, y) ~ x + i y pairs.
    Matrix e(2 * n, 2 * n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            e(r, c) = cplx{h(r, c).real(), 0.0};
            e(r, c + n) = cplx{-h(r, c).imag(), 0.0};
            e(r + n, c) = cplx{h(r, c).imag(), 0.0};
            e(r + n, c + n) = cplx{h(r, c).real(), 0.0};
        }
    const SymmetricEigen se = jacobi_symmetric(e, tol);

    // Take every other eigenpair (they are doubled) and re-complexify,
    // Gram-Schmidting within degenerate clusters to keep the basis unitary.
    HermitianEigen out;
    out.values.reserve(n);
    out.vectors = Matrix(n, n);
    std::vector<std::vector<cplx>> basis;
    for (std::size_t j = 0; j < 2 * n && basis.size() < n; ++j) {
        std::vector<cplx> cand(n);
        for (std::size_t i = 0; i < n; ++i)
            cand[i] = cplx{se.vectors(i, j).real(), 0.0} +
                      cplx{0.0, 1.0} * se.vectors(i + n, j).real();
        // Orthogonalize against previously accepted vectors (the embedded
        // double of an accepted eigenvector projects to i*that vector).
        for (const auto& b : basis) {
            cplx ov{0.0, 0.0};
            for (std::size_t i = 0; i < n; ++i) ov += std::conj(b[i]) * cand[i];
            for (std::size_t i = 0; i < n; ++i) cand[i] -= ov * b[i];
        }
        double norm = 0.0;
        for (const cplx& x : cand) norm += std::norm(x);
        norm = std::sqrt(norm);
        if (norm < 1e-8) continue; // duplicate of an accepted pair
        for (cplx& x : cand) x /= norm;
        out.values.push_back(se.values[j]);
        basis.push_back(std::move(cand));
    }
    if (basis.size() != n) throw std::logic_error("hermitian_eigen: basis extraction failed");
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = basis[j][i];
    return out;
}

Matrix exp_i_hermitian(const Matrix& h, double t) {
    const HermitianEigen e = hermitian_eigen(h);
    const std::size_t n = h.rows();
    Matrix d(n, n);
    for (std::size_t j = 0; j < n; ++j) d(j, j) = std::polar(1.0, -e.values[j] * t);
    return e.vectors * d * e.vectors.dagger();
}

std::optional<std::pair<Matrix, Matrix>> kron_factor_2x2(const Matrix& u,
                                                         bool require_exact,
                                                         double tol) {
    if (u.rows() != 4 || u.cols() != 4)
        throw std::invalid_argument("kron_factor_2x2: expected a 4x4 matrix");
    // In this codebase kron(a, b) places a's indices on the high bits:
    // u[2*ra+rb][2*ca+cb] = a(ra,ca) * b(rb,cb). Find the dominant block to
    // fix b up to scale, then read a off block magnitudes.
    double best = -1.0;
    std::size_t bra = 0, bca = 0;
    for (std::size_t ra = 0; ra < 2; ++ra)
        for (std::size_t ca = 0; ca < 2; ++ca) {
            double s = 0.0;
            for (std::size_t rb = 0; rb < 2; ++rb)
                for (std::size_t cb = 0; cb < 2; ++cb)
                    s += std::norm(u(2 * ra + rb, 2 * ca + cb));
            if (s > best) {
                best = s;
                bra = ra;
                bca = ca;
            }
        }
    if (best <= 0.0) return std::nullopt;

    Matrix b(2, 2);
    for (std::size_t rb = 0; rb < 2; ++rb)
        for (std::size_t cb = 0; cb < 2; ++cb) b(rb, cb) = u(2 * bra + rb, 2 * bca + cb);
    const double bnorm = b.frobenius_norm();
    b *= cplx{1.0 / bnorm, 0.0};

    Matrix a(2, 2);
    for (std::size_t ra = 0; ra < 2; ++ra)
        for (std::size_t ca = 0; ca < 2; ++ca) {
            // a(ra, ca) = <b, block(ra, ca)> for normalized b.
            cplx ov{0.0, 0.0};
            for (std::size_t rb = 0; rb < 2; ++rb)
                for (std::size_t cb = 0; cb < 2; ++cb)
                    ov += std::conj(b(rb, cb)) * u(2 * ra + rb, 2 * ca + cb);
            a(ra, ca) = ov;
        }

    if (require_exact && kron(a, b).max_abs_diff(u) > tol) return std::nullopt;
    return std::make_pair(std::move(a), std::move(b));
}

} // namespace epoc::linalg
