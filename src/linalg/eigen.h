// Eigensolvers: cyclic Jacobi for real symmetric matrices and, via the
// standard real embedding, Hermitian matrices. Also a closest-Kronecker
// factorization for 4x4 operators (exact on product unitaries), the building
// block of two-qubit KAK-style analysis.
#pragma once

#include "linalg/matrix.h"

#include <optional>
#include <utility>
#include <vector>

namespace epoc::linalg {

struct SymmetricEigen {
    std::vector<double> values;  ///< ascending
    Matrix vectors;              ///< column j is the eigenvector of values[j]
};

/// Cyclic Jacobi on a real symmetric matrix (imaginary parts must be ~0).
/// Throws std::invalid_argument for non-square or non-symmetric input.
SymmetricEigen jacobi_symmetric(const Matrix& a, double tol = 1e-12);

struct HermitianEigen {
    std::vector<double> values; ///< ascending
    Matrix vectors;             ///< unitary; column j pairs with values[j]
};

/// Eigendecomposition of a Hermitian matrix through the 2n x 2n real
/// symmetric embedding [[Re, -Im], [Im, Re]].
HermitianEigen hermitian_eigen(const Matrix& h, double tol = 1e-12);

/// exp(-i * h * t) for Hermitian h via eigendecomposition; exact to solver
/// tolerance and cheaper than Pade when many exponentials of the same
/// dimension are needed.
Matrix exp_i_hermitian(const Matrix& h, double t);

/// Closest Kronecker factorization of a 4x4 matrix: u ~ a (x) b with
/// ||a|| = ||b|| balanced. Returns nullopt if u is (numerically) not a
/// product operator and `require_exact` is set.
std::optional<std::pair<Matrix, Matrix>> kron_factor_2x2(const Matrix& u,
                                                         bool require_exact = true,
                                                         double tol = 1e-8);

} // namespace epoc::linalg
