#include "linalg/expm.h"

#include "linalg/lu.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace epoc::linalg {

namespace {

// Pade coefficients for the degree-13 approximant (Higham 2005, Table 2.3).
constexpr std::array<double, 14> kB13 = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0, 1187353796428800.0,
    129060195264000.0,   10559470521600.0,    670442572800.0,     33522128640.0,
    1323241920.0,        40840800.0,          960960.0,           16380.0,
    182.0,               1.0};

// theta_13: the largest 1-norm for which the degree-13 approximant meets
// double-precision accuracy without scaling.
constexpr double kTheta13 = 5.371920351148152;

} // namespace

Matrix expm(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("expm: matrix not square");
    const std::size_t n = a.rows();
    if (n == 0) return a;
    if (n == 1) {
        Matrix out(1, 1);
        out(0, 0) = std::exp(a(0, 0));
        return out;
    }

    const double norm = a.one_norm();
    int s = 0;
    if (norm > kTheta13) s = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));

    Matrix as = a;
    if (s > 0) as *= cplx{std::ldexp(1.0, -s), 0.0};

    const Matrix i = Matrix::identity(n);
    const Matrix a2 = as * as;
    const Matrix a4 = a2 * a2;
    const Matrix a6 = a2 * a4;

    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    Matrix u = a6 * (kB13[13] * a6 + kB13[11] * a4 + kB13[9] * a2) + kB13[7] * a6 +
               kB13[5] * a4 + kB13[3] * a2 + kB13[1] * i;
    u = as * u;
    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    const Matrix v = a6 * (kB13[12] * a6 + kB13[10] * a4 + kB13[8] * a2) + kB13[6] * a6 +
                     kB13[4] * a4 + kB13[2] * a2 + kB13[0] * i;

    // r = (V - U)^{-1} (V + U)
    Matrix r = solve(v - u, v + u);
    for (int k = 0; k < s; ++k) r = r * r;
    return r;
}

Matrix exp_i(const Matrix& h, double t) {
    Matrix a = h;
    a *= cplx{0.0, -t};
    return expm(a);
}

} // namespace epoc::linalg
