// Matrix exponential via Pade approximation with scaling and squaring
// (Higham 2005, "The Scaling and Squaring Method for the Matrix Exponential
// Revisited"). This is the workhorse of the GRAPE propagator: every time slot
// exponentiates -i*H*dt for a small (<= 2^4 dimensional in our benches)
// Hamiltonian.
#pragma once

#include "linalg/matrix.h"

namespace epoc::linalg {

/// exp(A) for a square complex matrix.
Matrix expm(const Matrix& a);

/// Convenience for quantum propagators: exp(-i * H * t).
Matrix exp_i(const Matrix& h, double t);

} // namespace epoc::linalg
