#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace epoc::linalg {

LuDecomposition lu_decompose(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("lu_decompose: matrix not square");
    const std::size_t n = a.rows();
    LuDecomposition f;
    f.lu = a;
    f.perm.resize(n);
    std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: pick the row with the largest magnitude in this column.
        std::size_t pivot = col;
        double best = std::abs(f.lu(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::abs(f.lu(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best == 0.0) {
            f.singular = true;
            continue;
        }
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(f.lu(col, c), f.lu(pivot, c));
            std::swap(f.perm[col], f.perm[pivot]);
            ++f.num_swaps;
        }
        const cplx d = f.lu(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const cplx factor = f.lu(r, col) / d;
            f.lu(r, col) = factor;
            if (factor == cplx{0.0, 0.0}) continue;
            for (std::size_t c = col + 1; c < n; ++c) f.lu(r, c) -= factor * f.lu(col, c);
        }
    }
    return f;
}

std::vector<cplx> lu_solve(const LuDecomposition& f, const std::vector<cplx>& b) {
    const std::size_t n = f.lu.rows();
    if (b.size() != n) throw std::invalid_argument("lu_solve: rhs size mismatch");
    std::vector<cplx> x(n);
    // Forward substitution with permuted rhs (L has implicit unit diagonal).
    for (std::size_t r = 0; r < n; ++r) {
        cplx acc = b[f.perm[r]];
        for (std::size_t c = 0; c < r; ++c) acc -= f.lu(r, c) * x[c];
        x[r] = acc;
    }
    // Back substitution.
    for (std::size_t ri = n; ri-- > 0;) {
        cplx acc = x[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= f.lu(ri, c) * x[c];
        x[ri] = acc / f.lu(ri, ri);
    }
    return x;
}

Matrix lu_solve(const LuDecomposition& f, const Matrix& b) {
    const std::size_t n = f.lu.rows();
    if (b.rows() != n) throw std::invalid_argument("lu_solve: rhs rows mismatch");
    Matrix x(n, b.cols());
    std::vector<cplx> col(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
        const std::vector<cplx> sol = lu_solve(f, col);
        for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
    }
    return x;
}

Matrix solve(const Matrix& a, const Matrix& b) {
    const LuDecomposition f = lu_decompose(a);
    if (f.singular) throw std::domain_error("solve: singular matrix");
    return lu_solve(f, b);
}

Matrix inverse(const Matrix& a) { return solve(a, Matrix::identity(a.rows())); }

cplx determinant(const Matrix& a) {
    const LuDecomposition f = lu_decompose(a);
    if (f.singular) return cplx{0.0, 0.0};
    cplx d = (f.num_swaps % 2 == 0) ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
    for (std::size_t i = 0; i < a.rows(); ++i) d *= f.lu(i, i);
    return d;
}

} // namespace epoc::linalg
