// LU decomposition with partial pivoting for complex matrices, plus linear
// solves. Used by the Pade approximant in expm() and available as a general
// substrate (e.g. computing inverses of small unitaries in tests).
#pragma once

#include "linalg/matrix.h"

namespace epoc::linalg {

/// LU factorization with partial pivoting: P*A = L*U.
/// L and U are packed into `lu` (unit diagonal of L implied); `perm[i]` is the
/// source row of row i after pivoting; `num_swaps` tracks parity for det().
struct LuDecomposition {
    Matrix lu;
    std::vector<std::size_t> perm;
    int num_swaps = 0;

    /// True if the matrix was numerically singular (a zero pivot was hit).
    bool singular = false;
};

/// Factor a square matrix. Never throws on singular input; check `.singular`.
LuDecomposition lu_decompose(const Matrix& a);

/// Solve A*x = b for a single right-hand side using a precomputed factorization.
std::vector<cplx> lu_solve(const LuDecomposition& f, const std::vector<cplx>& b);

/// Solve A*X = B (matrix right-hand side).
Matrix lu_solve(const LuDecomposition& f, const Matrix& b);

/// Convenience: solve A*X = B directly. Throws std::domain_error if A is singular.
Matrix solve(const Matrix& a, const Matrix& b);

/// Matrix inverse via LU. Throws std::domain_error if singular.
Matrix inverse(const Matrix& a);

/// Determinant via LU.
cplx determinant(const Matrix& a);

} // namespace epoc::linalg
