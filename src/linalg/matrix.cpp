#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace epoc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
    return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix& Matrix::operator+=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix +=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix -=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(cplx s) {
    for (auto& x : data_) x *= s;
    return *this;
}

Matrix Matrix::dagger() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
    return out;
}

Matrix Matrix::transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
}

Matrix Matrix::conjugate() const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = std::conj(data_[i]);
    return out;
}

cplx Matrix::trace() const {
    if (!is_square()) throw std::invalid_argument("Matrix::trace: not square");
    cplx t{0.0, 0.0};
    for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
    return t;
}

double Matrix::frobenius_norm() const {
    double s = 0.0;
    for (const auto& x : data_) s += std::norm(x);
    return std::sqrt(s);
}

double Matrix::one_norm() const {
    double best = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
        double s = 0.0;
        for (std::size_t r = 0; r < rows_; ++r) s += std::abs((*this)(r, c));
        best = std::max(best, s);
    }
    return best;
}

double Matrix::max_abs_diff(const Matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
    double best = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        best = std::max(best, std::abs(data_[i] - other.data_[i]));
    return best;
}

bool Matrix::is_unitary(double tol) const {
    if (!is_square()) return false;
    const Matrix prod = (*this) * dagger();
    return prod.max_abs_diff(identity(rows_)) <= tol;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    return max_abs_diff(other) <= tol;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
    if (lhs.cols() != rhs.rows())
        throw std::invalid_argument("Matrix *: inner dimension mismatch");
    Matrix out(lhs.rows(), rhs.cols());
    const std::size_t n = lhs.rows(), k = lhs.cols(), m = rhs.cols();
    // i-k-j loop order keeps the inner loop contiguous for row-major storage.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const cplx a = lhs(i, p);
            if (a == cplx{0.0, 0.0}) continue;
            const cplx* rrow = rhs.data() + p * m;
            cplx* orow = out.data() + i * m;
            for (std::size_t j = 0; j < m; ++j) orow[j] += a * rrow[j];
        }
    }
    return out;
}

Matrix operator*(cplx s, Matrix m) {
    m *= s;
    return m;
}

Matrix operator*(Matrix m, cplx s) {
    m *= s;
    return m;
}

std::vector<cplx> operator*(const Matrix& m, const std::vector<cplx>& v) {
    if (m.cols() != v.size())
        throw std::invalid_argument("Matrix * vector: dimension mismatch");
    std::vector<cplx> out(m.rows(), cplx{0.0, 0.0});
    for (std::size_t r = 0; r < m.rows(); ++r) {
        cplx acc{0.0, 0.0};
        const cplx* row = m.data() + r * m.cols();
        for (std::size_t c = 0; c < m.cols(); ++c) acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix kron(const Matrix& a, const Matrix& b) {
    Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t ar = 0; ar < a.rows(); ++ar)
        for (std::size_t ac = 0; ac < a.cols(); ++ac) {
            const cplx v = a(ar, ac);
            if (v == cplx{0.0, 0.0}) continue;
            for (std::size_t br = 0; br < b.rows(); ++br)
                for (std::size_t bc = 0; bc < b.cols(); ++bc)
                    out(ar * b.rows() + br, ac * b.cols() + bc) = v * b(br, bc);
        }
    return out;
}

Matrix kron_all(const std::vector<Matrix>& ms) {
    if (ms.empty()) return Matrix::identity(1);
    Matrix out = ms.front();
    for (std::size_t i = 1; i < ms.size(); ++i) out = kron(out, ms[i]);
    return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
        os << (r == 0 ? "[[" : " [");
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const cplx v = m(r, c);
            os << v.real() << (v.imag() < 0 ? "-" : "+") << std::abs(v.imag()) << "i";
            if (c + 1 < m.cols()) os << ", ";
        }
        os << (r + 1 == m.rows() ? "]]" : "]\n");
    }
    return os;
}

} // namespace epoc::linalg
