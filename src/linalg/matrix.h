// Dense complex matrix type used throughout EPOC.
//
// Unitaries in this codebase are small (dimension <= 2^8); a straightforward
// row-major dense representation with O(n^3) multiply is the right tool.
// All quantum-specific helpers (embedding a gate into a register, fidelity
// metrics, ...) live in circuit/ and linalg/phase.h; this header is plain
// linear algebra.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace epoc::linalg {

using cplx = std::complex<double>;

/// Dense row-major complex matrix.
class Matrix {
public:
    Matrix() = default;

    /// Zero-initialized rows x cols matrix.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

    /// Construct from nested initializer lists; all rows must be equal length.
    Matrix(std::initializer_list<std::initializer_list<cplx>> rows);

    /// n x n identity.
    static Matrix identity(std::size_t n);
    /// rows x cols all-zero matrix.
    static Matrix zeros(std::size_t rows, std::size_t cols);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }
    bool is_square() const noexcept { return rows_ == cols_; }

    cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    const cplx& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    /// Raw storage, row-major. Useful for tight inner loops.
    cplx* data() noexcept { return data_.data(); }
    const cplx* data() const noexcept { return data_.data(); }

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(cplx s);

    /// Conjugate transpose.
    Matrix dagger() const;
    Matrix transpose() const;
    Matrix conjugate() const;

    cplx trace() const;
    double frobenius_norm() const;
    /// Maximum column sum of absolute values (induced 1-norm).
    double one_norm() const;
    /// max_ij |a_ij - b_ij|; matrices must be the same shape.
    double max_abs_diff(const Matrix& other) const;

    /// True if this is square and U * U^dagger == I within `tol` (max abs entry).
    bool is_unitary(double tol = 1e-9) const;
    bool approx_equal(const Matrix& other, double tol = 1e-9) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<cplx> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(const Matrix& lhs, const Matrix& rhs);
Matrix operator*(cplx s, Matrix m);
Matrix operator*(Matrix m, cplx s);

/// Matrix-vector product; v.size() must equal m.cols().
std::vector<cplx> operator*(const Matrix& m, const std::vector<cplx>& v);

/// Kronecker (tensor) product, a (x) b.
Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker product of a list, left to right: ms[0] (x) ms[1] (x) ...
Matrix kron_all(const std::vector<Matrix>& ms);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

} // namespace epoc::linalg
