#include "linalg/phase.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace epoc::linalg {

double hs_fidelity(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument("hs_fidelity: shape mismatch");
    cplx overlap{0.0, 0.0};
    const std::size_t n = a.rows() * a.cols();
    const cplx* pa = a.data();
    const cplx* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) overlap += std::conj(pa[i]) * pb[i];
    return std::abs(overlap) / static_cast<double>(a.rows());
}

double phase_invariant_distance(const Matrix& a, const Matrix& b) {
    return std::sqrt(std::max(0.0, 1.0 - hs_fidelity(a, b)));
}

bool equal_up_to_global_phase(const Matrix& a, const Matrix& b, double tol) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    return phase_invariant_distance(a, b) <= tol;
}

Matrix canonicalize_global_phase(const Matrix& m) {
    // Pick the largest-magnitude entry as the phase reference. Ties broken by
    // index order, which is deterministic.
    double best = -1.0;
    cplx ref{1.0, 0.0};
    const std::size_t n = m.rows() * m.cols();
    const cplx* p = m.data();
    for (std::size_t i = 0; i < n; ++i) {
        const double mag = std::abs(p[i]);
        if (mag > best + 1e-12) {
            best = mag;
            ref = p[i];
        }
    }
    if (best <= 0.0) return m;
    const cplx phase = std::conj(ref) / std::abs(ref);
    Matrix out = m;
    out *= phase;
    return out;
}

namespace {

std::string fingerprint(const Matrix& m, int decimals) {
    const double scale = std::pow(10.0, decimals);
    std::string key;
    key.reserve(m.rows() * m.cols() * 24 + 16);
    key += std::to_string(m.rows());
    key += 'x';
    key += std::to_string(m.cols());
    char buf[64];
    const std::size_t n = m.rows() * m.cols();
    const cplx* p = m.data();
    for (std::size_t i = 0; i < n; ++i) {
        // Round and normalize -0 to 0 so the key is stable across signed zeros.
        double re = std::round(p[i].real() * scale) / scale;
        double im = std::round(p[i].imag() * scale) / scale;
        if (re == 0.0) re = 0.0;
        if (im == 0.0) im = 0.0;
        std::snprintf(buf, sizeof(buf), ";%.*f,%.*f", decimals, re, decimals, im);
        key += buf;
    }
    return key;
}

} // namespace

std::string phase_canonical_key(const Matrix& m, int decimals) {
    return fingerprint(canonicalize_global_phase(m), decimals);
}

std::string raw_key(const Matrix& m, int decimals) { return fingerprint(m, decimals); }

} // namespace epoc::linalg
