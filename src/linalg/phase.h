// Global-phase-aware unitary comparison.
//
// Two unitaries that differ only by e^{i*phi} implement the same quantum
// operation. EPOC's pulse library keys on this equivalence class (Section 3.4
// of the paper: "EPOC supports the detection of unitary similarity with
// global phase"), so canonicalization and phase-invariant distances live here.
#pragma once

#include "linalg/matrix.h"

#include <cstdint>
#include <string>

namespace epoc::linalg {

/// Hilbert-Schmidt overlap |tr(A^dagger B)| / d, in [0, 1] for unitaries.
/// 1 means equal up to global phase.
double hs_fidelity(const Matrix& a, const Matrix& b);

/// Phase-invariant distance sqrt(max(0, 1 - hs_fidelity)). Zero iff the
/// matrices are equal up to global phase. This is the synthesis cost function.
double phase_invariant_distance(const Matrix& a, const Matrix& b);

/// True if a == e^{i phi} b for some phi, within tol on hs distance.
bool equal_up_to_global_phase(const Matrix& a, const Matrix& b, double tol = 1e-7);

/// Multiply by a global phase such that the largest-magnitude entry becomes
/// real and positive. Canonical representative of the phase equivalence class.
Matrix canonicalize_global_phase(const Matrix& m);

/// Quantized fingerprint of the phase-canonical form, suitable as a hash key.
/// Entries are rounded to `decimals` decimal places. Matrices equal up to
/// global phase (and within quantization) produce identical keys.
std::string phase_canonical_key(const Matrix& m, int decimals = 6);

/// Fingerprint WITHOUT phase canonicalization (for the ablation that measures
/// the library hit-rate benefit of phase-aware lookup).
std::string raw_key(const Matrix& m, int decimals = 6);

} // namespace epoc::linalg
