#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace epoc::linalg {

QrDecomposition qr_decompose(const Matrix& a) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Matrix q = Matrix::identity(m);

    const std::size_t steps = std::min(m == 0 ? 0 : m - 1, n);
    std::vector<cplx> v(m);
    for (std::size_t k = 0; k < steps; ++k) {
        // Build the Householder vector for column k below the diagonal.
        double xnorm2 = 0.0;
        for (std::size_t i = k; i < m; ++i) xnorm2 += std::norm(r(i, k));
        const double xnorm = std::sqrt(xnorm2);
        if (xnorm == 0.0) continue;

        const cplx x0 = r(k, k);
        // alpha = -e^{i*arg(x0)} * ||x||, so the reflected pivot is nonzero.
        const cplx phase = (std::abs(x0) == 0.0) ? cplx{1.0, 0.0} : x0 / std::abs(x0);
        const cplx alpha = -phase * xnorm;

        double vnorm2 = 0.0;
        for (std::size_t i = k; i < m; ++i) {
            v[i] = r(i, k);
            if (i == k) v[i] -= alpha;
            vnorm2 += std::norm(v[i]);
        }
        if (vnorm2 == 0.0) continue;

        // Apply H = I - 2 v v^dagger / ||v||^2 to R (left) and accumulate into Q.
        for (std::size_t c = k; c < n; ++c) {
            cplx dot{0.0, 0.0};
            for (std::size_t i = k; i < m; ++i) dot += std::conj(v[i]) * r(i, c);
            const cplx f = 2.0 * dot / vnorm2;
            for (std::size_t i = k; i < m; ++i) r(i, c) -= f * v[i];
        }
        for (std::size_t c = 0; c < m; ++c) {
            // Q accumulates reflections on the right: Q <- Q * H.
            cplx dot{0.0, 0.0};
            for (std::size_t i = k; i < m; ++i) dot += q(c, i) * v[i];
            const cplx f = 2.0 * dot / vnorm2;
            for (std::size_t i = k; i < m; ++i) q(c, i) -= f * std::conj(v[i]);
        }
    }
    return {std::move(q), std::move(r)};
}

} // namespace epoc::linalg
