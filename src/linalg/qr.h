// Householder QR decomposition for complex matrices. Primary consumer is the
// Haar-random unitary sampler (QR of a Ginibre matrix), but it is exposed as a
// general substrate.
#pragma once

#include "linalg/matrix.h"

namespace epoc::linalg {

struct QrDecomposition {
    Matrix q; ///< unitary (rows x rows)
    Matrix r; ///< upper triangular (rows x cols)
};

/// Full QR factorization A = Q*R via Householder reflections.
QrDecomposition qr_decompose(const Matrix& a);

} // namespace epoc::linalg
