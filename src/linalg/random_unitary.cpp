#include "linalg/random_unitary.h"

#include "linalg/lu.h"
#include "linalg/qr.h"

#include <cmath>

namespace epoc::linalg {

Matrix random_unitary(std::size_t n, std::mt19937_64& rng) {
    std::normal_distribution<double> gauss(0.0, 1.0);
    Matrix g(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) g(r, c) = cplx{gauss(rng), gauss(rng)};

    QrDecomposition f = qr_decompose(g);
    // Fix the gauge: multiply each column of Q by the phase of the matching R
    // diagonal so the distribution is exactly Haar.
    for (std::size_t c = 0; c < n; ++c) {
        const cplx d = f.r(c, c);
        const cplx phase = (std::abs(d) == 0.0) ? cplx{1.0, 0.0} : d / std::abs(d);
        for (std::size_t r2 = 0; r2 < n; ++r2) f.q(r2, c) *= phase;
    }
    return f.q;
}

Matrix random_unitary(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    return random_unitary(n, rng);
}

Matrix random_special_unitary(std::size_t n, std::mt19937_64& rng) {
    Matrix u = random_unitary(n, rng);
    const cplx det = determinant(u);
    // Divide one global phase out: multiply by det^{-1/n}.
    const double ang = std::arg(det) / static_cast<double>(n);
    u *= std::polar(1.0, -ang);
    return u;
}

} // namespace epoc::linalg
