// Haar-random unitary sampling (Mezzadri 2007: QR of a complex Ginibre matrix
// with phase-corrected R diagonal). Used by property tests and by synthesis
// stress benchmarks.
#pragma once

#include "linalg/matrix.h"

#include <cstdint>
#include <random>

namespace epoc::linalg {

/// Sample an n x n Haar-distributed unitary.
Matrix random_unitary(std::size_t n, std::mt19937_64& rng);

/// Deterministic convenience overload.
Matrix random_unitary(std::size_t n, std::uint64_t seed);

/// A random special-unitary (det = 1) matrix.
Matrix random_special_unitary(std::size_t n, std::mt19937_64& rng);

} // namespace epoc::linalg
