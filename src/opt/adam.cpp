#include "opt/adam.h"

#include <algorithm>
#include <cmath>

namespace epoc::opt {

OptimizeResult adam_minimize(const Objective& f, std::vector<double> x0,
                             const AdamOptions& opt) {
    OptimizeResult res;
    res.x = std::move(x0);
    const std::size_t n = res.x.size();
    std::vector<double> m(n, 0.0), v(n, 0.0), grad(n, 0.0);

    std::vector<double> best_x = res.x;
    double best_f = f(res.x, grad);

    for (int it = 1; it <= opt.max_iterations; ++it) {
        res.iterations = it;
        double gmax = 0.0;
        for (const double g : grad) gmax = std::max(gmax, std::abs(g));
        if (best_f <= opt.target_value || gmax <= opt.gradient_tolerance) {
            res.converged = true;
            break;
        }
        const double b1t = 1.0 - std::pow(opt.beta1, it);
        const double b2t = 1.0 - std::pow(opt.beta2, it);
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = opt.beta1 * m[i] + (1 - opt.beta1) * grad[i];
            v[i] = opt.beta2 * v[i] + (1 - opt.beta2) * grad[i] * grad[i];
            const double mhat = m[i] / b1t;
            const double vhat = v[i] / b2t;
            res.x[i] -= opt.learning_rate * mhat / (std::sqrt(vhat) + opt.epsilon);
        }
        const double fv = f(res.x, grad);
        if (fv < best_f) {
            best_f = fv;
            best_x = res.x;
        }
    }
    res.x = std::move(best_x);
    res.value = best_f;
    if (best_f <= opt.target_value) res.converged = true;
    return res;
}

} // namespace epoc::opt
