// Adam first-order optimizer (Kingma & Ba 2015). Used by GRAPE, where the
// landscape is noisy and curvature estimates are unreliable.
#pragma once

#include "opt/objective.h"

namespace epoc::opt {

struct AdamOptions {
    double learning_rate = 0.05;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    int max_iterations = 300;
    /// Stop when f drops below this value (useful when f is an infidelity).
    double target_value = -1e300;
    /// Stop when the gradient inf-norm falls below this.
    double gradient_tolerance = 1e-10;
};

OptimizeResult adam_minimize(const Objective& f, std::vector<double> x0,
                             const AdamOptions& opt = {});

} // namespace epoc::opt
