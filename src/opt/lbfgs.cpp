#include "opt/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace epoc::opt {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double inf_norm(const std::vector<double>& a) {
    double s = 0.0;
    for (const double v : a) s = std::max(s, std::abs(v));
    return s;
}

} // namespace

OptimizeResult lbfgs_minimize(const Objective& f, std::vector<double> x0,
                              const LbfgsOptions& opt) {
    OptimizeResult res;
    res.x = std::move(x0);
    const std::size_t n = res.x.size();
    std::vector<double> grad(n, 0.0);
    double fx = f(res.x, grad);

    struct Pair {
        std::vector<double> s, y;
        double rho;
    };
    std::deque<Pair> hist;

    for (int it = 0; it < opt.max_iterations; ++it) {
        res.iterations = it + 1;
        if (fx <= opt.target_value || inf_norm(grad) <= opt.gradient_tolerance) {
            res.converged = true;
            break;
        }

        // Two-loop recursion for the search direction d = -H * grad.
        std::vector<double> d = grad;
        std::vector<double> alpha(hist.size());
        for (std::size_t i = hist.size(); i-- > 0;) {
            alpha[i] = hist[i].rho * dot(hist[i].s, d);
            for (std::size_t k = 0; k < n; ++k) d[k] -= alpha[i] * hist[i].y[k];
        }
        if (!hist.empty()) {
            const Pair& last = hist.back();
            const double gamma = dot(last.s, last.y) / dot(last.y, last.y);
            for (double& v : d) v *= gamma;
        }
        for (std::size_t i = 0; i < hist.size(); ++i) {
            const double beta = hist[i].rho * dot(hist[i].y, d);
            for (std::size_t k = 0; k < n; ++k) d[k] += (alpha[i] - beta) * hist[i].s[k];
        }
        for (double& v : d) v = -v;

        double dg = dot(d, grad);
        if (dg >= 0.0) {
            // Not a descent direction (stale curvature): reset to steepest.
            hist.clear();
            for (std::size_t k = 0; k < n; ++k) d[k] = -grad[k];
            dg = -dot(grad, grad);
            if (dg == 0.0) {
                res.converged = true;
                break;
            }
        }

        // Backtracking line search: accept on the Armijo condition, falling
        // back to the best merely-improving step seen (sufficient for the
        // smooth trigonometric objectives this library optimizes; the strong
        // Wolfe curvature check is advisory because sy > 0 is guarded below).
        double step = 1.0;
        std::vector<double> x_new(n), g_new(n, 0.0);
        double f_new = fx;
        bool ok = false;
        double best_step = 0.0, best_f = fx;
        for (int ls = 0; ls < opt.max_line_search_steps; ++ls) {
            for (std::size_t k = 0; k < n; ++k) x_new[k] = res.x[k] + step * d[k];
            f_new = f(x_new, g_new);
            if (f_new <= fx + opt.wolfe_c1 * step * dg) {
                ok = true;
                break;
            }
            if (f_new < best_f) {
                best_f = f_new;
                best_step = step;
            }
            step *= 0.5;
        }
        if (!ok && best_step > 0.0) {
            // No Armijo step within budget; take the best improvement.
            step = best_step;
            for (std::size_t k = 0; k < n; ++k) x_new[k] = res.x[k] + step * d[k];
            f_new = f(x_new, g_new);
            ok = true;
        }
        if (!ok || f_new >= fx) break; // no progress

        std::vector<double> s(n), y(n);
        for (std::size_t k = 0; k < n; ++k) {
            s[k] = x_new[k] - res.x[k];
            y[k] = g_new[k] - grad[k];
        }
        const double sy = dot(s, y);
        if (sy > 1e-12) {
            hist.push_back({std::move(s), std::move(y), 1.0 / sy});
            if (static_cast<int>(hist.size()) > opt.history) hist.pop_front();
        }
        res.x = std::move(x_new);
        x_new.assign(n, 0.0);
        grad = g_new;
        fx = f_new;
    }
    res.value = fx;
    if (fx <= opt.target_value) res.converged = true;
    return res;
}

} // namespace epoc::opt
