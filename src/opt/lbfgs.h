// Limited-memory BFGS with a strong-Wolfe line search (Nocedal & Wright,
// Numerical Optimization, Alg. 7.4/3.5). Used to instantiate synthesis
// circuit parameters, where the objective is smooth and few hundred
// dimensional at most.
#pragma once

#include "opt/objective.h"

namespace epoc::opt {

struct LbfgsOptions {
    int max_iterations = 200;
    int history = 8;
    double gradient_tolerance = 1e-9;
    double target_value = -1e300;
    double wolfe_c1 = 1e-4;
    double wolfe_c2 = 0.9;
    int max_line_search_steps = 30;
};

OptimizeResult lbfgs_minimize(const Objective& f, std::vector<double> x0,
                              const LbfgsOptions& opt = {});

} // namespace epoc::opt
