// Objective interface shared by the synthesis instantiater and GRAPE.
#pragma once

#include <functional>
#include <vector>

namespace epoc::opt {

/// Evaluate f(x) and its gradient. The gradient vector is resized/written by
/// the callee.
using Objective =
    std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

struct OptimizeResult {
    std::vector<double> x;
    double value = 0.0;
    int iterations = 0;
    bool converged = false;
};

} // namespace epoc::opt
