#include "partition/partition.h"

#include "circuit/unitary.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace epoc::partition {

using circuit::Circuit;
using circuit::Gate;

std::vector<std::vector<int>> group_qubits(const Circuit& c, int max_qubits) {
    if (max_qubits < 1) throw std::invalid_argument("group_qubits: max_qubits < 1");
    const int nq = c.num_qubits();
    // Interaction weights: how often two qubits share a gate.
    std::map<std::pair<int, int>, int> weight;
    for (const Gate& g : c.gates())
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            for (std::size_t j = i + 1; j < g.qubits.size(); ++j) {
                const int a = std::min(g.qubits[i], g.qubits[j]);
                const int b = std::max(g.qubits[i], g.qubits[j]);
                ++weight[{a, b}];
            }

    std::vector<bool> taken(static_cast<std::size_t>(nq), false);
    std::vector<std::vector<int>> groups;
    for (int q = 0; q < nq; ++q) {
        if (taken[static_cast<std::size_t>(q)]) continue;
        std::vector<int> group{q};
        taken[static_cast<std::size_t>(q)] = true;
        // Grow by the heaviest edges into the current group.
        while (static_cast<int>(group.size()) < max_qubits) {
            int best = -1, best_w = 0;
            for (int cand = 0; cand < nq; ++cand) {
                if (taken[static_cast<std::size_t>(cand)]) continue;
                int w = 0;
                for (const int m : group) {
                    const auto it = weight.find({std::min(m, cand), std::max(m, cand)});
                    if (it != weight.end()) w += it->second;
                }
                if (w > best_w) {
                    best_w = w;
                    best = cand;
                }
            }
            if (best < 0) break;
            group.push_back(best);
            taken[static_cast<std::size_t>(best)] = true;
        }
        std::sort(group.begin(), group.end());
        groups.push_back(std::move(group));
    }
    return groups;
}

namespace {

/// Open block under construction for one qubit group.
struct OpenBlock {
    std::vector<int> qubits; ///< sorted global ids
    std::vector<Gate> gates; ///< global qubit indices (localized at close)
};

CircuitBlock close_block(OpenBlock&& ob, bool bridge) {
    CircuitBlock blk;
    blk.qubits = ob.qubits;
    blk.bridge = bridge;
    blk.body = Circuit(static_cast<int>(ob.qubits.size()));
    std::map<int, int> local;
    for (std::size_t i = 0; i < ob.qubits.size(); ++i)
        local[ob.qubits[i]] = static_cast<int>(i);
    for (Gate g : ob.gates) {
        for (int& q : g.qubits) q = local.at(q);
        blk.body.add(std::move(g));
    }
    return blk;
}

} // namespace

std::vector<CircuitBlock> greedy_partition(const Circuit& c, const PartitionOptions& opt) {
    const auto groups = group_qubits(c, opt.max_qubits);
    const int nq = c.num_qubits();
    std::vector<int> group_of(static_cast<std::size_t>(nq), -1);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
        for (const int q : groups[gi]) group_of[static_cast<std::size_t>(q)] = static_cast<int>(gi);

    std::vector<OpenBlock> open(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) open[gi].qubits = groups[gi];

    std::vector<CircuitBlock> out;
    const auto flush = [&](std::size_t gi) {
        if (open[gi].gates.empty()) return;
        out.push_back(close_block(std::move(open[gi]), false));
        open[gi] = OpenBlock{};
        open[gi].qubits = groups[gi];
    };

    for (const Gate& g : c.gates()) {
        std::set<int> gate_groups;
        for (const int q : g.qubits) gate_groups.insert(group_of[static_cast<std::size_t>(q)]);
        if (gate_groups.size() == 1) {
            const std::size_t gi = static_cast<std::size_t>(*gate_groups.begin());
            if (static_cast<int>(open[gi].gates.size()) >= opt.max_gates) flush(gi);
            open[gi].gates.push_back(g);
        } else {
            // Bridging gate: close every involved group to preserve order,
            // then emit the gate as its own block.
            for (const int gi : gate_groups) flush(static_cast<std::size_t>(gi));
            OpenBlock bridge;
            bridge.qubits = g.qubits;
            std::sort(bridge.qubits.begin(), bridge.qubits.end());
            bridge.gates.push_back(g);
            out.push_back(close_block(std::move(bridge), true));
        }
    }
    for (std::size_t gi = 0; gi < groups.size(); ++gi) flush(gi);
    return out;
}

linalg::Matrix block_unitary(const CircuitBlock& b) { return circuit::circuit_unitary(b.body); }

Circuit blocks_to_circuit(const std::vector<CircuitBlock>& blocks, int num_qubits) {
    Circuit c(num_qubits);
    for (const CircuitBlock& b : blocks) c.append_mapped(b.body, b.qubits);
    return c;
}

} // namespace epoc::partition
