#include "partition/partition.h"

#include "circuit/unitary.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

namespace epoc::partition {

using circuit::Circuit;
using circuit::Gate;

std::vector<std::vector<int>> group_qubits(const Circuit& c, int max_qubits,
                                           const circuit::CouplingMap* coupling) {
    if (max_qubits < 1) throw std::invalid_argument("group_qubits: max_qubits < 1");
    const int nq = c.num_qubits();
    if (coupling != nullptr && nq > coupling->num_qubits())
        throw std::invalid_argument("group_qubits: circuit wider than coupling map");
    // Interaction weights: how often two qubits share a gate.
    std::map<std::pair<int, int>, int> weight;
    for (const Gate& g : c.gates())
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            for (std::size_t j = i + 1; j < g.qubits.size(); ++j) {
                const int a = std::min(g.qubits[i], g.qubits[j]);
                const int b = std::max(g.qubits[i], g.qubits[j]);
                ++weight[{a, b}];
            }

    std::vector<bool> taken(static_cast<std::size_t>(nq), false);
    std::vector<std::vector<int>> groups;
    for (int q = 0; q < nq; ++q) {
        if (taken[static_cast<std::size_t>(q)]) continue;
        std::vector<int> group{q};
        taken[static_cast<std::size_t>(q)] = true;
        // Grow by the heaviest edges into the current group. Topology-aware
        // mode additionally requires the candidate to be coupling-adjacent to
        // a current member, so groups stay connected subgraphs of the device.
        while (static_cast<int>(group.size()) < max_qubits) {
            int best = -1, best_w = 0;
            for (int cand = 0; cand < nq; ++cand) {
                if (taken[static_cast<std::size_t>(cand)]) continue;
                if (coupling != nullptr) {
                    bool touches = false;
                    for (const int m : group)
                        if (coupling->adjacent(m, cand)) {
                            touches = true;
                            break;
                        }
                    if (!touches) continue;
                }
                int w = 0;
                for (const int m : group) {
                    const auto it = weight.find({std::min(m, cand), std::max(m, cand)});
                    if (it != weight.end()) w += it->second;
                }
                if (w > best_w) {
                    best_w = w;
                    best = cand;
                }
            }
            if (best < 0) break;
            group.push_back(best);
            taken[static_cast<std::size_t>(best)] = true;
        }
        std::sort(group.begin(), group.end());
        groups.push_back(std::move(group));
    }
    return groups;
}

namespace {

/// Open block under construction for one qubit group.
struct OpenBlock {
    std::vector<int> qubits; ///< sorted global ids
    std::vector<Gate> gates; ///< global qubit indices (localized at close)
};

CircuitBlock close_block(OpenBlock&& ob, bool bridge) {
    CircuitBlock blk;
    blk.qubits = ob.qubits;
    blk.bridge = bridge;
    blk.body = Circuit(static_cast<int>(ob.qubits.size()));
    std::map<int, int> local;
    for (std::size_t i = 0; i < ob.qubits.size(); ++i)
        local[ob.qubits[i]] = static_cast<int>(i);
    for (Gate g : ob.gates) {
        for (int& q : g.qubits) q = local.at(q);
        blk.body.add(std::move(g));
    }
    return blk;
}

/// A SWAP gate over global qubits {a, b}.
Gate global_swap(int a, int b) {
    Circuit tmp(2);
    tmp.swap(0, 1);
    Gate g = tmp.gates().front();
    g.qubits = {a, b};
    return g;
}

/// Single bridge block holding one gate over global `qubits`.
CircuitBlock one_gate_block(std::vector<int> qubits, const Gate& g) {
    OpenBlock ob;
    ob.qubits = std::move(qubits);
    std::sort(ob.qubits.begin(), ob.qubits.end());
    ob.gates.push_back(g);
    return close_block(std::move(ob), true);
}

std::string gate_span_str(const Gate& g) {
    std::string s = "(";
    for (std::size_t i = 0; i < g.qubits.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(g.qubits[i]);
    }
    return s + ")";
}

} // namespace

std::vector<CircuitBlock> greedy_partition(const Circuit& c, const PartitionOptions& opt) {
    const auto groups = group_qubits(c, opt.max_qubits, opt.coupling);
    const int nq = c.num_qubits();
    std::vector<int> group_of(static_cast<std::size_t>(nq), -1);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
        for (const int q : groups[gi]) group_of[static_cast<std::size_t>(q)] = static_cast<int>(gi);

    std::vector<OpenBlock> open(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) open[gi].qubits = groups[gi];

    std::vector<CircuitBlock> out;
    const auto flush = [&](std::size_t gi) {
        if (open[gi].gates.empty()) return;
        out.push_back(close_block(std::move(open[gi]), false));
        open[gi] = OpenBlock{};
        open[gi].qubits = groups[gi];
    };
    // Flush every group owning one of `qs` (SWAP-walks may traverse device
    // qubits beyond the circuit width; those have no group and no open block).
    const auto flush_touching = [&](const std::set<int>& qs) {
        std::set<int> gis;
        for (const int q : qs)
            if (q < nq && group_of[static_cast<std::size_t>(q)] >= 0)
                gis.insert(group_of[static_cast<std::size_t>(q)]);
        for (const int gi : gis) flush(static_cast<std::size_t>(gi));
    };

    for (const Gate& g : c.gates()) {
        std::set<int> gate_groups;
        for (const int q : g.qubits) gate_groups.insert(group_of[static_cast<std::size_t>(q)]);
        if (gate_groups.size() == 1) {
            const std::size_t gi = static_cast<std::size_t>(*gate_groups.begin());
            if (static_cast<int>(open[gi].gates.size()) >= opt.max_gates) flush(gi);
            open[gi].gates.push_back(g);
            continue;
        }
        // Bridging gate: close every involved group to preserve order, then
        // emit the gate as its own block.
        if (opt.coupling == nullptr) {
            for (const int gi : gate_groups) flush(static_cast<std::size_t>(gi));
            OpenBlock bridge;
            bridge.qubits = g.qubits;
            std::sort(bridge.qubits.begin(), bridge.qubits.end());
            bridge.gates.push_back(g);
            out.push_back(close_block(std::move(bridge), true));
            continue;
        }
        const circuit::CouplingMap& cm = *opt.coupling;
        if (g.arity() == 2 && !cm.adjacent(g.qubits[0], g.qubits[1])) {
            if (opt.bridge_policy == BridgePolicy::reject)
                throw std::invalid_argument(
                    "greedy_partition: bridging gate " + gate_span_str(g) +
                    " spans non-adjacent qubits (bridge policy: reject)");
            // SWAP-walk the first operand toward the second along a shortest
            // path, apply the gate on the adjacent pair, then walk back. The
            // net layout is the identity, so the block list stays
            // unitary-equal to the input and later gates are unaffected.
            std::vector<int> walk;
            int pos = g.qubits[0];
            while (!cm.adjacent(pos, g.qubits[1])) {
                pos = cm.next_hop(pos, g.qubits[1]);
                walk.push_back(pos);
            }
            std::set<int> touched{g.qubits[0], g.qubits[1]};
            touched.insert(walk.begin(), walk.end());
            flush_touching(touched);
            std::vector<std::pair<int, int>> swaps;
            int cur = g.qubits[0];
            for (const int nxt : walk) {
                swaps.emplace_back(cur, nxt);
                cur = nxt;
            }
            for (const auto& [x, y] : swaps)
                out.push_back(one_gate_block({x, y}, global_swap(x, y)));
            Gate moved = g;
            moved.qubits[0] = cur;
            out.push_back(one_gate_block({cur, g.qubits[1]}, moved));
            for (auto it = swaps.rbegin(); it != swaps.rend(); ++it)
                out.push_back(one_gate_block({it->first, it->second},
                                             global_swap(it->first, it->second)));
            continue;
        }
        // Adjacent two-qubit bridge, or a wider gate: the block's qubit set
        // is the connected closure of the operands (union of shortest paths
        // from the first operand), so the emitted block is always a connected
        // subgraph of the device.
        std::set<int> closure(g.qubits.begin(), g.qubits.end());
        for (std::size_t i = 1; i < g.qubits.size(); ++i) {
            int p = g.qubits[0];
            while (p != g.qubits[i] && !cm.adjacent(p, g.qubits[i])) {
                p = cm.next_hop(p, g.qubits[i]);
                closure.insert(p);
            }
        }
        if (opt.bridge_policy == BridgePolicy::reject &&
            closure.size() != g.qubits.size())
            throw std::invalid_argument(
                "greedy_partition: bridging gate " + gate_span_str(g) +
                " spans non-adjacent qubits (bridge policy: reject)");
        flush_touching(closure);
        out.push_back(
            one_gate_block(std::vector<int>(closure.begin(), closure.end()), g));
    }
    for (std::size_t gi = 0; gi < groups.size(); ++gi) flush(gi);
    return out;
}

linalg::Matrix block_unitary(const CircuitBlock& b) { return circuit::circuit_unitary(b.body); }

Circuit blocks_to_circuit(const std::vector<CircuitBlock>& blocks, int num_qubits) {
    Circuit c(num_qubits);
    for (const CircuitBlock& b : blocks) c.append_mapped(b.body, b.qubits);
    return c;
}

} // namespace epoc::partition
