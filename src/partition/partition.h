// Greedy circuit partitioning (paper Algorithm 1).
//
// Horizontal cut: qubits are grouped by interaction-graph connectivity up to
// a group-size limit. Vertical cut: gates are filled into the open block of
// their group, in program order, until a gate-count limit is reached. A gate
// spanning two groups closes both groups' open blocks and is emitted as its
// own bridging block, preserving execution order exactly: replaying the block
// list in order reproduces the original circuit.
//
// Topology-aware mode (opt.coupling != nullptr): every emitted block's qubit
// set induces a connected subgraph of the device coupling map, so each block
// is physically realizable. Groups only grow along coupling edges, and
// cross-group bridging gates between non-adjacent qubits are handled per
// BridgePolicy — routed via the coupling map's shortest paths (SWAP-walk
// bridge blocks that restore the layout afterwards, keeping the block list
// unitary-equivalent to the input) or rejected with an error.
#pragma once

#include "circuit/circuit.h"
#include "circuit/routing.h"

#include <vector>

namespace epoc::partition {

/// What to do with a bridging gate whose operands are not adjacent on the
/// coupling map (topology-aware mode only).
enum class BridgePolicy {
    route, ///< SWAP-walk the operands together along shortest paths
    reject ///< throw std::invalid_argument naming the infeasible gate
};

struct PartitionOptions {
    /// Maximum number of qubits per group (paper uses up to 8; our QOC-bound
    /// benches use 2-4 so GRAPE matrices stay small on one core).
    int max_qubits = 3;
    /// Maximum number of gates per block before a vertical cut.
    int max_gates = 24;
    /// Device coupling map for topology-aware partitioning; nullptr (the
    /// default) keeps the topology-unconstrained behaviour. Not owned; must
    /// outlive the call. The circuit must not be wider than the map.
    const circuit::CouplingMap* coupling = nullptr;
    /// Feasibility policy for non-adjacent bridging gates (coupling set only).
    BridgePolicy bridge_policy = BridgePolicy::route;
};

struct CircuitBlock {
    /// Global qubit ids, sorted ascending; local qubit i of `body` is
    /// qubits[i].
    std::vector<int> qubits;
    /// The block's gates over local qubit indices.
    circuit::Circuit body;
    /// True if this block is a single cross-group bridging gate (or one of
    /// the SWAP-walk blocks routing such a gate in topology-aware mode).
    bool bridge = false;
};

/// Partition `c`. Blocks come back in a valid execution order.
std::vector<CircuitBlock> greedy_partition(const circuit::Circuit& c,
                                           const PartitionOptions& opt = {});

/// The horizontal cut on its own (paper Algorithm 1, GroupQubits). With a
/// coupling map, groups only grow along its edges (connected subgraphs).
std::vector<std::vector<int>> group_qubits(const circuit::Circuit& c, int max_qubits,
                                           const circuit::CouplingMap* coupling = nullptr);

/// Unitary of one block (dimension 2^|qubits|).
linalg::Matrix block_unitary(const CircuitBlock& b);

/// Reassemble the block list into a flat circuit over `num_qubits` qubits
/// (used by tests to prove the partition preserves the program).
circuit::Circuit blocks_to_circuit(const std::vector<CircuitBlock>& blocks,
                                   int num_qubits);

} // namespace epoc::partition
