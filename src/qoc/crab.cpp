#include "qoc/crab.h"

#include "linalg/expm.h"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace epoc::qoc {

namespace {

using linalg::cplx;

cplx overlap(const Matrix& a, const Matrix& b) {
    cplx w{0.0, 0.0};
    const std::size_t n = a.rows() * a.cols();
    const cplx* pa = a.data();
    const cplx* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) w += std::conj(pa[i]) * pb[i];
    return w;
}

} // namespace

Pulse crab_optimize(const BlockHamiltonian& h, const Matrix& target, int num_slots,
                    const CrabOptions& opt) {
    const std::size_t dim = h.drift.rows();
    if (target.rows() != dim || target.cols() != dim)
        throw std::invalid_argument("crab_optimize: target dimension mismatch");
    if (num_slots < 1) throw std::invalid_argument("crab_optimize: num_slots < 1");

    const std::size_t nc = h.controls.size();
    const std::size_t ns = static_cast<std::size_t>(num_slots);
    const double d = static_cast<double>(dim);
    const double total_t = static_cast<double>(num_slots) * h.dt;

    // Basis: DC term + num_modes randomized harmonics (sin & cos each).
    const std::size_t nb = 1 + 2 * static_cast<std::size_t>(opt.num_modes);
    std::mt19937_64 rng(opt.seed);
    std::uniform_real_distribution<double> jitter(-opt.frequency_jitter,
                                                  opt.frequency_jitter);
    std::vector<double> freqs(static_cast<std::size_t>(opt.num_modes));
    for (std::size_t k = 0; k < freqs.size(); ++k)
        freqs[k] = 2.0 * std::numbers::pi * (static_cast<double>(k + 1) + jitter(rng)) /
                   total_t;

    // basis[b][s]: value of basis function b at slot midpoint s.
    std::vector<std::vector<double>> basis(nb, std::vector<double>(ns));
    for (std::size_t s = 0; s < ns; ++s) {
        const double t = (static_cast<double>(s) + 0.5) * h.dt;
        basis[0][s] = 1.0;
        for (std::size_t k = 0; k < freqs.size(); ++k) {
            basis[1 + 2 * k][s] = std::sin(freqs[k] * t);
            basis[2 + 2 * k][s] = std::cos(freqs[k] * t);
        }
    }

    // Coefficients x[j*nb + b], small random init.
    std::vector<double> x(nc * nb);
    std::normal_distribution<double> gauss(0.0, 0.2);
    for (double& v : x) v = gauss(rng);

    // Adam state.
    std::vector<double> m(x.size(), 0.0), v2(x.size(), 0.0);
    constexpr double b1 = 0.9, b2c = 0.999, eps = 1e-8;

    std::vector<std::vector<double>> amps(nc, std::vector<double>(ns));
    std::vector<std::vector<double>> squash(nc, std::vector<double>(ns));
    std::vector<Matrix> slot_u(ns), fwd(ns + 1), bwd(ns + 1);

    Pulse best;
    best.dt = h.dt;
    best.amplitudes.assign(nc, std::vector<double>(ns, 0.0));
    double best_f = -1.0;

    for (int it = 1; it <= opt.max_iterations; ++it) {
        // Materialize amplitudes u = bound * tanh(z).
        for (std::size_t j = 0; j < nc; ++j)
            for (std::size_t s = 0; s < ns; ++s) {
                double z = 0.0;
                for (std::size_t b = 0; b < nb; ++b) z += x[j * nb + b] * basis[b][s];
                const double th = std::tanh(z);
                amps[j][s] = h.controls[j].bound * th;
                squash[j][s] = h.controls[j].bound * (1.0 - th * th);
            }

        fwd[0] = Matrix::identity(dim);
        for (std::size_t s = 0; s < ns; ++s) {
            Matrix hk = h.drift;
            for (std::size_t j = 0; j < nc; ++j) {
                Matrix term = h.controls[j].h;
                term *= cplx{amps[j][s], 0.0};
                hk += term;
            }
            slot_u[s] = linalg::exp_i(hk, h.dt);
            fwd[s + 1] = slot_u[s] * fwd[s];
        }
        bwd[ns] = Matrix::identity(dim);
        for (std::size_t s = ns; s-- > 0;) bwd[s] = bwd[s + 1] * slot_u[s];

        const cplx w = overlap(target, fwd[ns]);
        const double fidelity = std::abs(w) / d;
        if (fidelity > best_f) {
            best_f = fidelity;
            best.amplitudes = amps;
            best.fidelity = fidelity;
            best.grape_iterations = it;
        }
        if (fidelity >= opt.target_fidelity) break;
        const cplx wbar = (std::abs(w) > 1e-15) ? std::conj(w) / std::abs(w) : cplx{1.0, 0.0};

        // dF/du_js first (as in GRAPE), then chain rule into coefficients.
        std::vector<double> grad(x.size(), 0.0);
        for (std::size_t s = 0; s < ns; ++s) {
            for (std::size_t j = 0; j < nc; ++j) {
                const Matrix du = bwd[s + 1] * (h.controls[j].h * fwd[s + 1]);
                cplx dw = overlap(target, du);
                dw *= cplx{0.0, -h.dt};
                const double dfid_du = std::real(wbar * dw) / d;
                const double common = -dfid_du * squash[j][s]; // minimize -F
                for (std::size_t b = 0; b < nb; ++b)
                    grad[j * nb + b] += common * basis[b][s];
            }
        }

        const double b1t = 1.0 - std::pow(b1, it);
        const double b2t = 1.0 - std::pow(b2c, it);
        for (std::size_t i = 0; i < x.size(); ++i) {
            m[i] = b1 * m[i] + (1 - b1) * grad[i];
            v2[i] = b2c * v2[i] + (1 - b2c) * grad[i] * grad[i];
            x[i] -= opt.learning_rate * (m[i] / b1t) / (std::sqrt(v2[i] / b2t) + eps);
        }
    }
    return best;
}

} // namespace epoc::qoc
