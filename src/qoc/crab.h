// CRAB: Chopped RAndom Basis quantum optimal control (Caneva, Calarco &
// Montangero 2011), the second optimizer the paper names next to GRAPE.
//
// Instead of optimizing every time slot independently, each control line is
// expanded in a small randomized Fourier basis
//     u_j(t) = bound_j * tanh( sum_k  a_jk sin(w_k t) + b_jk cos(w_k t) )
// and the (few) coefficients are optimized directly. The tanh squashing
// enforces the amplitude bounds smoothly. Gradients are obtained by the
// chain rule through the same first-order propagator derivatives GRAPE uses,
// so both optimizers share the Hamiltonian model and the latency search.
#pragma once

#include "qoc/hamiltonian.h"
#include "qoc/pulse.h"

#include <cstdint>

namespace epoc::qoc {

struct CrabOptions {
    int num_modes = 5;          ///< Fourier modes per control line
    int max_iterations = 300;
    double learning_rate = 0.08;
    double target_fidelity = 0.999;
    std::uint64_t seed = 1;
    /// Randomization half-width of the mode frequencies around the principal
    /// harmonics (the "chopped random" part of CRAB).
    double frequency_jitter = 0.25;
};

/// Optimize a CRAB pulse of `num_slots` slots toward `target`; returns the
/// discretized piecewise-constant pulse (same representation as GRAPE, so the
/// pulse library and scheduler are agnostic to the optimizer).
Pulse crab_optimize(const BlockHamiltonian& h, const Matrix& target, int num_slots,
                    const CrabOptions& opt = {});

} // namespace epoc::qoc
