#include "qoc/decoherence.h"

#include <cmath>
#include <stdexcept>

namespace epoc::qoc {

double coherence_factor(double duration_ns, const DecoherenceParams& p) {
    if (p.t1_ns <= 0.0 || p.t2_ns <= 0.0)
        throw std::invalid_argument("coherence_factor: T1/T2 must be positive");
    const double inv_tphi = std::max(0.0, 1.0 / p.t2_ns - 0.5 / p.t1_ns);
    return std::exp(-duration_ns / p.t1_ns) * std::exp(-duration_ns * inv_tphi);
}

double esp_with_decoherence(const core::PulseSchedule& schedule,
                            const DecoherenceParams& p) {
    double esp = schedule.esp;
    const double per_qubit = coherence_factor(schedule.latency, p);
    for (int q = 0; q < schedule.num_qubits; ++q) esp *= per_qubit;
    return esp;
}

} // namespace epoc::qoc
