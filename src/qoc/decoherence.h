// Decoherence model: converts schedule latency into a fidelity penalty.
//
// The paper's motivation (Section 1) is that coherence time bounds the
// executable circuit duration; shorter pulse schedules therefore survive
// better on hardware. This model applies the standard exponential envelope:
// a qubit idling or driven for time t retains coherence
//     exp(-t / T1) * exp(-t / Tphi),  1/Tphi = 1/T2 - 1/(2 T1),
// approximated per qubit over the full schedule latency. Combined with the
// per-pulse control error (ESP, Eq. 3) this gives an end-to-end success
// estimate that rewards the latency reductions EPOC achieves.
#pragma once

#include "epoc/scheduler.h"

namespace epoc::qoc {

struct DecoherenceParams {
    double t1_ns = 120000.0; ///< amplitude damping time (120 us, IBM-class)
    double t2_ns = 90000.0;  ///< dephasing time
};

/// Coherence retention of one qubit over `duration_ns`.
double coherence_factor(double duration_ns, const DecoherenceParams& p = {});

/// ESP including decoherence: schedule.esp * prod_q coherence(latency).
double esp_with_decoherence(const core::PulseSchedule& schedule,
                            const DecoherenceParams& p = {});

} // namespace epoc::qoc
