#include "qoc/grape.h"

#include "linalg/expm.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace epoc::qoc {

namespace {

using linalg::cplx;

cplx overlap(const Matrix& a, const Matrix& b) {
    cplx w{0.0, 0.0};
    const std::size_t n = a.rows() * a.cols();
    const cplx* pa = a.data();
    const cplx* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) w += std::conj(pa[i]) * pb[i];
    return w;
}

} // namespace

Matrix pulse_unitary(const BlockHamiltonian& h, const Pulse& p) {
    const std::size_t dim = h.drift.rows();
    Matrix u = Matrix::identity(dim);
    for (int k = 0; k < p.num_slots(); ++k) {
        Matrix hk = h.drift;
        for (std::size_t j = 0; j < h.controls.size(); ++j) {
            Matrix term = h.controls[j].h;
            term *= cplx{p.amplitudes[j][static_cast<std::size_t>(k)], 0.0};
            hk += term;
        }
        u = linalg::exp_i(hk, p.dt) * u;
    }
    return u;
}

Pulse grape_optimize(const BlockHamiltonian& h, const Matrix& target, int num_slots,
                     const GrapeOptions& opt) {
    const std::size_t dim = h.drift.rows();
    if (target.rows() != dim || target.cols() != dim)
        throw std::invalid_argument("grape_optimize: target dimension mismatch");
    if (num_slots < 1) throw std::invalid_argument("grape_optimize: num_slots < 1");

    const std::size_t nc = h.controls.size();
    const std::size_t ns = static_cast<std::size_t>(num_slots);
    const double d = static_cast<double>(dim);

    Pulse p;
    p.dt = h.dt;
    p.amplitudes.assign(nc, std::vector<double>(ns, 0.0));

    std::mt19937_64 rng(opt.seed);
    std::uniform_real_distribution<double> uni(-1.0, 1.0);
    // A warm start must match the control count exactly (slot counts may
    // differ; they are resampled). With no controls there is nothing to seed:
    // the historical `warm_amplitudes.front()` probe was UB for nc == 0.
    const bool warm_requested = !opt.warm_amplitudes.empty();
    const bool warm_usable = warm_requested && nc > 0 && opt.warm_amplitudes.size() == nc &&
                             !opt.warm_amplitudes.front().empty();
    p.warm_start_applied = warm_usable;
    p.warm_start_mismatch = warm_requested && !warm_usable;
    if (warm_usable) {
        // Nearest-slot resample of the warm-start pulse.
        const std::size_t wn = opt.warm_amplitudes.front().size();
        for (std::size_t j = 0; j < nc; ++j)
            for (std::size_t k = 0; k < ns; ++k) {
                const std::size_t src = std::min(wn - 1, k * wn / ns);
                p.amplitudes[j][k] =
                    std::clamp(opt.warm_amplitudes[j][src], -h.controls[j].bound,
                               h.controls[j].bound);
            }
    } else {
        for (std::size_t j = 0; j < nc; ++j)
            for (std::size_t k = 0; k < ns; ++k)
                p.amplitudes[j][k] = opt.init_scale * h.controls[j].bound * uni(rng);
    }

    // Adam state.
    std::vector<std::vector<double>> m(nc, std::vector<double>(ns, 0.0));
    std::vector<std::vector<double>> v(nc, std::vector<double>(ns, 0.0));
    constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;

    std::vector<Matrix> slot_u(ns);
    std::vector<Matrix> fwd(ns + 1);  // fwd[k] = U_k ... U_1
    std::vector<Matrix> bwd(ns + 1);  // bwd[k] = U_ns ... U_{k+1}

    auto best = p;
    double best_f = -1.0;
    int reseeds = 0;

    for (int it = 1; it <= opt.max_iterations; ++it) {
        // Cooperative deadline: return the best finite iterate so far rather
        // than throwing; the caller sees Pulse::timed_out and degrades.
        if (util::deadline_expired(opt.deadline)) {
            best.timed_out = true;
            break;
        }
        // Forward pass.
        fwd[0] = Matrix::identity(dim);
        for (std::size_t k = 0; k < ns; ++k) {
            Matrix hk = h.drift;
            for (std::size_t j = 0; j < nc; ++j) {
                Matrix term = h.controls[j].h;
                term *= cplx{p.amplitudes[j][k], 0.0};
                hk += term;
            }
            slot_u[k] = linalg::exp_i(hk, p.dt);
            fwd[k + 1] = slot_u[k] * fwd[k];
        }
        bwd[ns] = Matrix::identity(dim);
        for (std::size_t k = ns; k-- > 0;) bwd[k] = bwd[k + 1] * slot_u[k];

        const cplx w = overlap(target, fwd[ns]);
        double fidelity = std::abs(w) / d;
        if (util::fault::maybe_fail("grape.nonfinite"))
            fidelity = std::numeric_limits<double>::quiet_NaN();
        if (!std::isfinite(fidelity)) {
            // The iterate is poisoned (and the gradients below would be too):
            // re-randomize from a derived seed and restart with a fresh
            // optimizer state, bounded by nonfinite_retries. `best` still
            // holds the last finite iterate, so even the give-up path returns
            // valid amplitudes.
            if (reseeds >= opt.nonfinite_retries) {
                best.nonfinite_aborted = true;
                break;
            }
            ++reseeds;
            std::mt19937_64 rr(opt.seed ^ (0x9e3779b97f4a7c15ULL *
                                           static_cast<std::uint64_t>(reseeds)));
            for (std::size_t j = 0; j < nc; ++j)
                for (std::size_t k = 0; k < ns; ++k)
                    p.amplitudes[j][k] = opt.init_scale * h.controls[j].bound * uni(rr);
            for (std::size_t j = 0; j < nc; ++j) {
                std::fill(m[j].begin(), m[j].end(), 0.0);
                std::fill(v[j].begin(), v[j].end(), 0.0);
            }
            it = 0; // restart the iteration budget (the for-loop increments)
            continue;
        }
        if (fidelity > best_f) {
            best_f = fidelity;
            best = p;
            best.fidelity = fidelity;
            best.grape_iterations = it;
        }
        if (fidelity >= opt.target_fidelity) break;
        const cplx wbar = (std::abs(w) > 1e-15) ? std::conj(w) / std::abs(w) : cplx{1.0, 0.0};

        // Gradient of cost = -fidelity (we maximize fidelity).
        const double b1t = 1.0 - std::pow(b1, it);
        const double b2t = 1.0 - std::pow(b2, it);
        for (std::size_t k = 0; k < ns; ++k) {
            // dU/du_jk ~ bwd[k+1] * (-i dt H_j U_k) * fwd[k]
            //          = bwd[k+1] * (-i dt H_j) * fwd[k+1]  (first order).
            for (std::size_t j = 0; j < nc; ++j) {
                const Matrix du = bwd[k + 1] * (h.controls[j].h * fwd[k + 1]);
                cplx dw = overlap(target, du);
                dw *= cplx{0.0, -p.dt};
                const double dfid = std::real(wbar * dw) / d;
                const double grad = -dfid; // minimize -fidelity
                m[j][k] = b1 * m[j][k] + (1 - b1) * grad;
                v[j][k] = b2 * v[j][k] + (1 - b2) * grad * grad;
                const double step =
                    opt.learning_rate * (m[j][k] / b1t) / (std::sqrt(v[j][k] / b2t) + eps);
                const double bound = h.controls[j].bound;
                p.amplitudes[j][k] = std::clamp(p.amplitudes[j][k] - step, -bound, bound);
            }
        }
    }
    best.nonfinite_reseeds = reseeds;
    if (best.warm_start_applied && !best.timed_out && !best.nonfinite_aborted &&
        best_f >= 0.0 && best_f < opt.target_fidelity) {
        // Cold rescue: a warm start is a hint, not a contract. When the
        // seeded trajectory stalls below the target (a too-different warm
        // pulse can park the optimizer in its donor's basin), re-run from the
        // ordinary random init and keep the better pulse — so warm starting
        // can reduce iterations but never degrade the fidelity a cold run
        // would have reached. The rescue winner reports itself cold
        // (warm_start_applied=false), which also keeps it eligible for the
        // persistent store.
        GrapeOptions cold = opt;
        cold.warm_amplitudes.clear();
        Pulse rescued = grape_optimize(h, target, num_slots, cold);
        // Bill the rescue's work to whichever pulse ships: iteration counts
        // feed the qoc.grape_iterations accounting.
        rescued.grape_iterations += best.grape_iterations;
        if (rescued.fidelity > best.fidelity) return rescued;
        best.grape_iterations = rescued.grape_iterations;
        best.timed_out = best.timed_out || rescued.timed_out;
        return best;
    }
    if (best_f < 0.0) {
        // No iterate was ever scored: the deadline expired before the first
        // forward pass, or every pass went non-finite within the retry
        // budget. `best` still holds its initial amplitudes whose fidelity
        // field is the default 0.0 — a number with no relation to the
        // amplitudes' physics. The contract (which the verify layer audits)
        // is that the returned fidelity always corresponds to the returned
        // amplitudes, so score them here with the same overlap formula the
        // optimizer uses.
        const double f = std::abs(overlap(target, pulse_unitary(h, best))) / d;
        best.fidelity = std::isfinite(f) ? f : 0.0;
    }
    return best;
}

} // namespace epoc::qoc
