// GRAPE: GRadient Ascent Pulse Engineering (Khaneja et al. 2005).
//
// Optimizes piecewise-constant control amplitudes so the time-ordered product
// of slot propagators exp(-i*(H0 + sum_j u_jk H_j)*dt) matches a target
// unitary. First-order gradients with forward/backward propagator caching;
// Adam-style updates projected onto the amplitude bounds.
#pragma once

#include "qoc/hamiltonian.h"
#include "qoc/pulse.h"
#include "util/deadline.h"

#include <cstdint>

namespace epoc::qoc {

struct GrapeOptions {
    int max_iterations = 200;
    double learning_rate = 0.003;
    /// Stop when fidelity reaches this.
    double target_fidelity = 0.999;
    std::uint64_t seed = 1;
    /// Initial amplitude scale relative to each line's bound.
    double init_scale = 0.3;
    /// If the fidelity goes non-finite (exploding gradients, a poisoned
    /// Hamiltonian, an injected fault), re-randomize the amplitudes from a
    /// derived seed and restart, at most this many times; past the budget the
    /// optimizer returns its best finite iterate with
    /// Pulse::nonfinite_aborted set.
    int nonfinite_retries = 2;
    /// Optional compile deadline (non-owning; excluded from cache keys).
    /// Polled once per iteration: on expiry the optimizer returns best-so-far
    /// with Pulse::timed_out set instead of throwing.
    const util::Deadline* deadline = nullptr;
    /// Warm start (AccQOC's MST technique): amplitudes of a similar unitary's
    /// pulse, resampled to the requested slot count when lengths differ.
    /// Empty disables warm starting. The outer size must equal the
    /// Hamiltonian's control count; a mismatched shape falls back to a cold
    /// start and is reported via Pulse::warm_start_mismatch. A warm-seeded
    /// run that converges below target_fidelity (without timing out) is
    /// automatically re-run cold and the better pulse wins, so a bad seed can
    /// cost iterations but never fidelity.
    std::vector<std::vector<double>> warm_amplitudes;
};

/// Optimize a pulse of `num_slots` slots toward `target`. The target's
/// dimension must match the Hamiltonian's.
Pulse grape_optimize(const BlockHamiltonian& h, const Matrix& target, int num_slots,
                     const GrapeOptions& opt = {});

/// Propagate a pulse through the Hamiltonian: the realised unitary.
Matrix pulse_unitary(const BlockHamiltonian& h, const Pulse& p);

} // namespace epoc::qoc
