#include "qoc/hamiltonian.h"

#include "circuit/gate.h"
#include "circuit/unitary.h"
#include "qoc/pulse_io.h"

#include <stdexcept>

namespace epoc::qoc {

BlockHamiltonian make_block_hamiltonian(int num_qubits, const DeviceParams& dev) {
    if (num_qubits < 1) throw std::invalid_argument("make_block_hamiltonian: nq < 1");
    BlockHamiltonian h;
    h.num_qubits = num_qubits;
    h.dt = dev.dt;
    const std::size_t dim = std::size_t{1} << num_qubits;

    const Matrix sx = circuit::pauli_x();
    const Matrix sy = circuit::pauli_y();
    const Matrix sz = circuit::pauli_z();

    // Drift: weak always-on ZZ between every pair in the block.
    h.drift = Matrix(dim, dim);
    for (int a = 0; a < num_qubits; ++a) {
        for (int b = a + 1; b < num_qubits; ++b) {
            Matrix zz = circuit::embed_gate(sz, {a}, num_qubits) *
                        circuit::embed_gate(sz, {b}, num_qubits);
            zz *= linalg::cplx{dev.zz_drift, 0.0};
            h.drift += zz;
        }
    }

    for (int q = 0; q < num_qubits; ++q) {
        h.controls.push_back({"x" + std::to_string(q),
                              circuit::embed_gate(sx, {q}, num_qubits), dev.drive_bound});
        h.controls.push_back({"y" + std::to_string(q),
                              circuit::embed_gate(sy, {q}, num_qubits), dev.drive_bound});
    }
    for (int a = 0; a < num_qubits; ++a)
        for (int b = a + 1; b < num_qubits; ++b)
            h.controls.push_back(
                {"xx" + std::to_string(a) + "_" + std::to_string(b),
                 circuit::embed_gate(sx, {a}, num_qubits) *
                     circuit::embed_gate(sx, {b}, num_qubits),
                 dev.coupling_bound});
    h.variant = "zz:" + exact_double(dev.zz_drift);
    return h;
}

} // namespace epoc::qoc
