// Control Hamiltonian model for a block of transmon-style qubits.
//
// Works in the rotating frame: each qubit has X and Y drive lines and every
// qubit pair inside a block shares an XX entangling line (tunable coupler).
// A weak always-on ZZ drift models residual coupling. Amplitude bounds set
// the physical speed limit that the minimal-latency search (latency_search.h)
// discovers. Units: time in ns, amplitudes in rad/ns.
#pragma once

#include "linalg/matrix.h"

#include <string>
#include <vector>

namespace epoc::qoc {

using linalg::Matrix;

struct DeviceParams {
    /// Max |amplitude| of single-qubit X/Y drives [rad/ns]. 0.157 rad/ns
    /// (2*pi*25 MHz) gives a ~20 ns pi-pulse, typical of IBM backends.
    double drive_bound = 0.157;
    /// Max |amplitude| of the two-qubit XX coupler [rad/ns]; weaker than the
    /// drive, making entangling pulses the latency bottleneck, as on hardware.
    double coupling_bound = 0.020;
    /// Always-on ZZ drift strength [rad/ns].
    double zz_drift = 0.002;
    /// GRAPE time-slot width [ns].
    double dt = 2.0;
};

/// One control line: a label, its Hamiltonian term, and its amplitude bound.
struct ControlLine {
    std::string label;
    Matrix h;
    double bound;
};

/// The block Hamiltonian: drift + control lines for `num_qubits` qubits.
struct BlockHamiltonian {
    int num_qubits = 1;
    Matrix drift;
    std::vector<ControlLine> controls;
    /// GRAPE slot width copied from DeviceParams [ns].
    double dt = 2.0;
    /// Drift/model fingerprint for cache keying. Control labels and bounds
    /// alone do not pin down the drift (e.g. two devices differing only in
    /// zz_drift share every control line), so builders record the remaining
    /// model parameters here — exact_double-encoded, never decimal-formatted.
    std::string variant;
};

/// Build the model for a block of n qubits (n >= 1).
BlockHamiltonian make_block_hamiltonian(int num_qubits, const DeviceParams& dev = {});

} // namespace epoc::qoc
