#include "qoc/latency_search.h"

namespace epoc::qoc {

LatencyResult find_minimal_latency_pulse(const BlockHamiltonian& h, const Matrix& target,
                                         const LatencySearchOptions& opt) {
    LatencyResult res;
    const int gran = std::max(1, opt.slot_granularity);
    const auto round_up = [gran](int slots) { return ((slots + gran - 1) / gran) * gran; };

    const auto attempt = [&](int slots) {
        ++res.grape_runs;
        GrapeOptions g = opt.grape;
        // Decorrelate restarts across durations while staying deterministic.
        g.seed = opt.grape.seed * 1315423911u + static_cast<std::uint64_t>(slots);
        g.target_fidelity = opt.fidelity_threshold;
        return grape_optimize(h, target, slots, g);
    };

    // Doubling phase: bracket the feasible region. All probed slot counts are
    // multiples of the granularity.
    int lo = round_up(std::max(1, opt.min_slots));
    int hi = lo;
    Pulse hi_pulse = attempt(hi);
    while (hi_pulse.fidelity < opt.fidelity_threshold && hi < opt.max_slots) {
        lo = hi + gran;
        hi = std::min(round_up(opt.max_slots), hi * 2);
        hi_pulse = attempt(hi);
    }
    if (hi_pulse.fidelity < opt.fidelity_threshold) {
        res.pulse = hi_pulse;
        res.feasible = false;
        return res;
    }

    // Binary search over granularity units in [lo, hi].
    Pulse best = hi_pulse;
    int klo = (lo + gran - 1) / gran;
    int khi = hi / gran;
    while (klo < khi) {
        const int kmid = klo + (khi - klo) / 2;
        const Pulse p = attempt(kmid * gran);
        if (p.fidelity >= opt.fidelity_threshold) {
            best = p;
            khi = kmid;
        } else {
            klo = kmid + 1;
        }
    }
    res.pulse = best;
    return res;
}

} // namespace epoc::qoc
