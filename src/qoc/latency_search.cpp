#include "qoc/latency_search.h"

#include "util/fault_injection.h"

#include <algorithm>

namespace epoc::qoc {

LatencyResult find_minimal_latency_pulse(const BlockHamiltonian& h, const Matrix& target,
                                         const LatencySearchOptions& opt) {
    LatencyResult res;
    const int gran = std::max(1, opt.slot_granularity);
    const auto round_up = [gran](int slots) { return ((slots + gran - 1) / gran) * gran; };

    // Effective cap: the largest multiple of the granularity that still
    // respects max_slots. Rounding the cap *up* (the historical behaviour)
    // probed up to granularity-1 slots beyond the configured budget. When
    // max_slots < granularity no multiple fits; the search then probes
    // exactly one granularity unit — the smallest representable pulse — and
    // reports infeasible if that misses the threshold.
    const int cap = std::max(gran, (std::max(1, opt.max_slots) / gran) * gran);

    const auto attempt = [&](int slots) {
        ++res.grape_runs;
        GrapeOptions g = opt.grape;
        // Decorrelate restarts across durations while staying deterministic.
        g.seed = opt.grape.seed * 1315423911u + static_cast<std::uint64_t>(slots);
        g.target_fidelity = opt.fidelity_threshold;
        g.deadline = opt.deadline;
        Pulse p = grape_optimize(h, target, slots, g);
        res.timed_out = res.timed_out || p.timed_out;
        return p;
    };

    // Doubling phase: bracket the feasible region. All probed slot counts are
    // multiples of the granularity, clamped to the cap.
    int lo = std::min(cap, round_up(std::max(1, opt.min_slots)));
    int hi = lo;
    Pulse hi_pulse = attempt(hi);
    if (util::fault::maybe_fail("latency.infeasible")) {
        // Forced-infeasible site: ship the first probe flagged infeasible so
        // the pipeline's degradation ladder is exercised end to end.
        res.pulse = std::move(hi_pulse);
        res.feasible = false;
        res.injected = true;
        return res;
    }
    while (hi_pulse.fidelity < opt.fidelity_threshold && hi < cap) {
        if (util::deadline_expired(opt.deadline)) {
            res.timed_out = true;
            break;
        }
        lo = hi + gran;
        hi = std::min(cap, hi * 2);
        hi_pulse = attempt(hi);
    }
    if (hi_pulse.fidelity < opt.fidelity_threshold) {
        res.pulse = hi_pulse;
        res.feasible = false;
        return res;
    }

    // Binary search over granularity units in [lo, hi]. A deadline expiry
    // here keeps the feasible-but-unrefined bracket endpoint: still a valid,
    // above-threshold pulse, just not the minimal one.
    Pulse best = hi_pulse;
    int klo = (lo + gran - 1) / gran;
    int khi = hi / gran;
    while (klo < khi) {
        if (util::deadline_expired(opt.deadline)) {
            res.timed_out = true;
            break;
        }
        const int kmid = klo + (khi - klo) / 2;
        const Pulse p = attempt(kmid * gran);
        if (p.fidelity >= opt.fidelity_threshold) {
            best = p;
            khi = kmid;
        } else {
            klo = kmid + 1;
        }
    }
    res.pulse = best;
    if (util::fault::maybe_fail("latency.badpulse")) {
        // Silent-corruption site: zero the amplitudes but keep the recorded
        // fidelity and every status flag. Unlike the other sites, `injected`
        // is deliberately NOT set — the result still looks authoritative, so
        // checksums, cache keying, and the degradation ladder all wave it
        // through. Only re-simulation (the verify layer's schedule audit and
        // store revalidation) can catch it; this site exists to prove that
        // it does.
        for (auto& line : res.pulse.amplitudes)
            std::fill(line.begin(), line.end(), 0.0);
    }
    return res;
}

} // namespace epoc::qoc
