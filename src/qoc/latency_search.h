// Minimal-latency pulse search (the AccQOC binary-search technique the paper
// builds on): find the smallest number of GRAPE time slots whose optimized
// pulse reaches a fidelity threshold. Doubling phase to bracket, then binary
// search inside the bracket.
#pragma once

#include "qoc/grape.h"

namespace epoc::qoc {

struct LatencySearchOptions {
    double fidelity_threshold = 0.995;
    int min_slots = 1;
    /// Upper bound on probed slot counts. The search only probes multiples of
    /// `slot_granularity`, so the effective cap is the largest such multiple
    /// <= max_slots; when max_slots < slot_granularity the single smallest
    /// representable count (one granularity unit) is probed instead.
    int max_slots = 512;
    /// Slot-count resolution of the search. Coarser granularity (e.g. 4 for
    /// 4-qubit blocks) trades a few ns of pulse length for far fewer GRAPE
    /// runs.
    int slot_granularity = 1;
    /// Optional compile deadline (non-owning; excluded from pulse-library
    /// cache keys and propagated into each GRAPE run). On expiry the search
    /// returns its best bracket so far — possibly feasible but not minimal —
    /// with `timed_out` set, instead of throwing.
    const util::Deadline* deadline = nullptr;
    GrapeOptions grape;
};

struct LatencyResult {
    Pulse pulse;          ///< the shortest pulse meeting the threshold
    int grape_runs = 0;   ///< how many GRAPE optimizations the search used
    bool feasible = true; ///< false if even max_slots failed the threshold
    /// The compile deadline expired mid-search (or inside one of its GRAPE
    /// runs): the pulse is best-effort, not the minimal-latency answer.
    bool timed_out = false;
    /// A fault-injection site forced this outcome (tests/chaos runs).
    bool injected = false;

    /// Degraded results (timed-out, injected, or non-finite-aborted) must not
    /// be cached as authoritative: the pulse library evicts them so a later
    /// compile with more slack re-attempts. A genuinely infeasible search
    /// under no deadline is deterministic and stays cacheable — its
    /// `feasible == false` flag travels with the entry.
    bool authoritative() const {
        return !timed_out && !injected && !pulse.nonfinite_aborted;
    }
};

LatencyResult find_minimal_latency_pulse(const BlockHamiltonian& h, const Matrix& target,
                                         const LatencySearchOptions& opt = {});

} // namespace epoc::qoc
