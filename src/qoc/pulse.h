// Piecewise-constant pulse representation produced by GRAPE.
#pragma once

#include "linalg/matrix.h"

#include <vector>

namespace epoc::qoc {

struct Pulse {
    /// amplitudes[j][k]: control line j, time slot k [rad/ns].
    std::vector<std::vector<double>> amplitudes;
    double dt = 2.0;          ///< slot width [ns]
    double fidelity = 0.0;    ///< |tr(U_target^dag U_pulse)| / d
    int grape_iterations = 0;
    /// True if GRAPE seeded this pulse from GrapeOptions::warm_amplitudes.
    bool warm_start_applied = false;
    /// True if a warm start was requested but its shape did not match the
    /// Hamiltonian's control count — the optimizer fell back to a cold start
    /// instead of silently dropping the request (see grape_optimize).
    bool warm_start_mismatch = false;
    /// True if GrapeOptions::deadline expired mid-optimization: the pulse is
    /// the best iterate found before the budget ran out, not a converged one.
    bool timed_out = false;
    /// How many times the optimizer re-randomized its amplitudes after the
    /// fidelity went non-finite (NaN/inf gradients), and whether it gave up
    /// after the retry budget — the returned amplitudes are always the last
    /// finite best-so-far, never the poisoned iterate.
    int nonfinite_reseeds = 0;
    bool nonfinite_aborted = false;

    int num_slots() const {
        return amplitudes.empty() ? 0 : static_cast<int>(amplitudes.front().size());
    }
    double duration() const { return num_slots() * dt; }
};

} // namespace epoc::qoc
