#include "qoc/pulse_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace epoc::qoc {

namespace {

/// Upper bounds on decoded vector lengths: far beyond anything the pipeline
/// produces (max_slots defaults to 512; control counts are O(qubits^2) for
/// dimension <= 2^8 blocks), but small enough that a corrupt length field can
/// never turn into a multi-gigabyte allocation.
constexpr std::uint32_t kMaxControlLines = 1u << 16;
constexpr std::uint32_t kMaxSlots = 1u << 24;

std::uint64_t double_bits(double x) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(x));
    std::memcpy(&b, &x, sizeof(b));
    return b;
}

double bits_double(std::uint64_t b) {
    double x;
    std::memcpy(&x, &b, sizeof(x));
    return x;
}

} // namespace

std::string exact_double(double x) {
    static const char* hex = "0123456789abcdef";
    const std::uint64_t b = double_bits(x);
    std::string s(16, '0');
    for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] = hex[(b >> (60 - 4 * i)) & 0xf];
    return s;
}

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t state) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        state ^= p[i];
        state *= 1099511628211ULL;
    }
    return state;
}

std::uint64_t fnv1a64(const std::string& s) { return fnv1a64(s.data(), s.size()); }

std::optional<std::uint64_t> fnv1a64_file(const std::string& path, std::size_t limit) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::uint64_t state = 14695981039346656037ULL;
    char chunk[1 << 16];
    std::size_t left = limit;
    while (left > 0) {
        in.read(chunk, static_cast<std::streamsize>(
                           std::min(left, static_cast<std::size_t>(sizeof(chunk)))));
        const std::size_t got = static_cast<std::size_t>(in.gcount());
        if (in.bad()) return std::nullopt;
        state = fnv1a64(chunk, got, state);
        left -= got;
        if (in.eof()) {
            // A finite limit that outruns the file is a caller error (the
            // pack trailer math said the file was longer than it is).
            if (left > 0 && limit != SIZE_MAX) return std::nullopt;
            break;
        }
    }
    return state;
}

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) { put_u64(out, double_bits(v)); }

bool ByteReader::get_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[pos_++];
    return true;
}

bool ByteReader::get_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    v = r;
    return true;
}

bool ByteReader::get_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    v = r;
    return true;
}

bool ByteReader::get_f64(double& v) {
    std::uint64_t b;
    if (!get_u64(b)) return false;
    v = bits_double(b);
    return true;
}

bool ByteReader::get_bytes(std::string& out, std::size_t n) {
    if (remaining() < n) return false;
    out.assign(reinterpret_cast<const char*>(data_) + pos_, n);
    pos_ += n;
    return true;
}

void encode_pulse(std::string& out, const Pulse& p) {
    put_u32(out, static_cast<std::uint32_t>(p.amplitudes.size()));
    for (const std::vector<double>& line : p.amplitudes) {
        put_u32(out, static_cast<std::uint32_t>(line.size()));
        for (const double a : line) put_f64(out, a);
    }
    put_f64(out, p.dt);
    put_f64(out, p.fidelity);
    put_u32(out, static_cast<std::uint32_t>(p.grape_iterations));
    put_u32(out, static_cast<std::uint32_t>(p.nonfinite_reseeds));
    std::uint8_t flags = 0;
    if (p.warm_start_applied) flags |= 1u << 0;
    if (p.warm_start_mismatch) flags |= 1u << 1;
    if (p.timed_out) flags |= 1u << 2;
    if (p.nonfinite_aborted) flags |= 1u << 3;
    put_u8(out, flags);
}

bool decode_pulse(ByteReader& in, Pulse& p) {
    std::uint32_t nlines;
    if (!in.get_u32(nlines) || nlines > kMaxControlLines) return false;
    Pulse out;
    out.amplitudes.resize(nlines);
    for (std::uint32_t j = 0; j < nlines; ++j) {
        std::uint32_t nslots;
        if (!in.get_u32(nslots) || nslots > kMaxSlots) return false;
        // A truncated buffer must fail before the resize, not allocate first:
        // each slot is 8 bytes, so the remaining byte count bounds nslots.
        if (in.remaining() / 8 < nslots) return false;
        std::vector<double>& line = out.amplitudes[j];
        line.resize(nslots);
        for (std::uint32_t k = 0; k < nslots; ++k)
            if (!in.get_f64(line[k])) return false;
    }
    std::uint32_t iters, reseeds;
    std::uint8_t flags;
    if (!in.get_f64(out.dt) || !in.get_f64(out.fidelity) || !in.get_u32(iters) ||
        !in.get_u32(reseeds) || !in.get_u8(flags))
        return false;
    out.grape_iterations = static_cast<int>(iters);
    out.nonfinite_reseeds = static_cast<int>(reseeds);
    out.warm_start_applied = (flags & (1u << 0)) != 0;
    out.warm_start_mismatch = (flags & (1u << 1)) != 0;
    out.timed_out = (flags & (1u << 2)) != 0;
    out.nonfinite_aborted = (flags & (1u << 3)) != 0;
    p = std::move(out);
    return true;
}

std::string encode_latency_result(const LatencyResult& r) {
    std::string out;
    encode_pulse(out, r.pulse);
    put_u32(out, static_cast<std::uint32_t>(r.grape_runs));
    std::uint8_t flags = 0;
    if (r.feasible) flags |= 1u << 0;
    if (r.timed_out) flags |= 1u << 1;
    if (r.injected) flags |= 1u << 2;
    put_u8(out, flags);
    return out;
}

std::optional<LatencyResult> decode_latency_result(const std::string& bytes) {
    ByteReader in(bytes.data(), bytes.size());
    LatencyResult r;
    std::uint32_t runs;
    std::uint8_t flags;
    if (!decode_pulse(in, r.pulse) || !in.get_u32(runs) || !in.get_u8(flags) ||
        !in.done())
        return std::nullopt;
    r.grape_runs = static_cast<int>(runs);
    r.feasible = (flags & (1u << 0)) != 0;
    r.timed_out = (flags & (1u << 1)) != 0;
    r.injected = (flags & (1u << 2)) != 0;
    return r;
}

} // namespace epoc::qoc
