// Binary serialization of Pulse / LatencyResult for the on-disk pulse store.
//
// The format is fixed little-endian and versioned by the store's header (see
// store/pulse_store.h); this layer only defines the payload codec plus the
// exact-double primitives the cache keys and checksums are built on:
//
//   * Doubles are encoded as their IEEE-754 bit pattern (a 64-bit integer),
//     never via decimal formatting. Round-trips are exact to the bit — NaN
//     payloads, signed zeros and subnormals included — which is what makes a
//     warm run from the store bit-identical to the cold run that wrote it.
//   * exact_double() is the textual form of the same idea: 16 lowercase hex
//     digits of the bit pattern. PulseLibrary::key_of uses it so two option
//     values differing in the last ulp key distinct entries (the historical
//     precision(12) ostream formatting collided them), and the store derives
//     entry filenames from a hash of that key.
//   * fnv1a64() is the checksum/content-address hash: dependency-free,
//     deterministic across platforms, good enough dispersion for file names
//     and corruption detection (crash-safety comes from atomic rename, not
//     from the checksum; the checksum catches torn/bit-rotted *old* files).
//
// Decoding is defensive: every read is bounds-checked against the buffer and
// length fields are sanity-capped, so a corrupt (even checksum-valid but
// hand-crafted) payload yields nullopt, never UB or an allocation bomb.
#pragma once

#include "qoc/latency_search.h"

#include <cstdint>
#include <optional>
#include <string>

namespace epoc::qoc {

/// IEEE-754 bit pattern of `x` as 16 lowercase hex digits. Injective on
/// doubles (distinct bit patterns give distinct strings), so it is safe as a
/// cache-key component where decimal formatting would round-collide.
std::string exact_double(double x);

/// 64-bit FNV-1a over `n` bytes, continuing from `state` (pass the default to
/// start a fresh hash; chain calls to hash discontiguous pieces).
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t state = 14695981039346656037ULL);
std::uint64_t fnv1a64(const std::string& s);

/// 64-bit FNV-1a over the first `limit` bytes of the file at `path` (the
/// whole file when `limit` is SIZE_MAX), streamed in fixed chunks so pack
/// tooling can fingerprint multi-GB artifacts without buffering them. Empty
/// optional when the file cannot be opened, read, or is shorter than a
/// finite `limit`.
std::optional<std::uint64_t> fnv1a64_file(const std::string& path,
                                          std::size_t limit = SIZE_MAX);

// --- little-endian primitives (appended to a std::string byte buffer) ---
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v); ///< bit pattern, exact

/// Bounds-checked cursor over a byte buffer. Every get_* returns false (and
/// leaves the output untouched) instead of reading past the end.
class ByteReader {
public:
    ByteReader(const void* data, std::size_t size)
        : data_(static_cast<const unsigned char*>(data)), size_(size) {}

    bool get_u8(std::uint8_t& v);
    bool get_u32(std::uint32_t& v);
    bool get_u64(std::uint64_t& v);
    bool get_f64(double& v);
    /// Copy the next `n` raw bytes into `out` (replacing its contents).
    /// False without consuming anything when fewer than `n` remain — the
    /// caller's length field must be validated against the actual buffer.
    bool get_bytes(std::string& out, std::size_t n);

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

private:
    const unsigned char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Serialize a pulse (all fields, including the degradation flags — the store
/// refuses non-authoritative *entries*, but the codec itself is total).
void encode_pulse(std::string& out, const Pulse& p);
/// Deserialize; false on truncation, absurd lengths, or trailing garbage
/// handled by the caller via ByteReader::done().
bool decode_pulse(ByteReader& in, Pulse& p);

/// Serialize a full latency-search result (pulse + search metadata).
std::string encode_latency_result(const LatencyResult& r);
/// Exact inverse; nullopt on any structural problem. The input must contain
/// exactly one encoded result (trailing bytes are rejected).
std::optional<LatencyResult> decode_latency_result(const std::string& bytes);

} // namespace epoc::qoc
