#include "qoc/pulse_library.h"

#include "linalg/phase.h"

namespace epoc::qoc {

std::string PulseLibrary::key_of(const Matrix& m) const {
    // Quantize at 6 decimals: distinct gates stay distinct, float jitter from
    // equal unitaries does not split entries.
    return phase_aware_ ? linalg::phase_canonical_key(m, 6) : linalg::raw_key(m, 6);
}

const LatencyResult& PulseLibrary::get_or_generate(const BlockHamiltonian& h,
                                                   const Matrix& target,
                                                   const LatencySearchOptions& opt) {
    const std::string key = key_of(target);
    const auto it = table_.find(key);
    if (it != table_.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    LatencyResult res = find_minimal_latency_pulse(h, target, opt);
    return table_.emplace(key, std::move(res)).first->second;
}

const LatencyResult* PulseLibrary::peek(const Matrix& target) const {
    const auto it = table_.find(key_of(target));
    return it == table_.end() ? nullptr : &it->second;
}

} // namespace epoc::qoc
