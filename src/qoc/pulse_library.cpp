#include "qoc/pulse_library.h"

#include "linalg/phase.h"

namespace epoc::qoc {

std::string PulseLibrary::key_of(const Matrix& m) const {
    // Quantize at 6 decimals: distinct gates stay distinct, float jitter from
    // equal unitaries does not split entries.
    return phase_aware_ ? linalg::phase_canonical_key(m, 6) : linalg::raw_key(m, 6);
}

std::shared_ptr<const LatencyResult> PulseLibrary::get_or_generate(
    const BlockHamiltonian& h, const Matrix& target, const LatencySearchOptions& opt) {
    return cache_.get_or_compute(key_of(target), [&] {
        return find_minimal_latency_pulse(h, target, opt);
    });
}

std::shared_ptr<const LatencyResult> PulseLibrary::peek(const Matrix& target) const {
    return cache_.peek(key_of(target));
}

} // namespace epoc::qoc
