#include "qoc/pulse_library.h"

#include "linalg/phase.h"
#include "qoc/pulse_io.h"

#include <sstream>

namespace epoc::qoc {

std::string PulseLibrary::key_of(const BlockHamiltonian& h, const Matrix& m,
                                 const LatencySearchOptions& opt) const {
    // Unitary part, quantized at 6 decimals: distinct gates stay distinct,
    // float jitter from equal unitaries does not split entries. This is the
    // one deliberately *lossy* component of the key.
    std::ostringstream os;
    os << (phase_aware_ ? linalg::phase_canonical_key(m, 6) : linalg::raw_key(m, 6));

    // Hamiltonian fingerprint: dimension, slot width and each control line's
    // label/bound pin down the device model a pulse was optimized against
    // (the drift follows from these for make_block_hamiltonian models; custom
    // Hamiltonians with equal lines are treated as equal devices).
    //
    // All doubles below are encoded exactly (IEEE-754 bit pattern, see
    // pulse_io.h), never via decimal formatting: the historical precision(12)
    // ostream rendering collided option values that differed past 12
    // significant digits — e.g. two learning rates one ulp apart shared a
    // cache entry, and with the persistent store the collision would have
    // crossed process boundaries. The same encoding feeds the store's
    // content-addressed filenames, so the disk tier inherits the exactness.
    os << "|H:" << h.num_qubits << ":" << exact_double(h.dt);
    for (const ControlLine& c : h.controls)
        os << ":" << c.label << "=" << exact_double(c.bound);
    // Drift variant: control lines alone leave the drift ambiguous (zz_drift,
    // crosstalk terms, level structure); builders fingerprint those here.
    os << "|V:" << h.variant;

    // Effective search options. warm_amplitudes is intentionally absent (see
    // header): it seeds the optimizer on a miss but does not define the entry.
    // The deadline pointer is likewise absent: a deadline shapes *whether* a
    // result is authoritative (non-authoritative ones are never cached), not
    // which entry it belongs to.
    os << "|O:" << exact_double(opt.fidelity_threshold) << ":" << opt.min_slots << ":"
       << opt.max_slots << ":" << opt.slot_granularity << "|G:"
       << opt.grape.max_iterations << ":" << exact_double(opt.grape.learning_rate)
       << ":" << opt.grape.seed << ":" << exact_double(opt.grape.init_scale) << ":"
       << opt.grape.nonfinite_retries;
    return os.str();
}

std::shared_ptr<const LatencyResult> PulseLibrary::get_or_generate(
    const BlockHamiltonian& h, const Matrix& target, const LatencySearchOptions& opt) {
    const std::string key = key_of(h, target, opt);
    // Waiter-retry loop. Single-flight publishes a degraded (non-authoritative)
    // result to the callers that were blocked on the losing leader — a waiter
    // must not hang just because the leader's deadline or token expired — and
    // immediately evicts it. But a *healthy* waiter inheriting that value
    // would ship another caller's degradation, so when our own budget is
    // intact we re-enter the cache instead: the poisoned entry is already
    // gone, and this caller recomputes (or joins a live leader) cleanly.
    // Bounded so a pathological stream of dying leaders cannot spin forever.
    constexpr int kWaiterRetries = 3;
    for (int attempt = 0;; ++attempt) {
        bool led = false;
        std::shared_ptr<const LatencyResult> out = cache_.get_or_compute(
            key,
            [&] {
                led = true;
                // Single-flight: this body runs exactly once per entry, on the
                // worker thread that won the miss — so the span lands under that
                // worker's row, the counters aggregate the same totals for any
                // thread count, and the store sees at most one read and one write
                // per key however many threads raced here.
                if (store_ != nullptr) {
                    bool rejected = false;
                    bool from_pack = false;
                    if (std::optional<LatencyResult> stored =
                            store_->load(key, &from_pack)) {
                        if (!revalidator_ ||
                            revalidator_(key, h, target, *stored, from_pack)) {
                            // L2 hit: promote to memory verbatim. No GRAPE ran,
                            // so none of the qoc.* generation counters move.
                            store_hits_.fetch_add(1, std::memory_order_relaxed);
                            if (from_pack) {
                                store_pack_hits_.fetch_add(1,
                                                           std::memory_order_relaxed);
                                if (tracer_ != nullptr)
                                    tracer_->add_counter("qoc.store_pack_promotions");
                            }
                            if (tracer_ != nullptr)
                                tracer_->add_counter("qoc.store_promotions");
                            return std::move(*stored);
                        }
                        // Revalidation rejected the entry: its bytes were intact
                        // (the load passed the checksum) but its physics is
                        // wrong. Quarantine it in the tier and fall through to
                        // GRAPE exactly as if the probe had missed — but count it
                        // *only* as a rejection: hits + misses + rejections must
                        // partition the probes (the historical double count of
                        // rejections as misses made per-tenant dashboards
                        // irreconcilable: counted outcomes exceeded probes).
                        rejected = true;
                        store_rejected_.fetch_add(1, std::memory_order_relaxed);
                        if (tracer_ != nullptr)
                            tracer_->add_counter("qoc.store_rejections");
                        store_->invalidate(key);
                    }
                    if (!rejected) store_misses_.fetch_add(1, std::memory_order_relaxed);
                }
                util::Tracer::Span span;
                if (tracer_ != nullptr)
                    span = tracer_->span("grape " + std::to_string(h.num_qubits) + "q g" +
                                             std::to_string(opt.slot_granularity),
                                         "qoc");
                LatencyResult res = find_minimal_latency_pulse(h, target, opt);
                if (tracer_ != nullptr) {
                    tracer_->add_counter("qoc.grape_runs",
                                         static_cast<std::uint64_t>(res.grape_runs));
                    tracer_->add_counter(
                        "qoc.grape_iterations",
                        static_cast<std::uint64_t>(res.pulse.grape_iterations));
                    tracer_->add_counter("qoc.pulse_slots",
                                         static_cast<std::uint64_t>(res.pulse.num_slots()));
                    if (!res.feasible) tracer_->add_counter("qoc.infeasible_searches");
                    if (res.pulse.warm_start_mismatch)
                        tracer_->add_counter("qoc.warm_start_mismatches");
                    if (res.pulse.nonfinite_reseeds > 0)
                        tracer_->add_counter(
                            "qoc.grape_reseeds",
                            static_cast<std::uint64_t>(res.pulse.nonfinite_reseeds));
                    if (res.pulse.nonfinite_aborted)
                        tracer_->add_counter("qoc.grape_nonfinite_aborts");
                    if (res.timed_out) tracer_->add_counter("qoc.timed_out_searches");
                    if (!res.authoritative())
                        tracer_->add_counter("robust.uncached_degraded_pulses");
                }
                // Write-back: only authoritative results reach disk — the same
                // poisoning rule the `cacheable` predicate enforces for memory,
                // applied before the entry can outlive the process. Warm-started
                // results additionally stay process-local: their trajectory
                // depended on seed amplitudes the key does not encode, so
                // persisting them would hand a later cold process a
                // seed-dependent pulse under a seed-independent key.
                if (store_ != nullptr && res.authoritative()) {
                    if (res.pulse.warm_start_applied) {
                        store_warm_skipped_.fetch_add(1, std::memory_order_relaxed);
                        if (tracer_ != nullptr)
                            tracer_->add_counter("qoc.store_warm_skips");
                    } else {
                        store_->store(key, res);
                        store_writes_.fetch_add(1, std::memory_order_relaxed);
                    }
                }
                return res;
            },
            // Cache-poisoning rule: degraded results are handed to the caller
            // but evicted, so a later compile with slack (or without injected
            // faults) re-attempts instead of being served a degraded "hit".
            [](const LatencyResult& r) { return r.authoritative(); });
        if (led || out->authoritative()) return out;
        // Inherited degradation. Ship it anyway when our own budget is the
        // problem too (re-attempting could only burn what little remains),
        // or when the retry budget is gone.
        const bool budget_alive = opt.deadline == nullptr || !opt.deadline->expired();
        if (!budget_alive || attempt >= kWaiterRetries) return out;
        // Belt-and-braces: the leader evicts its own degraded value, but make
        // the retry self-sufficient — compare-and-evict is a no-op when the
        // eviction already happened or the slot was replaced.
        cache_.erase_if(key, out);
        if (tracer_ != nullptr) tracer_->add_counter("qoc.waiter_retries");
    }
}

std::shared_ptr<const LatencyResult> PulseLibrary::regenerate(
    const BlockHamiltonian& h, const Matrix& target, const LatencySearchOptions& opt,
    const std::shared_ptr<const LatencyResult>& bad) {
    const std::string key = key_of(h, target, opt);
    // Only the eviction winner touches the tier: a loser arriving after the
    // winner's fresh result was written back must not quarantine that fresh
    // entry. Losers fall straight through to get_or_generate, which waits on
    // or hits the winner's replacement.
    if (cache_.erase_if(key, bad) && store_ != nullptr) store_->invalidate(key);
    return get_or_generate(h, target, opt);
}

std::shared_ptr<const LatencyResult> PulseLibrary::peek(
    const BlockHamiltonian& h, const Matrix& target,
    const LatencySearchOptions& opt) const {
    return cache_.peek(key_of(h, target, opt));
}

} // namespace epoc::qoc
