// Pulse library: the lookup table of Section 3.4.
//
// Entries are keyed on the *full generation context*, not the unitary alone:
//
//   (canonical unitary, Hamiltonian fingerprint, latency-search options)
//
// The unitary key is global-phase-aware in EPOC mode (two unitaries differing
// only by e^{i*phi} share one entry, raising the hit rate; the phase-oblivious
// mode exists for the ablation benchmark). The Hamiltonian fingerprint covers
// dimension, slot width and every control line's bound, so two device models
// never trade pulses. The options fingerprint covers the search parameters
// that shape the result — fidelity_threshold, min/max_slots, slot_granularity
// and the GRAPE hyperparameters — so e.g. the pipeline's coarse-granularity
// regrouped arm can never receive a fine-granularity pulse generated earlier
// for the same unitary (the historical collision: key_of ignored the options,
// and the wide-block slot coarsening silently never applied on hits).
// GrapeOptions::warm_amplitudes is deliberately *excluded*: a warm start only
// seeds the optimizer on a miss, and AccQOC-style MST construction relies on
// later exact-option lookups hitting the warm-started entry.
//
// The library is thread-safe: the parallel pipeline stages hammer it from
// every worker. Lookups are sharded-lock reads; misses are single-flight (two
// threads missing on the same equivalence class run exactly one GRAPE latency
// search — the second blocks and reuses the first's result). Entries are
// returned as shared_ptr, so they stay valid however the underlying table
// rehashes under concurrent insertion.
#pragma once

#include "qoc/latency_search.h"
#include "util/sharded_cache.h"
#include "util/trace.h"

#include <memory>

namespace epoc::qoc {

struct PulseLibraryStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    /// Lookups that found another thread mid-generation on their key and
    /// blocked for its result (a subset of `hits`). Zero when single-threaded;
    /// the benchmarks report it as the cache-contention measure.
    std::size_t single_flight_waits = 0;
    /// Generated results that were degraded (timed-out / fault-injected /
    /// non-finite-aborted) and therefore returned but *not* stored: a later
    /// compile with more slack re-attempts them. Zero on clean runs.
    std::size_t uncached_degraded = 0;
    double hit_rate() const {
        const std::size_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class PulseLibrary {
public:
    /// `phase_aware` selects the EPOC behaviour; false reproduces the
    /// AccQOC/PAQOC exact-matrix lookup (ablation).
    explicit PulseLibrary(bool phase_aware = true) : phase_aware_(phase_aware) {}

    /// Fetch the pulse for `target` generated against `h` under `opt`,
    /// running a minimal-latency search on a miss. `h` must match the target
    /// dimension. The returned pointer is never null and remains valid for
    /// the library's lifetime and beyond (entries are immutable and
    /// refcounted).
    std::shared_ptr<const LatencyResult> get_or_generate(const BlockHamiltonian& h,
                                                         const Matrix& target,
                                                         const LatencySearchOptions& opt);

    /// Lookup only; nullptr on miss (or while another thread is still
    /// generating the entry). Keyed exactly like get_or_generate, so `h` and
    /// `opt` must match the generating call. Does not touch the statistics.
    std::shared_ptr<const LatencyResult> peek(const BlockHamiltonian& h,
                                              const Matrix& target,
                                              const LatencySearchOptions& opt) const;

    /// Attach a tracer: each generation (cache miss) records a span plus the
    /// `qoc.grape_runs` / `qoc.grape_iterations` / `qoc.pulse_slots` /
    /// `qoc.infeasible_searches` counters. Pass nullptr to detach. The
    /// pointer must outlive every subsequent get_or_generate call.
    void set_tracer(util::Tracer* tracer) { tracer_ = tracer; }

    std::size_t size() const { return cache_.size(); }
    PulseLibraryStats stats() const {
        const util::CacheStats s = cache_.stats();
        return {s.hits, s.misses, s.waits, s.uncacheable};
    }
    void reset_stats() { cache_.reset_stats(); }

private:
    std::string key_of(const BlockHamiltonian& h, const Matrix& m,
                       const LatencySearchOptions& opt) const;

    bool phase_aware_;
    util::Tracer* tracer_ = nullptr;
    util::ShardedFlightCache<LatencyResult> cache_;
};

} // namespace epoc::qoc
