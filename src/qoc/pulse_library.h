// Pulse library: the lookup table of Section 3.4.
//
// Keys are unitary matrices; entries store the optimized pulse. EPOC's
// refinement over AccQOC/PAQOC is *global-phase-aware* lookup: two unitaries
// differing only by e^{i*phi} share one entry, raising the hit rate. The
// phase-oblivious mode exists for the ablation benchmark.
#pragma once

#include "qoc/latency_search.h"

#include <unordered_map>

namespace epoc::qoc {

struct PulseLibraryStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    double hit_rate() const {
        const std::size_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class PulseLibrary {
public:
    /// `phase_aware` selects the EPOC behaviour; false reproduces the
    /// AccQOC/PAQOC exact-matrix lookup (ablation).
    explicit PulseLibrary(bool phase_aware = true) : phase_aware_(phase_aware) {}

    /// Fetch the pulse for `target`, generating it with a minimal-latency
    /// search on a miss. `h` must match the target dimension.
    const LatencyResult& get_or_generate(const BlockHamiltonian& h, const Matrix& target,
                                         const LatencySearchOptions& opt);

    /// Lookup only; nullptr on miss. Does not touch the statistics.
    const LatencyResult* peek(const Matrix& target) const;

    std::size_t size() const { return table_.size(); }
    const PulseLibraryStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    std::string key_of(const Matrix& m) const;

    bool phase_aware_;
    std::unordered_map<std::string, LatencyResult> table_;
    PulseLibraryStats stats_;
};

} // namespace epoc::qoc
