// Pulse library: the lookup table of Section 3.4.
//
// Entries are keyed on the *full generation context*, not the unitary alone:
//
//   (canonical unitary, Hamiltonian fingerprint, latency-search options)
//
// The unitary key is global-phase-aware in EPOC mode (two unitaries differing
// only by e^{i*phi} share one entry, raising the hit rate; the phase-oblivious
// mode exists for the ablation benchmark). The Hamiltonian fingerprint covers
// dimension, slot width and every control line's bound, so two device models
// never trade pulses. The options fingerprint covers the search parameters
// that shape the result — fidelity_threshold, min/max_slots, slot_granularity
// and the GRAPE hyperparameters — so e.g. the pipeline's coarse-granularity
// regrouped arm can never receive a fine-granularity pulse generated earlier
// for the same unitary (the historical collision: key_of ignored the options,
// and the wide-block slot coarsening silently never applied on hits).
// GrapeOptions::warm_amplitudes is deliberately *excluded*: a warm start only
// seeds the optimizer on a miss, and AccQOC-style MST construction relies on
// later exact-option lookups hitting the warm-started entry. The flip side of
// that exclusion is a persistence rule: warm-started results stay in memory
// (the MST reliance above) but are never written to the L2 tier — a pulse
// whose trajectory depended on seed amplitudes that are not part of its key
// must not outlive the process under a key that promises seed-independence.
// A later cold process would load it where a cold generation was promised.
//
// The library is thread-safe: the parallel pipeline stages hammer it from
// every worker. Lookups are sharded-lock reads; misses are single-flight (two
// threads missing on the same equivalence class run exactly one GRAPE latency
// search — the second blocks and reuses the first's result). Entries are
// returned as shared_ptr, so they stay valid however the underlying table
// rehashes under concurrent insertion.
//
// An optional second (L2) tier — in practice store::PulseStore, the on-disk
// artifact store — slots in behind the memory table: a memory miss first
// probes the tier and only falls through to GRAPE when the tier misses too;
// generated authoritative results are written back. The probe and write-back
// run inside the single-flight slot, so N threads missing on one key still do
// at most one disk read and one GRAPE search between them. Degraded results
// are never offered to the tier (the PR 3 cache-poisoning rule extends to
// disk), and the tier sees the exact same key string as the memory table.
#pragma once

#include "qoc/latency_search.h"
#include "util/sharded_cache.h"
#include "util/trace.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

namespace epoc::qoc {

/// Secondary pulse tier: a key-value backend consulted on memory misses and
/// fed authoritative results. Implementations must be thread-safe (the
/// parallel pipeline calls from every worker, though never twice concurrently
/// for one key — single-flight covers the tier) and must treat every failure
/// as a miss/no-op: a broken tier degrades the cache, never the compile.
class PulseTier {
public:
    virtual ~PulseTier() = default;
    /// The stored result for `key`, or nullopt on a miss (including any I/O
    /// or integrity failure). Must not throw. Tiers with layered backends set
    /// `*from_pack` (when non-null) to true when the hit came from a
    /// read-only shared pack segment rather than the local read-write tier —
    /// foreign bytes the caller may want to revalidate unconditionally.
    virtual std::optional<LatencyResult> load(const std::string& key,
                                              bool* from_pack = nullptr) = 0;
    /// Persist an authoritative result under `key` (best effort; callers
    /// never learn of a failed write). Must not throw.
    virtual void store(const std::string& key, const LatencyResult& result) = 0;
    /// Drop (or quarantine) the entry under `key` so a later load misses.
    /// Best effort; must not throw. Called when revalidation rejects an
    /// entry whose bytes are intact but whose physics is wrong — damage a
    /// checksum cannot see. Default: no-op, for tiers without eviction.
    virtual void invalidate(const std::string& key) { (void)key; }
};

struct PulseLibraryStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    /// Lookups that found another thread mid-generation on their key and
    /// blocked for its result (a subset of `hits`). Zero when single-threaded;
    /// the benchmarks report it as the cache-contention measure.
    std::size_t single_flight_waits = 0;
    /// Generated results that were degraded (timed-out / fault-injected /
    /// non-finite-aborted) and therefore returned but *not* stored: a later
    /// compile with more slack re-attempts them. Zero on clean runs.
    std::size_t uncached_degraded = 0;
    /// L2-tier activity, all zero when no tier is attached. Every memory miss
    /// is exactly one tier probe, and probes partition exactly:
    ///   misses == store_hits + store_misses + store_rejected
    /// (the reconciliation invariant per-tenant dashboards sum over). Every
    /// tier miss or rejection that generated an authoritative result is one
    /// tier write. A tier hit means the GRAPE latency search was skipped
    /// entirely for that entry.
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;
    std::size_t store_writes = 0;
    /// Tier hits served from a read-only shared pack segment rather than the
    /// local read-write tier (a subset of `store_hits`). Nonzero means a
    /// shipped library is actually paying for itself on this machine.
    std::size_t store_pack_hits = 0;
    /// Tier hits the revalidation hook rejected: invalidated in the tier and
    /// regenerated. Disjoint from store_misses (a probe is a hit, a miss, or
    /// a rejection — never two of them). Zero without a revalidator.
    std::size_t store_rejected = 0;
    /// Authoritative results withheld from the tier because the GRAPE run was
    /// warm-started: warm seeds are not part of the key, so seed-dependent
    /// pulses never persist across processes (see header). Zero when warm
    /// starting is off or every warm run was cold-rescued.
    std::size_t store_warm_skipped = 0;
    double hit_rate() const {
        const std::size_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class PulseLibrary {
public:
    /// `phase_aware` selects the EPOC behaviour; false reproduces the
    /// AccQOC/PAQOC exact-matrix lookup (ablation).
    explicit PulseLibrary(bool phase_aware = true) : phase_aware_(phase_aware) {}

    /// Fetch the pulse for `target` generated against `h` under `opt`,
    /// running a minimal-latency search on a miss. `h` must match the target
    /// dimension. The returned pointer is never null and remains valid for
    /// the library's lifetime and beyond (entries are immutable and
    /// refcounted).
    std::shared_ptr<const LatencyResult> get_or_generate(const BlockHamiltonian& h,
                                                         const Matrix& target,
                                                         const LatencySearchOptions& opt);

    /// Lookup only; nullptr on miss (or while another thread is still
    /// generating the entry). Keyed exactly like get_or_generate, so `h` and
    /// `opt` must match the generating call. Does not touch the statistics.
    std::shared_ptr<const LatencyResult> peek(const BlockHamiltonian& h,
                                              const Matrix& target,
                                              const LatencySearchOptions& opt) const;

    /// Attach a tracer: each generation (cache miss) records a span plus the
    /// `qoc.grape_runs` / `qoc.grape_iterations` / `qoc.pulse_slots` /
    /// `qoc.infeasible_searches` counters. Pass nullptr to detach. The
    /// pointer must outlive every subsequent get_or_generate call.
    void set_tracer(util::Tracer* tracer) { tracer_ = tracer; }

    /// Attach the L2 tier (non-owning; must outlive every subsequent
    /// get_or_generate call, nullptr to detach). See the header comment for
    /// the probe/write-back protocol.
    void set_store(PulseTier* store) { store_ = store; }

    /// Revalidation hook consulted on every L2 hit before it is promoted to
    /// memory: return false to reject the entry (it is invalidated in the
    /// tier, counted as a miss, and regenerated by GRAPE). Sampling policy
    /// belongs to the hook — it sees the exact key, plus `foreign`: true when
    /// the hit came from a read-only shared pack segment (bytes from another
    /// machine or build, which callers typically re-simulate unconditionally
    /// rather than sample). Must not throw; runs inside the single-flight
    /// slot, so at most once per key per miss. Kept as a std::function so qoc
    /// stays independent of the verify layer.
    using Revalidator =
        std::function<bool(const std::string& key, const BlockHamiltonian& h,
                           const Matrix& target, const LatencyResult& result,
                           bool foreign)>;
    void set_revalidator(Revalidator hook) { revalidator_ = std::move(hook); }

    /// Verify-triggered recompute: evict `bad` — the exact value an audit
    /// rejected — from memory and the tier, then regenerate. Compare-and-
    /// evict semantics: of N concurrent callers holding the same bad value,
    /// one wins the eviction (and alone invalidates the tier, so a fresh
    /// write-back is never quarantined by a straggler); the rest reuse the
    /// winner's replacement via the ordinary single-flight path.
    std::shared_ptr<const LatencyResult> regenerate(
        const BlockHamiltonian& h, const Matrix& target, const LatencySearchOptions& opt,
        const std::shared_ptr<const LatencyResult>& bad);

    std::size_t size() const { return cache_.size(); }
    PulseLibraryStats stats() const {
        const util::CacheStats s = cache_.stats();
        PulseLibraryStats out{s.hits, s.misses, s.waits, s.uncacheable, 0, 0, 0, 0};
        out.store_hits = store_hits_.load(std::memory_order_relaxed);
        out.store_pack_hits = store_pack_hits_.load(std::memory_order_relaxed);
        out.store_misses = store_misses_.load(std::memory_order_relaxed);
        out.store_writes = store_writes_.load(std::memory_order_relaxed);
        out.store_rejected = store_rejected_.load(std::memory_order_relaxed);
        out.store_warm_skipped = store_warm_skipped_.load(std::memory_order_relaxed);
        return out;
    }
    void reset_stats() {
        cache_.reset_stats();
        store_hits_.store(0, std::memory_order_relaxed);
        store_pack_hits_.store(0, std::memory_order_relaxed);
        store_misses_.store(0, std::memory_order_relaxed);
        store_writes_.store(0, std::memory_order_relaxed);
        store_rejected_.store(0, std::memory_order_relaxed);
        store_warm_skipped_.store(0, std::memory_order_relaxed);
    }

private:
    std::string key_of(const BlockHamiltonian& h, const Matrix& m,
                       const LatencySearchOptions& opt) const;

    bool phase_aware_;
    util::Tracer* tracer_ = nullptr;
    PulseTier* store_ = nullptr;
    Revalidator revalidator_;
    std::atomic<std::size_t> store_hits_{0};
    std::atomic<std::size_t> store_pack_hits_{0};
    std::atomic<std::size_t> store_misses_{0};
    std::atomic<std::size_t> store_writes_{0};
    std::atomic<std::size_t> store_rejected_{0};
    std::atomic<std::size_t> store_warm_skipped_{0};
    util::ShardedFlightCache<LatencyResult> cache_;
};

} // namespace epoc::qoc
