#include "service/admission.h"

#include <algorithm>

namespace epoc::service {

AdmissionController::AdmissionController(AdmissionOptions opt) : opt_(opt) {}

Verdict AdmissionController::submit(Job&& job) {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantCounters& tc = tenants_[job.request.tenant];
    ++tc.submitted;
    if (closed_) {
        // The daemon answers this submission `cancelled`; count it here so
        // terminal counters always sum to `submitted`, even for jobs racing
        // the shutdown drain.
        ++tc.cancelled;
        return Verdict::closed;
    }
    if (queued_ + in_flight_ >= opt_.max_pending) {
        ++tc.rejected_overload;
        return Verdict::rejected_overload;
    }
    // Feasibility gate: an armed deadline with (almost) nothing left cannot
    // produce anything but a placeholder artifact — shed it at the door. A
    // fired cancel token zeroes remaining_ms() (the satellite-2 fix), so
    // already-dead jobs shed here too instead of occupying an executor.
    if (job.deadline.armed() && job.deadline.remaining_ms() < opt_.min_feasible_ms) {
        ++tc.shed_deadline;
        return Verdict::shed_deadline;
    }
    ++tc.admitted;
    Level& level = levels_[job.request.priority];
    std::deque<Job>& q = level.by_tenant[job.request.tenant];
    if (q.empty()) level.order.push_back(job.request.tenant);
    q.push_back(std::move(job));
    ++level.jobs;
    ++queued_;
    peak_pending_ = std::max<std::uint64_t>(peak_pending_, queued_ + in_flight_);
    ready_.notify_one();
    return Verdict::admitted;
}

bool AdmissionController::next(Job& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || queued_ > 0; });
    if (queued_ == 0) return false; // closed and drained

    // Highest non-empty priority level, then the level's tenant rotation.
    auto lit = levels_.begin();
    while (lit->second.jobs == 0) ++lit; // queued_ > 0 guarantees one exists
    Level& level = lit->second;
    if (level.next >= level.order.size()) level.next = 0;
    const std::string tenant = level.order[level.next];
    std::deque<Job>& q = level.by_tenant[tenant];
    out = std::move(q.front());
    q.pop_front();
    --level.jobs;
    --queued_;
    ++in_flight_;
    if (q.empty()) {
        // Tenant exhausted at this level: drop it from the rotation without
        // advancing past whoever slid into its slot.
        level.by_tenant.erase(tenant);
        level.order.erase(level.order.begin() +
                          static_cast<std::ptrdiff_t>(level.next));
    } else {
        ++level.next; // served this tenant; the next one gets the next turn
    }
    if (level.jobs == 0) levels_.erase(lit);
    return true;
}

void AdmissionController::finish(const Job& job, const JobResponse& resp) {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    TenantCounters& tc = tenants_[job.request.tenant];
    switch (resp.status) {
    case JobStatus::ok:
        ++tc.completed;
        if (resp.degraded) ++tc.degraded;
        break;
    case JobStatus::cancelled: ++tc.cancelled; break;
    case JobStatus::shed_deadline: ++tc.shed_deadline; break;
    default: ++tc.failed; break;
    }
}

void AdmissionController::record_replay(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++tenants_[tenant].replayed;
}

void AdmissionController::record_invalid(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++tenants_[tenant].submitted;
    ++tenants_[tenant].failed;
}

void AdmissionController::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

AdmissionSnapshot AdmissionController::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    AdmissionSnapshot s;
    s.queued = queued_;
    s.in_flight = in_flight_;
    s.peak_pending = peak_pending_;
    s.tenants = tenants_;
    return s;
}

} // namespace epoc::service
