// Admission control and fair scheduling for the epocd compile service.
//
// Every incoming job passes through one AdmissionController, which decides at
// the door — before any compile work — whether the job may enter:
//
//   * capacity: queued + in-flight jobs are bounded (max_pending); beyond
//     the bound the job is rejected_overload immediately rather than queued
//     into a latency death spiral;
//   * deadline feasibility: a job whose budget is already spent (or below
//     min_feasible_ms) is shed_deadline at the door — running it could only
//     produce a maximally-degraded artifact after burning an executor slot
//     somebody with budget left was waiting for. This reuses util::Deadline:
//     the job's deadline is armed at submission, so queueing time counts
//     against the budget, and the executor re-checks remaining_ms() at
//     dispatch (a job admitted feasible can die waiting in the queue).
//
// Admitted jobs wait in a two-level fair queue: strict priority levels
// (larger = more urgent), round-robin across tenants within a level. A tenant
// that dumps a thousand jobs cannot starve another tenant's single job at the
// same priority — the burst tenant and the singleton tenant alternate. (The
// complementary intra-job fairness — one 30-qubit job not starving many
// 4-qubit jobs — lives in util::ThreadPool, whose workers round-robin across
// live batches one block at a time.)
//
// Per-tenant counters accumulate here and feed the daemon's status endpoint.
#pragma once

#include "backend/backend.h"
#include "service/protocol.h"
#include "util/deadline.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace epoc::service {

struct AdmissionOptions {
    /// Ceiling on queued + in-flight jobs; submissions beyond it are
    /// rejected_overload.
    std::size_t max_pending = 256;
    /// Jobs whose remaining budget is below this are shed as infeasible
    /// (only jobs that carry a deadline; deadline-free jobs always pass
    /// the feasibility gate).
    double min_feasible_ms = 1.0;
};

/// One unit of work flowing through the service: the wire request plus the
/// runtime state the daemon attaches (armed deadline, cancel token, and the
/// callback that delivers the response to the right connection).
struct Job {
    JobRequest request;
    /// Hardware backend resolved from request.backend at admission (nullptr
    /// for the default device model); the executor passes it to compile().
    /// Resolution happens *before* the queue so an unknown name is answered
    /// invalid_input immediately instead of burning an executor slot.
    std::shared_ptr<const backend::Backend> backend;
    /// Armed from request.deadline_ms at submission (unarmed when 0), linked
    /// to `cancel` — so remaining_ms() collapses to 0 the moment the client
    /// vanishes or the daemon shuts down.
    util::Deadline deadline;
    /// Fired on client disconnect and daemon shutdown. shared_ptr because
    /// the connection (which fires it) and the executor (which polls it)
    /// outlive each other in either order.
    std::shared_ptr<util::CancelToken> cancel;
    /// Delivers the response frame; must tolerate a dead connection (no-op).
    std::function<void(const JobResponse&)> respond;
    std::chrono::steady_clock::time_point enqueued_at{};
};

enum class Verdict : std::uint8_t {
    admitted = 0,
    shed_deadline = 1,
    rejected_overload = 2,
    closed = 3, ///< controller shut down; daemon answers cancelled
};

struct TenantCounters {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t completed = 0; ///< responded ok (possibly degraded)
    std::uint64_t degraded = 0;  ///< subset of completed
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;   ///< invalid_input / error / late shed
    std::uint64_t replayed = 0; ///< re-submitted ids answered from the replay table
};

struct AdmissionSnapshot {
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    std::uint64_t peak_pending = 0;
    std::map<std::string, TenantCounters> tenants;
};

class AdmissionController {
public:
    explicit AdmissionController(AdmissionOptions opt = {});

    /// Gate + enqueue. On `admitted` the job is owned by the queue until an
    /// executor takes it; any other verdict leaves `job` untouched for the
    /// caller to answer. Thread-safe; never blocks on capacity.
    Verdict submit(Job&& job);

    /// Dequeue the next job by (priority desc, tenant round-robin), blocking
    /// while the queue is empty. False once the controller is closed AND the
    /// queue is drained — the executor loop's termination condition. The
    /// taken job counts as in-flight until finish() is called for it.
    bool next(Job& out);

    /// Account the outcome of a job taken via next() and release its
    /// in-flight slot.
    void finish(const Job& job, const JobResponse& resp);

    /// Account a replayed response (a re-submitted id answered from the
    /// daemon's replay table — the job never re-entered the queue).
    void record_replay(const std::string& tenant);

    /// Account a job answered invalid_input at the door (e.g. an unknown
    /// backend name rejected at admission — the job never entered the queue).
    void record_invalid(const std::string& tenant);

    /// Stop admitting (submit returns closed) and wake next() waiters.
    /// Queued jobs remain takeable so a draining shutdown can answer them.
    void close();

    AdmissionSnapshot snapshot() const;

private:
    struct Level {
        /// FIFO per tenant; `order` rotates so tenants alternate.
        std::map<std::string, std::deque<Job>> by_tenant;
        std::vector<std::string> order;
        std::size_t next = 0;
        std::size_t jobs = 0;
    };

    AdmissionOptions opt_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    /// Strict priority: highest level first.
    std::map<std::int32_t, Level, std::greater<std::int32_t>> levels_;
    std::size_t queued_ = 0;
    std::size_t in_flight_ = 0;
    std::uint64_t peak_pending_ = 0;
    bool closed_ = false;
    std::map<std::string, TenantCounters> tenants_;
};

} // namespace epoc::service
