#include "service/client.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace epoc::service {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Ids must stay unique across every client a tenant ever runs: the daemon's
/// replay table is keyed by (tenant, id), so a collision would hand one
/// client another client's recorded response. pid + a process-wide serial
/// keeps the id space disjoint per client without any wire-format change.
std::uint64_t first_id() {
    static std::atomic<std::uint64_t> serial{0};
    const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
    return ((pid & 0xffffULL) << 48) |
           ((serial.fetch_add(1) & 0xffffULL) << 32) | 1;
}

int dial_unix(const std::string& socket_path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("epocd client: socket(): " +
                                 std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("epocd client: socket path too long: " +
                                 socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("epocd client: connect " + socket_path + ": " +
                                 err);
    }
    return fd;
}

} // namespace

EpocClient::EpocClient(const std::string& socket_path, ClientOptions opt)
    : socket_path_(socket_path), opt_(opt), next_id_(first_id()),
      jitter_state_(opt.backoff_seed) {
    fd_ = dial_unix(socket_path_);
    connects_ = 1;
}

EpocClient::~EpocClient() {
    if (fd_ >= 0) ::close(fd_);
}

void EpocClient::dial() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    fd_ = dial_unix(socket_path_);
    ++connects_;
}

/// The retry layer's single recovery point: reconnect with capped
/// exponential backoff + deterministic jitter, then re-submit every
/// outstanding job verbatim (same id — the daemon's replay table makes the
/// re-submission idempotent). Throws when retry is off or exhausted.
void EpocClient::handle_connection_loss(const char* context) {
    if (!opt_.retry)
        throw std::runtime_error(std::string("epocd client: connection lost ") +
                                 context);
    double backoff = opt_.backoff_initial_ms;
    for (int attempt = 0; attempt < std::max(1, opt_.max_reconnects); ++attempt) {
        if (attempt > 0) {
            const double jitter = static_cast<double>(
                splitmix64(++jitter_state_) % 1024) / 1024.0;
            const double sleep_ms = backoff * (1.0 + 0.5 * jitter);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
            backoff = std::min(backoff * 2.0, opt_.backoff_max_ms);
        }
        try {
            dial();
        } catch (const std::exception&) {
            continue; // daemon may still be restarting/recovering
        }
        bool resubmitted = true;
        for (const auto& [id, req] : outstanding_) {
            if (!write_frame(fd_, encode_job_request(req))) {
                resubmitted = false;
                break;
            }
        }
        if (resubmitted) return;
    }
    throw std::runtime_error(std::string("epocd client: connection lost ") +
                             context + " (reconnects exhausted)");
}

std::uint64_t EpocClient::submit(const std::string& qasm,
                                 const std::string& tenant,
                                 std::int32_t priority, double deadline_ms,
                                 const std::string& backend) {
    JobRequest req;
    req.id = next_id_++;
    req.tenant = tenant;
    req.priority = priority;
    req.deadline_ms = deadline_ms;
    req.qasm = qasm;
    req.backend = backend;
    const std::uint64_t id = req.id;
    // Track before sending: if the write tears the connection, the reconnect
    // path re-submits this job along with the rest (so no second write here —
    // that would duplicate the submission).
    outstanding_.emplace(id, std::move(req));
    if (!write_frame(fd_, encode_job_request(outstanding_.at(id))))
        handle_connection_loss("on submit");
    return id;
}

JobResponse EpocClient::wait_for(std::uint64_t id) {
    // Bound the wait: the per-call timeout, plus — for jobs that carried a
    // deadline — the job's own budget times a grace factor. A job the
    // server *should* answer within D ms must not park the client forever.
    double bound_ms = 0.0;
    if (opt_.call_timeout_ms > 0.0) bound_ms = opt_.call_timeout_ms;
    const auto oit = outstanding_.find(id);
    if (oit != outstanding_.end() && oit->second.deadline_ms > 0.0) {
        const double job_bound = oit->second.deadline_ms * opt_.deadline_grace +
                                 opt_.deadline_slack_ms;
        bound_ms = bound_ms > 0.0 ? std::min(bound_ms, job_bound) : job_bound;
    }
    util::Deadline bound;
    if (bound_ms > 0.0) bound = util::Deadline::after_ms(bound_ms);

    // The bound applies per connection epoch: a reconnect re-submits the job,
    // so the server earns a fresh window to answer it — backoff sleeps and
    // recompute time must not eat a budget meant for the response wait. A
    // flapping server cannot extend the wait forever: after max_reconnects
    // re-arms the bound sticks and the next expiry throws.
    int rearms_left = std::max(1, opt_.max_reconnects);
    auto reconnect = [&](const char* context) {
        handle_connection_loss(context);
        if (bound_ms > 0.0 && rearms_left > 0) {
            --rearms_left;
            bound = util::Deadline::after_ms(bound_ms);
        }
    };

    for (;;) {
        const auto it = pending_.find(id);
        if (it != pending_.end()) {
            JobResponse resp = std::move(it->second);
            pending_.erase(it);
            outstanding_.erase(id);
            return resp;
        }
        std::string payload;
        const IoStatus s = read_frame_deadline(fd_, payload, bound);
        if (s == IoStatus::timeout)
            throw ClientTimeout("epocd client: timed out awaiting response for id " +
                                std::to_string(id));
        if (s == IoStatus::closed) {
            reconnect("awaiting response");
            continue;
        }
        std::optional<JobResponse> resp = decode_job_response(payload);
        if (!resp) {
            // Framing is corrupt; the stream cannot be trusted past this
            // point. With retry enabled a fresh connection recovers.
            if (!opt_.retry)
                throw std::runtime_error("epocd client: malformed response frame");
            reconnect("on malformed frame");
            continue;
        }
        // Only buffer responses we are still waiting for: a replayed or
        // doubly-computed job can answer an id twice, and the second copy
        // must not leak into the buffer forever.
        if (outstanding_.count(resp->id) != 0)
            pending_[resp->id] = std::move(*resp);
    }
}

JobResponse EpocClient::compile(const std::string& qasm,
                                const std::string& tenant,
                                std::int32_t priority, double deadline_ms,
                                const std::string& backend) {
    return wait_for(submit(qasm, tenant, priority, deadline_ms, backend));
}

/// Send `request`, then read frames until one of type `expect` arrives.
/// Job responses arriving in between are buffered for wait_for(). The
/// request must be idempotent — the retry layer re-sends it whole.
std::string EpocClient::transact(MsgType expect, const std::string& request) {
    util::Deadline bound;
    if (opt_.call_timeout_ms > 0.0)
        bound = util::Deadline::after_ms(opt_.call_timeout_ms);
    // Per-connection-epoch bound, as in wait_for: reconnects re-arm it a
    // bounded number of times.
    int rearms_left = std::max(1, opt_.max_reconnects);
    auto rearm = [&] {
        if (opt_.call_timeout_ms > 0.0 && rearms_left > 0) {
            --rearms_left;
            bound = util::Deadline::after_ms(opt_.call_timeout_ms);
        }
    };
    while (!write_frame(fd_, request)) handle_connection_loss("on request");
    for (;;) {
        std::string payload;
        const IoStatus s = read_frame_deadline(fd_, payload, bound);
        if (s == IoStatus::timeout)
            throw ClientTimeout("epocd client: timed out awaiting reply");
        if (s == IoStatus::closed) {
            handle_connection_loss("awaiting reply");
            while (!write_frame(fd_, request)) handle_connection_loss("on request");
            rearm();
            continue;
        }
        const std::optional<MsgType> type = peek_type(payload);
        if (type == expect) return payload;
        if (type == MsgType::job_response) {
            std::optional<JobResponse> resp = decode_job_response(payload);
            if (resp && outstanding_.count(resp->id) != 0)
                pending_[resp->id] = std::move(*resp);
            continue;
        }
        if (!opt_.retry)
            throw std::runtime_error("epocd client: unexpected response type");
        handle_connection_loss("on unexpected frame");
        while (!write_frame(fd_, request)) handle_connection_loss("on request");
        rearm();
    }
}

StatusResponse EpocClient::status() {
    const std::string payload =
        transact(MsgType::status_response, encode_status_request());
    std::optional<StatusResponse> s = decode_status_response(payload);
    if (!s) throw std::runtime_error("epocd client: malformed status frame");
    return *s;
}

void EpocClient::shutdown_server() {
    transact(MsgType::shutdown_response, encode_shutdown_request());
}

} // namespace epoc::service
