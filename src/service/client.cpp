#include "service/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace epoc::service {

EpocClient::EpocClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error("epocd client: socket(): " +
                                 std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd_);
        throw std::runtime_error("epocd client: socket path too long: " +
                                 socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string err = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("epocd client: connect " + socket_path + ": " +
                                 err);
    }
}

EpocClient::~EpocClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::uint64_t EpocClient::submit(const std::string& qasm,
                                 const std::string& tenant,
                                 std::int32_t priority, double deadline_ms) {
    JobRequest req;
    req.id = next_id_++;
    req.tenant = tenant;
    req.priority = priority;
    req.deadline_ms = deadline_ms;
    req.qasm = qasm;
    if (!write_frame(fd_, encode_job_request(req)))
        throw std::runtime_error("epocd client: connection lost on submit");
    return req.id;
}

JobResponse EpocClient::wait_for(std::uint64_t id) {
    for (;;) {
        const auto it = pending_.find(id);
        if (it != pending_.end()) {
            JobResponse resp = std::move(it->second);
            pending_.erase(it);
            return resp;
        }
        std::string payload;
        if (!read_frame(fd_, payload))
            throw std::runtime_error(
                "epocd client: connection lost awaiting response");
        std::optional<JobResponse> resp = decode_job_response(payload);
        if (!resp)
            throw std::runtime_error("epocd client: malformed response frame");
        pending_[resp->id] = std::move(*resp);
    }
}

JobResponse EpocClient::compile(const std::string& qasm,
                                const std::string& tenant,
                                std::int32_t priority, double deadline_ms) {
    return wait_for(submit(qasm, tenant, priority, deadline_ms));
}

std::string EpocClient::transact(MsgType expect) {
    std::string payload;
    if (!read_frame(fd_, payload))
        throw std::runtime_error("epocd client: connection lost");
    if (peek_type(payload) != expect)
        throw std::runtime_error("epocd client: unexpected response type");
    return payload;
}

StatusResponse EpocClient::status() {
    if (!write_frame(fd_, encode_status_request()))
        throw std::runtime_error("epocd client: connection lost on status");
    const std::string payload = transact(MsgType::status_response);
    std::optional<StatusResponse> s = decode_status_response(payload);
    if (!s) throw std::runtime_error("epocd client: malformed status frame");
    return *s;
}

void EpocClient::shutdown_server() {
    if (!write_frame(fd_, encode_shutdown_request()))
        throw std::runtime_error("epocd client: connection lost on shutdown");
    transact(MsgType::shutdown_response);
}

} // namespace epoc::service
