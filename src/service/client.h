// Client for the epocd compile service.
//
// A thin, blocking wrapper over the wire protocol: connect once, then either
// call compile() synchronously or pipeline with submit()/wait_for() —
// submit any number of jobs, then collect results in any order (the daemon
// responds out of submission order; the client buffers responses by id).
//
// Resilience (all opt-in via ClientOptions, off by default):
//
//   * per-call timeouts — wait_for()/status() bound their reads with a
//     deadline-aware poll() instead of blocking forever on a stalled server;
//     a job that carried deadline_ms is additionally bounded by that budget
//     times a grace factor, and expiry surfaces as the distinct
//     ClientTimeout error (a slow server is not a dead server — callers can
//     tell the cases apart);
//   * automatic reconnect — a lost connection is re-dialed with capped
//     exponential backoff plus deterministic jitter;
//   * idempotent re-submission — jobs submitted but not yet answered are
//     re-sent (same id, same payload) on the new connection. The daemon
//     keeps a recent-response table keyed by (tenant, id), so a job whose
//     response was lost in transit is answered from the record instead of
//     being recompiled, and the client observes exactly one response per id.
//
// Ids are seeded from the pid plus a process-wide client serial so that
// re-submitted ids cannot collide with another client of the same tenant.
//
// One EpocClient is ONE socket and is not thread-safe: share a process-wide
// compile stream by giving each thread its own client (the daemon's caches
// dedupe across connections anyway — that is the service's whole point).
#pragma once

#include "service/protocol.h"

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace epoc::service {

/// Thrown by wait_for()/status() when a bounded wait expires. Distinct from
/// the std::runtime_error connection failures: the server may be alive but
/// slow, so retrying the job could duplicate work — the caller decides.
struct ClientTimeout : std::runtime_error {
    explicit ClientTimeout(const std::string& what) : std::runtime_error(what) {}
};

struct ClientOptions {
    /// Master switch for the reconnect + re-submission layer. Off: any
    /// connection loss throws, the historical behavior.
    bool retry = false;
    /// Consecutive failed reconnect attempts before giving up (throwing).
    int max_reconnects = 5;
    /// Capped exponential backoff between reconnect attempts.
    double backoff_initial_ms = 50.0;
    double backoff_max_ms = 2000.0;
    /// Seed for the deterministic jitter added to each backoff sleep.
    std::uint64_t backoff_seed = 1;
    /// Per-call receive timeout for wait_for()/status()/shutdown_server();
    /// 0 disables. Independent of the retry layer.
    double call_timeout_ms = 0.0;
    /// wait_for() on a job that carried deadline_ms is bounded by
    /// deadline_ms * deadline_grace + deadline_slack_ms even when
    /// call_timeout_ms is 0 — a stalled server must not absorb the client
    /// along with the job. Grace covers queueing + response transit.
    ///
    /// Both bounds apply per connection epoch: a successful reconnect
    /// re-submits the job, so the server earns a fresh window — backoff
    /// sleeps and recompute time do not eat the budget meant for the
    /// response wait. Re-arming is capped at max_reconnects per call, so
    /// the total wait stays bounded even against a flapping server.
    double deadline_grace = 2.0;
    double deadline_slack_ms = 1000.0;
};

class EpocClient {
public:
    /// Connect to a running daemon. Throws std::runtime_error when the
    /// socket cannot be reached.
    explicit EpocClient(const std::string& socket_path, ClientOptions opt = {});
    ~EpocClient();

    EpocClient(const EpocClient&) = delete;
    EpocClient& operator=(const EpocClient&) = delete;

    /// Enqueue one compile job; returns the id to pass to wait_for(). Ids
    /// are assigned by the client, unique per connection. Throws on a dead
    /// connection (after the retry layer, when enabled, is exhausted).
    /// `backend` names a hardware backend registered with the daemon; empty
    /// targets the daemon's default device model. An unknown name comes back
    /// as an invalid_input response, not an error.
    std::uint64_t submit(const std::string& qasm, const std::string& tenant,
                         std::int32_t priority = 0, double deadline_ms = 0.0,
                         const std::string& backend = "");

    /// Block until the response for `id` arrives (earlier-arriving responses
    /// for other ids are buffered). Throws ClientTimeout when the bounded
    /// wait expires, std::runtime_error on an unrecoverable connection
    /// failure — never on a failed *job* (failures are JobStatus values).
    JobResponse wait_for(std::uint64_t id);

    /// submit() + wait_for() in one call.
    JobResponse compile(const std::string& qasm, const std::string& tenant,
                        std::int32_t priority = 0, double deadline_ms = 0.0,
                        const std::string& backend = "");

    /// Fetch the daemon's counter snapshot. Job responses arriving while
    /// waiting are buffered for later wait_for() calls.
    StatusResponse status();

    /// Ask the daemon to shut down; returns once the daemon acknowledges.
    void shutdown_server();

    /// Connections consumed so far (1 = the initial dial; more = the retry
    /// layer reconnected). Exposed for tests and chaos accounting.
    int connects() const { return connects_; }

private:
    void dial();
    void handle_connection_loss(const char* context);
    std::string transact(MsgType expect, const std::string& request);

    std::string socket_path_;
    ClientOptions opt_;
    int fd_ = -1;
    int connects_ = 0;
    std::uint64_t next_id_ = 1;
    std::uint64_t jitter_state_ = 0;
    std::map<std::uint64_t, JobRequest> outstanding_; ///< submitted, unanswered
    std::map<std::uint64_t, JobResponse> pending_;    ///< buffered by id
};

} // namespace epoc::service
