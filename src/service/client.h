// Client for the epocd compile service.
//
// A thin, blocking wrapper over the wire protocol: connect once, then either
// call compile() synchronously or pipeline with submit()/wait_for() —
// submit any number of jobs, then collect results in any order (the daemon
// responds out of submission order; the client buffers responses by id).
//
// One EpocClient is ONE socket and is not thread-safe: share a process-wide
// compile stream by giving each thread its own client (the daemon's caches
// dedupe across connections anyway — that is the service's whole point).
#pragma once

#include "service/protocol.h"

#include <cstdint>
#include <map>
#include <string>

namespace epoc::service {

class EpocClient {
public:
    /// Connect to a running daemon. Throws std::runtime_error when the
    /// socket cannot be reached.
    explicit EpocClient(const std::string& socket_path);
    ~EpocClient();

    EpocClient(const EpocClient&) = delete;
    EpocClient& operator=(const EpocClient&) = delete;

    /// Enqueue one compile job; returns the id to pass to wait_for(). Ids
    /// are assigned by the client, unique per connection. Throws on a dead
    /// connection.
    std::uint64_t submit(const std::string& qasm, const std::string& tenant,
                         std::int32_t priority = 0, double deadline_ms = 0.0);

    /// Block until the response for `id` arrives (earlier-arriving responses
    /// for other ids are buffered). Throws on a dead connection or protocol
    /// corruption — never on a failed *job* (failures are JobStatus values).
    JobResponse wait_for(std::uint64_t id);

    /// submit() + wait_for() in one call.
    JobResponse compile(const std::string& qasm, const std::string& tenant,
                        std::int32_t priority = 0, double deadline_ms = 0.0);

    /// Fetch the daemon's counter snapshot. Must not be called with job
    /// responses still uncollected (single request/response stream).
    StatusResponse status();

    /// Ask the daemon to shut down; returns once the daemon acknowledges.
    void shutdown_server();

private:
    std::string transact(MsgType expect);

    int fd_ = -1;
    std::uint64_t next_id_ = 1;
    std::map<std::uint64_t, JobResponse> pending_; ///< buffered by id
};

} // namespace epoc::service
