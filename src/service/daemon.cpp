#include "service/daemon.h"

#include "circuit/qasm.h"
#include "epoc/export.h"
#include "qoc/pulse_io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace epoc::service {

/// Per-client connection state. The reader thread owns the fd's read side;
/// executors write responses through send(), serialized by write_mutex (jobs
/// finish out of submission order, so responses from several executors can
/// target one connection at once). The fd is closed only under write_mutex
/// with `open` already false, so no writer can race the close or hit a
/// recycled descriptor.
struct EpocDaemon::Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mutex;
    bool open = true; // guarded by write_mutex
    /// Cancel tokens of every job this client submitted; fired on
    /// disconnect so the client's queued/in-flight work stops consuming
    /// the service. weak_ptr: a finished job's token may be long gone.
    std::mutex tokens_mutex;
    std::vector<std::weak_ptr<util::CancelToken>> job_tokens;

    bool send(const std::string& payload) {
        std::lock_guard<std::mutex> lock(write_mutex);
        if (!open) return false;
        return write_frame(fd, payload);
    }

    void fire_tokens() {
        std::lock_guard<std::mutex> lock(tokens_mutex);
        for (const auto& weak : job_tokens)
            if (const auto token = weak.lock()) token->cancel();
        job_tokens.clear();
    }

    void close_fd() {
        std::lock_guard<std::mutex> lock(write_mutex);
        if (fd >= 0) ::close(fd);
        fd = -1;
        open = false;
    }
};

EpocDaemon::EpocDaemon(DaemonOptions opt)
    : opt_(std::move(opt)), admission_(opt_.admission) {
    // Per-job deadlines/cancellation arrive with each request; a configured
    // compiler-wide budget would silently cap every client.
    opt_.compiler.deadline_ms = 0.0;
    opt_.compiler.cancel = nullptr;
    compiler_ = std::make_unique<core::EpocCompiler>(opt_.compiler);
    opt_.num_executors = std::max(1, opt_.num_executors);
}

EpocDaemon::~EpocDaemon() { stop(); }

void EpocDaemon::start() {
    if (running_.exchange(true)) return;
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        running_.store(false);
        throw std::runtime_error("epocd: socket(): " +
                                 std::string(std::strerror(errno)));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        running_.store(false);
        throw std::runtime_error("epocd: socket path too long: " +
                                 opt_.socket_path);
    }
    std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.socket_path.c_str()); // stale socket from a crashed daemon
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        running_.store(false);
        throw std::runtime_error("epocd: bind/listen " + opt_.socket_path +
                                 ": " + err);
    }
    for (int i = 0; i < opt_.num_executors; ++i)
        executors_.emplace_back([this] { executor_loop(); });
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void EpocDaemon::wait() {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void EpocDaemon::stop() {
    if (!running_.exchange(false)) return;
    {
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
    }
    // 1. No new jobs; executors will drain what is queued (answering each —
    //    a fired token makes run_job return `cancelled` without compiling).
    admission_.close();
    // 2. Cancel everything in flight so the drain is fast: compiles wind
    //    down through the degradation ladder at the next poll.
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const auto& conn : conns_) conn->fire_tokens();
    }
    for (std::thread& t : executors_) t.join();
    executors_.clear();
    // 3. Wake and reap the accept thread. The close happens only after the
    //    join: closing while accept() still blocks on the fd would let the
    //    kernel recycle the descriptor under it.
    const int lfd = listen_fd_.exchange(-1);
    if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (lfd >= 0) ::close(lfd);
    // 4. Wake the readers (EOF) and reap the connections.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns.swap(conns_);
    }
    for (const auto& conn : conns) {
        ::shutdown(conn->fd, SHUT_RDWR);
        if (conn->reader.joinable()) conn->reader.join();
        conn->close_fd();
    }
    ::unlink(opt_.socket_path.c_str());
}

void EpocDaemon::accept_loop() {
    for (;;) {
        const int lfd = listen_fd_.load();
        if (lfd < 0) return; // stop() already took the socket back
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // listen socket closed (stop()) or fatal — either way out
        }
        if (!running_.load()) {
            ::close(fd);
            return;
        }
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { serve_connection(conn); });
    }
}

void EpocDaemon::serve_connection(std::shared_ptr<Connection> conn) {
    std::string payload;
    while (read_frame(conn->fd, payload)) {
        const std::optional<MsgType> type = peek_type(payload);
        if (!type) {
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            break; // framing is lost; drop the connection
        }
        switch (*type) {
        case MsgType::job_request: {
            std::optional<JobRequest> req = decode_job_request(payload);
            if (!req) {
                bad_frames_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            handle_job_request(conn, std::move(*req));
            break;
        }
        case MsgType::status_request:
            status_requests_.fetch_add(1, std::memory_order_relaxed);
            conn->send(encode_status_response(status()));
            break;
        case MsgType::shutdown_request: {
            conn->send(encode_shutdown_response());
            std::lock_guard<std::mutex> lock(shutdown_mutex_);
            shutdown_requested_ = true;
            shutdown_cv_.notify_all();
            break; // keep serving; the wait()er drives the actual stop()
        }
        default:
            // Response types are client-bound; a client sending one is
            // confused but harmless.
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
    // Disconnect: the client can no longer receive results, so its
    // outstanding jobs only burn shared capacity — cancel them.
    conn->fire_tokens();
    {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        conn->open = false;
    }
}

void EpocDaemon::handle_job_request(const std::shared_ptr<Connection>& conn,
                                    JobRequest&& req) {
    Job job;
    job.request = std::move(req);
    job.cancel = std::make_shared<util::CancelToken>();
    if (job.request.deadline_ms > 0.0)
        job.deadline = util::Deadline::after_ms(job.request.deadline_ms);
    job.deadline.link(job.cancel.get());
    job.enqueued_at = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(conn->tokens_mutex);
        conn->job_tokens.emplace_back(job.cancel);
    }
    const std::uint64_t id = job.request.id;
    std::weak_ptr<Connection> weak_conn = conn;
    job.respond = [weak_conn](const JobResponse& resp) {
        if (const auto c = weak_conn.lock()) c->send(encode_job_response(resp));
    };

    const Verdict verdict = admission_.submit(std::move(job));
    if (verdict == Verdict::admitted) return;
    JobResponse resp;
    resp.id = id;
    switch (verdict) {
    case Verdict::shed_deadline:
        resp.status = JobStatus::shed_deadline;
        resp.detail = "deadline infeasible at admission";
        break;
    case Verdict::rejected_overload:
        resp.status = JobStatus::rejected_overload;
        resp.detail = "service at capacity";
        break;
    default:
        resp.status = JobStatus::cancelled;
        resp.detail = "service shutting down";
        break;
    }
    conn->send(encode_job_response(resp));
}

void EpocDaemon::executor_loop() {
    Job job;
    while (admission_.next(job)) {
        const JobResponse resp = run_job(job);
        // Account before answering: a client that probes the status endpoint
        // right after its response must see its own job in the counters.
        admission_.finish(job, resp);
        job.respond(resp);
        job = Job{}; // drop the token/responder refs before blocking again
    }
}

JobResponse EpocDaemon::run_job(Job& job) {
    JobResponse resp;
    resp.id = job.request.id;
    try {
        if (job.cancel->cancelled()) {
            resp.status = JobStatus::cancelled;
            resp.detail = "cancelled while queued";
            return resp;
        }
        // Late feasibility check: the admission gate passed, but the queue
        // wait may have eaten the budget since.
        if (job.deadline.armed() &&
            job.deadline.remaining_ms() < opt_.admission.min_feasible_ms) {
            resp.status = JobStatus::shed_deadline;
            resp.detail = "budget exhausted while queued";
            return resp;
        }
        circuit::Circuit circuit(0);
        try {
            circuit = circuit::parse_qasm(job.request.qasm);
        } catch (const circuit::QasmError& e) {
            resp.status = JobStatus::invalid_input;
            resp.detail = e.what();
            return resp;
        }
        core::CompileCallOptions call;
        call.cancel = job.cancel.get();
        // Hand the compile whatever budget survived the queue (0 = none
        // requested = unlimited).
        call.deadline_ms =
            job.request.deadline_ms > 0.0 ? job.deadline.remaining_ms() : 0.0;
        const core::EpocResult r = compiler_->compile(circuit, call);

        resp.degraded = r.degraded;
        resp.deadline_hit = r.deadline_hit;
        resp.plan_hit = r.plan_hit;
        resp.digest = qoc::fnv1a64(core::schedule_to_json(r.schedule));
        resp.latency_ns = r.latency_ns;
        resp.esp = r.esp;
        resp.compile_ms = r.compile_ms;
        resp.num_pulses = r.num_pulses;
        resp.blocks_total = r.block_reports.size();
        resp.blocks_degraded = static_cast<std::uint64_t>(
            std::count_if(r.block_reports.begin(), r.block_reports.end(),
                          [](const core::BlockReport& b) { return !b.status.ok(); }));
        if (!r.status.ok() && !r.degraded) {
            // Boundary validation rejected the circuit outright (the result
            // is empty): that is the client's input, not a degradation.
            resp.status = JobStatus::invalid_input;
            resp.detail = r.status.detail;
        } else if (job.cancel->cancelled()) {
            resp.status = JobStatus::cancelled;
            resp.detail = "cancelled mid-compile";
        } else {
            resp.status = JobStatus::ok;
            if (!r.status.ok()) resp.detail = r.status.detail;
        }
        return resp;
    } catch (const std::exception& e) {
        // compile() promises not to throw; this is the belt-and-braces rung
        // that keeps the executor alive and the client answered regardless.
        resp.status = JobStatus::error;
        resp.detail = e.what();
        return resp;
    } catch (...) {
        resp.status = JobStatus::error;
        resp.detail = "unknown exception";
        return resp;
    }
}

StatusResponse EpocDaemon::status() const {
    StatusResponse s;
    const AdmissionSnapshot a = admission_.snapshot();
    auto put = [&s](const std::string& key, std::uint64_t v) {
        s.counters.emplace_back(key, v);
    };
    put("service.connections",
        connections_accepted_.load(std::memory_order_relaxed));
    put("service.bad_frames", bad_frames_.load(std::memory_order_relaxed));
    put("service.status_requests",
        status_requests_.load(std::memory_order_relaxed));
    put("service.queued", a.queued);
    put("service.in_flight", a.in_flight);
    put("service.peak_pending", a.peak_pending);
    for (const auto& [tenant, tc] : a.tenants) {
        const std::string p = "service.tenant." + tenant + ".";
        put(p + "submitted", tc.submitted);
        put(p + "admitted", tc.admitted);
        put(p + "completed", tc.completed);
        put(p + "degraded", tc.degraded);
        put(p + "shed_deadline", tc.shed_deadline);
        put(p + "rejected_overload", tc.rejected_overload);
        put(p + "cancelled", tc.cancelled);
        put(p + "failed", tc.failed);
    }
    // Shared-compiler counters: these aggregate over ALL tenants (the caches
    // are shared — that sharing is the dedup the service exists for, so
    // per-tenant attribution of a hit would be arbitrary).
    const qoc::PulseLibraryStats lib = compiler_->library().stats();
    put("qoc.library_hits", lib.hits);
    put("qoc.library_misses", lib.misses);
    put("qoc.single_flight_waits", lib.single_flight_waits);
    put("qoc.uncached_degraded", lib.uncached_degraded);
    put("qoc.store_hits", lib.store_hits);
    put("qoc.store_misses", lib.store_misses);
    put("qoc.store_rejected", lib.store_rejected);
    put("qoc.store_writes", lib.store_writes);
    if (store::PulseStore* st = compiler_->store()) {
        const store::PulseStoreStats ss = st->stats();
        put("store.hits", ss.hits);
        put("store.misses", ss.misses);
        put("store.writes", ss.writes);
        put("store.corrupt", ss.corrupt);
        put("store.evicted", ss.evicted);
        put("store.invalidated", ss.invalidated);
        put("store.bytes", ss.bytes);
    }
    return s;
}

} // namespace epoc::service
