#include "service/daemon.h"

#include "circuit/qasm.h"
#include "epoc/export.h"
#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace epoc::service {

namespace {

/// Replay-table key: tenants cannot collide with each other, and \x1f
/// cannot appear in a numeric id rendering.
std::string replay_key(const std::string& tenant, std::uint64_t id) {
    return tenant + '\x1f' + std::to_string(id);
}

} // namespace

/// Per-client connection state. The reader thread owns the fd's read side;
/// the writer thread owns the write side, draining a bounded outbox that
/// executors enqueue into — an executor therefore never blocks on a peer's
/// socket buffer. `open` flips false exactly once (disconnect or teardown);
/// the fd is closed only at stop(), after both threads are joined, so no
/// I/O can race a recycled descriptor.
struct EpocDaemon::Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;

    std::mutex mutex; // guards outbox, open, writer_exit
    std::condition_variable outbox_cv;
    std::deque<std::string> outbox;
    bool open = true;
    bool writer_exit = false;

    /// Cancel tokens of every job this client submitted; fired on
    /// disconnect so the client's queued/in-flight work stops consuming
    /// the service. weak_ptr: a finished job's token may be long gone.
    std::mutex tokens_mutex;
    std::vector<std::weak_ptr<util::CancelToken>> job_tokens;

    void fire_tokens() {
        std::lock_guard<std::mutex> lock(tokens_mutex);
        for (const auto& weak : job_tokens)
            if (const auto token = weak.lock()) token->cancel();
        job_tokens.clear();
    }

    /// Mark the connection dead, wake both threads, drop undeliverable
    /// frames, and cancel the client's jobs. Idempotent.
    void disconnect() {
        bool was_open;
        {
            std::lock_guard<std::mutex> lock(mutex);
            was_open = open;
            open = false;
            if (was_open && fd >= 0) ::shutdown(fd, SHUT_RDWR);
            outbox.clear();
            outbox_cv.notify_all();
        }
        if (was_open) fire_tokens();
    }

    /// Queue one frame for the writer. `full` leaves the frame unqueued so
    /// the caller can disconnect-with-accounting.
    enum class Enqueue { queued, full, closed };
    Enqueue enqueue(std::string payload, std::size_t max_frames) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!open) return Enqueue::closed;
        if (outbox.size() >= max_frames) return Enqueue::full;
        outbox.push_back(std::move(payload));
        outbox_cv.notify_all();
        return Enqueue::queued;
    }

    /// Best-effort wait for the writer to drain the outbox (stop() uses
    /// this so cancelled-on-shutdown responses reach still-live clients).
    void flush(const util::Deadline& deadline) {
        std::unique_lock<std::mutex> lock(mutex);
        while (open && !outbox.empty() && !deadline.expired())
            outbox_cv.wait_for(lock, std::chrono::milliseconds(10));
    }

    void close_fd() {
        std::lock_guard<std::mutex> lock(mutex);
        if (fd >= 0) ::close(fd);
        fd = -1;
        open = false;
    }
};

bool EpocDaemon::ReplayTable::lookup(const std::string& key,
                                     JobResponse& out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    out = it->second;
    return true;
}

void EpocDaemon::ReplayTable::insert(const std::string& key,
                                     const JobResponse& resp) {
    if (cap_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, fresh] = map_.try_emplace(key, resp);
    if (!fresh) {
        it->second = resp; // re-submitted and recomputed: keep the latest
        return;
    }
    fifo_.push_back(key);
    while (fifo_.size() > cap_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
    }
}

EpocDaemon::EpocDaemon(DaemonOptions opt)
    : opt_(std::move(opt)), admission_(opt_.admission),
      replay_(opt_.replay_entries) {
    // Per-job deadlines/cancellation arrive with each request; a configured
    // compiler-wide budget would silently cap every client.
    opt_.compiler.deadline_ms = 0.0;
    opt_.compiler.cancel = nullptr;
    compiler_ = std::make_unique<core::EpocCompiler>(opt_.compiler);
    opt_.num_executors = std::max(1, opt_.num_executors);
    if (opt_.backends == nullptr)
        opt_.backends = std::make_shared<backend::BackendRegistry>();
}

EpocDaemon::~EpocDaemon() { stop(); }

void EpocDaemon::start() {
    if (running_.exchange(true)) return;
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        running_.store(false);
        throw std::runtime_error("epocd: socket(): " +
                                 std::string(std::strerror(errno)));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        running_.store(false);
        throw std::runtime_error("epocd: socket path too long: " +
                                 opt_.socket_path);
    }
    std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A leftover socket file may be a crashed daemon's corpse (safe to
    // unlink) or a *live* daemon's front door (unlinking would silently
    // steal its path: new clients reach us, its clients keep it). Probe by
    // connecting: an answer means live, a refusal means stale.
    if (::access(opt_.socket_path.c_str(), F_OK) == 0) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        const bool live =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0;
        if (probe >= 0) ::close(probe);
        if (live) {
            ::close(listen_fd_);
            listen_fd_ = -1;
            running_.store(false);
            throw std::runtime_error("epocd: a live daemon already serves " +
                                     opt_.socket_path);
        }
        ::unlink(opt_.socket_path.c_str()); // stale: crashed daemon's leftover
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        running_.store(false);
        throw std::runtime_error("epocd: bind/listen " + opt_.socket_path +
                                 ": " + err);
    }
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        live_executors_ = opt_.num_executors;
    }
    for (int i = 0; i < opt_.num_executors; ++i)
        executors_.emplace_back([this] { executor_loop(); });
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void EpocDaemon::wait() {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

bool EpocDaemon::wait_for(double ms) {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                          [&] { return shutdown_requested_; });
    return shutdown_requested_;
}

void EpocDaemon::request_shutdown() {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
}

void EpocDaemon::stop() {
    if (!running_.exchange(false)) return;
    request_shutdown();
    // 1. No new jobs; executors will drain what is queued (answering each —
    //    a fired token makes run_job return `cancelled` without compiling).
    admission_.close();
    // 2. Cancel everything in flight so the drain is fast: compiles wind
    //    down through the degradation ladder at the next poll.
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const auto& conn : conns_) conn->fire_tokens();
    }
    // 3. Bounded drain: every queued job must be *answered* (as cancelled)
    //    within the drain budget. Blowing the budget is recorded, not
    //    enforced by abandonment — the joins below still complete because
    //    cancellation is cooperative and polled.
    {
        std::unique_lock<std::mutex> lock(drain_mutex_);
        if (!drain_cv_.wait_for(
                lock, std::chrono::duration<double, std::milli>(opt_.drain_ms),
                [&] { return live_executors_ == 0; }))
            drain_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
    for (std::thread& t : executors_) t.join();
    executors_.clear();
    watchdog_cv_.notify_all();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    // 4. Wake and reap the accept thread. The close happens only after the
    //    join: closing while accept() still blocks on the fd would let the
    //    kernel recycle the descriptor under it.
    const int lfd = listen_fd_.exchange(-1);
    if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (lfd >= 0) ::close(lfd);
    // 5. Let writers deliver the cancelled-on-shutdown responses to clients
    //    that are still reading, then wake the readers (EOF) and reap.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns.swap(conns_);
    }
    const util::Deadline flush_deadline = util::Deadline::after_ms(1000.0);
    for (const auto& conn : conns) conn->flush(flush_deadline);
    for (const auto& conn : conns) {
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            conn->writer_exit = true;
            if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
            conn->outbox_cv.notify_all();
        }
        if (conn->reader.joinable()) conn->reader.join();
        if (conn->writer.joinable()) conn->writer.join();
        conn->close_fd();
    }
    ::unlink(opt_.socket_path.c_str());
}

void EpocDaemon::accept_loop() {
    for (;;) {
        const int lfd = listen_fd_.load();
        if (lfd < 0) return; // stop() already took the socket back
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // listen socket closed (stop()) or fatal — either way out
        }
        if (!running_.load()) {
            ::close(fd);
            return;
        }
        if (util::fault::maybe_fail("service.accept")) {
            // Accept-time failure (fd exhaustion, handshake reset): the
            // client sees an immediate EOF and redials.
            accept_faults_.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            continue;
        }
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_.push_back(conn);
        }
        conn->writer = std::thread([this, conn] { writer_loop(conn); });
        conn->reader = std::thread([this, conn] { serve_connection(conn); });
    }
}

void EpocDaemon::writer_loop(std::shared_ptr<Connection> conn) {
    for (;;) {
        std::string frame;
        {
            std::unique_lock<std::mutex> lock(conn->mutex);
            conn->outbox_cv.wait(lock, [&] {
                return !conn->open || conn->writer_exit || !conn->outbox.empty();
            });
            if (!conn->open) return;
            if (conn->outbox.empty()) {
                if (conn->writer_exit) return;
                continue;
            }
            frame = std::move(conn->outbox.front());
            conn->outbox.pop_front();
            if (conn->outbox.empty()) conn->outbox_cv.notify_all(); // flush()
        }
        const IoStatus s = write_frame_deadline(
            conn->fd, frame, util::Deadline::after_ms(opt_.write_timeout_ms));
        if (s != IoStatus::ok) {
            // A peer too slow to accept one frame within the write timeout
            // is indistinguishable from a wedged one: disconnect with
            // accounting rather than stall the connection's entire outbox.
            (s == IoStatus::timeout ? write_timeouts_ : send_failures_)
                .fetch_add(1, std::memory_order_relaxed);
            conn->disconnect();
            return;
        }
    }
}

void EpocDaemon::serve_connection(std::shared_ptr<Connection> conn) {
    std::string payload;
    while (read_frame(conn->fd, payload)) {
        const std::optional<MsgType> type = peek_type(payload);
        if (!type) {
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            break; // framing is lost; drop the connection
        }
        switch (*type) {
        case MsgType::job_request: {
            std::optional<JobRequest> req = decode_job_request(payload);
            if (!req) {
                bad_frames_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            handle_job_request(conn, std::move(*req));
            break;
        }
        case MsgType::status_request: {
            status_requests_.fetch_add(1, std::memory_order_relaxed);
            if (conn->enqueue(encode_status_response(status()),
                              opt_.max_outbox_frames) ==
                Connection::Enqueue::full) {
                slow_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
                conn->disconnect();
            }
            break;
        }
        case MsgType::shutdown_request: {
            conn->enqueue(encode_shutdown_response(), opt_.max_outbox_frames);
            request_shutdown(); // keep serving; the wait()er drives stop()
            break;
        }
        default:
            // Response types are client-bound; a client sending one is
            // confused but harmless.
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
    // Disconnect: the client can no longer receive results, so its
    // outstanding jobs only burn shared capacity — cancel them.
    conn->disconnect();
}

void EpocDaemon::send_response(const std::shared_ptr<Connection>& conn,
                               const JobResponse& resp) {
    switch (conn->enqueue(encode_job_response(resp), opt_.max_outbox_frames)) {
    case Connection::Enqueue::queued: break;
    case Connection::Enqueue::full:
        // Slow-client protection: a peer that cannot drain its own results
        // loses the connection, never an executor's time.
        slow_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
        conn->disconnect();
        break;
    case Connection::Enqueue::closed:
        send_failures_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
}

void EpocDaemon::handle_job_request(const std::shared_ptr<Connection>& conn,
                                    JobRequest&& req) {
    // Idempotent re-submission: a client that never saw its response (lost
    // to a transport fault) re-sends the same id; answer from the record
    // instead of recompiling. Only completed verdicts are recorded, so a
    // retried job that was cancelled mid-flight genuinely re-runs.
    JobResponse replayed;
    if (opt_.replay_entries > 0 &&
        replay_.lookup(replay_key(req.tenant, req.id), replayed)) {
        replay_hits_.fetch_add(1, std::memory_order_relaxed);
        admission_.record_replay(req.tenant);
        send_response(conn, replayed);
        return;
    }

    Job job;
    job.request = std::move(req);
    if (!job.request.backend.empty()) {
        // Backend validation at admission: an unknown name is answered
        // invalid_input right here — never dropped, never an executor slot.
        job.backend = opt_.backends->find(job.request.backend);
        if (job.backend == nullptr) {
            invalid_backend_.fetch_add(1, std::memory_order_relaxed);
            admission_.record_invalid(job.request.tenant);
            JobResponse resp;
            resp.id = job.request.id;
            resp.status = JobStatus::invalid_input;
            resp.detail = "unknown backend '" + job.request.backend + "'";
            if (opt_.replay_entries > 0)
                replay_.insert(replay_key(job.request.tenant, job.request.id),
                               resp);
            send_response(conn, resp);
            return;
        }
    }
    job.cancel = std::make_shared<util::CancelToken>();
    if (job.request.deadline_ms > 0.0)
        job.deadline = util::Deadline::after_ms(job.request.deadline_ms);
    job.deadline.link(job.cancel.get());
    job.enqueued_at = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(conn->tokens_mutex);
        conn->job_tokens.emplace_back(job.cancel);
    }
    const std::uint64_t id = job.request.id;
    std::weak_ptr<Connection> weak_conn = conn;
    job.respond = [this, weak_conn](const JobResponse& resp) {
        if (const auto c = weak_conn.lock()) send_response(c, resp);
    };

    const Verdict verdict = admission_.submit(std::move(job));
    if (verdict == Verdict::admitted) return;
    JobResponse resp;
    resp.id = id;
    switch (verdict) {
    case Verdict::shed_deadline:
        resp.status = JobStatus::shed_deadline;
        resp.detail = "deadline infeasible at admission";
        break;
    case Verdict::rejected_overload:
        resp.status = JobStatus::rejected_overload;
        resp.detail = "service at capacity";
        break;
    default:
        resp.status = JobStatus::cancelled;
        resp.detail = "service shutting down";
        break;
    }
    send_response(conn, resp);
}

std::uint64_t EpocDaemon::watchdog_register(const Job& job) {
    if (job.request.deadline_ms <= 0.0) return 0; // nothing armed to overrun
    const double budget = job.request.deadline_ms;
    const double grace_ms =
        std::max(opt_.watchdog_min_grace_ms,
                 (std::max(1.0, opt_.watchdog_grace) - 1.0) * budget);
    WatchedJob w;
    w.cancel = job.cancel;
    w.fire_at = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        job.deadline.remaining_ms() + grace_ms));
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    const std::uint64_t slot = ++watchdog_slot_;
    watched_.emplace(slot, std::move(w));
    return slot;
}

void EpocDaemon::watchdog_unregister(std::uint64_t slot) {
    if (slot == 0) return;
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watched_.erase(slot);
}

void EpocDaemon::watchdog_loop() {
    std::unique_lock<std::mutex> lock(watchdog_mutex_);
    while (running_.load()) {
        watchdog_cv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(opt_.watchdog_poll_ms));
        if (!running_.load()) return;
        const auto now = std::chrono::steady_clock::now();
        for (auto& [slot, w] : watched_) {
            if (w.fired || now < w.fire_at) continue;
            // The job blew its deadline *and* the grace: the §4e polling
            // points should have wound it down long ago, so something is
            // wedged — fire its token and take the executor back.
            w.fired = true;
            w.cancel->cancel();
            watchdog_fired_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void EpocDaemon::executor_loop() {
    Job job;
    while (admission_.next(job)) {
        const std::uint64_t slot = watchdog_register(job);
        const JobResponse resp = run_job(job);
        watchdog_unregister(slot);
        // Record completed verdicts for idempotent re-submission before
        // answering: if the response write is the thing that fails, the
        // retried id must already find the record. Only deterministic
        // outcomes are replayable — a degraded ok is a product of runtime
        // circumstance, so a retried id recomputes it instead.
        if (opt_.replay_entries > 0 &&
            ((resp.status == JobStatus::ok && !resp.degraded) ||
             resp.status == JobStatus::invalid_input))
            replay_.insert(replay_key(job.request.tenant, job.request.id), resp);
        // Account before answering: a client that probes the status endpoint
        // right after its response must see its own job in the counters.
        admission_.finish(job, resp);
        job.respond(resp);
        job = Job{}; // drop the token/responder refs before blocking again
    }
    std::lock_guard<std::mutex> lock(drain_mutex_);
    --live_executors_;
    drain_cv_.notify_all();
}

JobResponse EpocDaemon::run_job(Job& job) {
    JobResponse resp;
    resp.id = job.request.id;
    try {
        if (job.cancel->cancelled()) {
            resp.status = JobStatus::cancelled;
            resp.detail = "cancelled while queued";
            return resp;
        }
        // Late feasibility check: the admission gate passed, but the queue
        // wait may have eaten the budget since.
        if (job.deadline.armed() &&
            job.deadline.remaining_ms() < opt_.admission.min_feasible_ms) {
            resp.status = JobStatus::shed_deadline;
            resp.detail = "budget exhausted while queued";
            return resp;
        }
        // A wedge the cooperative deadline cannot break (a stuck dependency,
        // a non-polling loop): only the watchdog firing this job's token
        // gets the executor back. Test-only by construction.
        if (util::fault::maybe_fail("service.executor_stall"))
            while (!job.cancel->cancelled())
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
        circuit::Circuit circuit(0);
        try {
            circuit = circuit::parse_qasm(job.request.qasm);
        } catch (const circuit::QasmError& e) {
            resp.status = JobStatus::invalid_input;
            resp.detail = e.what();
            return resp;
        }
        core::CompileCallOptions call;
        call.cancel = job.cancel.get();
        call.backend = job.backend;
        // Hand the compile whatever budget survived the queue (0 = none
        // requested = unlimited).
        call.deadline_ms =
            job.request.deadline_ms > 0.0 ? job.deadline.remaining_ms() : 0.0;
        core::EpocResult r = compiler_->compile(circuit, call);
        // Shared-compiler hazard: single-flight publishes a cancelled or
        // timed-out leader's degraded pulse to its waiters (then evicts it),
        // so a healthy job can inherit another job's degradation — e.g. a
        // disconnect firing job A's token mid-GRAPE degrades job B, which
        // was waiting on the same pulse key. The waiter cannot tell an
        // inherited non-authoritative pulse from a deterministic one (both
        // surface as infeasible/nonfinite block causes), so a degraded
        // result with our own token and deadline intact is re-compiled once:
        // inherited poison is already evicted and recomputes clean, while a
        // genuinely degraded circuit replays out of the library's cached
        // authoritative entries at almost no cost and ships as-is.
        if (r.degraded && !r.deadline_hit && !job.cancel->cancelled()) {
            degraded_retries_.fetch_add(1, std::memory_order_relaxed);
            if (job.request.deadline_ms > 0.0)
                call.deadline_ms = job.deadline.remaining_ms();
            r = compiler_->compile(circuit, call);
            if (r.degraded)
                degraded_shipped_.fetch_add(1, std::memory_order_relaxed);
        }

        resp.degraded = r.degraded;
        resp.deadline_hit = r.deadline_hit;
        resp.plan_hit = r.plan_hit;
        resp.digest = qoc::fnv1a64(core::schedule_to_json(r.schedule));
        resp.latency_ns = r.latency_ns;
        resp.esp = r.esp;
        resp.compile_ms = r.compile_ms;
        resp.num_pulses = r.num_pulses;
        resp.blocks_total = r.block_reports.size();
        resp.blocks_degraded = static_cast<std::uint64_t>(
            std::count_if(r.block_reports.begin(), r.block_reports.end(),
                          [](const core::BlockReport& b) { return !b.status.ok(); }));
        if (!r.status.ok() && !r.degraded) {
            // Boundary validation rejected the circuit outright (the result
            // is empty): that is the client's input, not a degradation.
            resp.status = JobStatus::invalid_input;
            resp.detail = r.status.detail;
        } else if (job.cancel->cancelled()) {
            resp.status = JobStatus::cancelled;
            resp.detail = "cancelled mid-compile";
        } else {
            resp.status = JobStatus::ok;
            if (!r.status.ok()) resp.detail = r.status.detail;
            if (r.degraded && resp.detail.empty()) {
                // Surface the first degraded unit of work: "ok but degraded"
                // with no explanation is undebuggable from the client side.
                for (const auto& b : r.block_reports)
                    if (!b.status.ok()) {
                        resp.detail = b.label + ": " + b.status.to_string();
                        break;
                    }
            }
        }
        return resp;
    } catch (const std::exception& e) {
        // compile() promises not to throw; this is the belt-and-braces rung
        // that keeps the executor alive and the client answered regardless.
        resp.status = JobStatus::error;
        resp.detail = e.what();
        return resp;
    } catch (...) {
        resp.status = JobStatus::error;
        resp.detail = "unknown exception";
        return resp;
    }
}

StatusResponse EpocDaemon::status() const {
    StatusResponse s;
    const AdmissionSnapshot a = admission_.snapshot();
    auto put = [&s](const std::string& key, std::uint64_t v) {
        s.counters.emplace_back(key, v);
    };
    put("service.connections",
        connections_accepted_.load(std::memory_order_relaxed));
    put("service.bad_frames", bad_frames_.load(std::memory_order_relaxed));
    put("service.status_requests",
        status_requests_.load(std::memory_order_relaxed));
    put("service.accept_faults",
        accept_faults_.load(std::memory_order_relaxed));
    put("service.watchdog_fired",
        watchdog_fired_.load(std::memory_order_relaxed));
    put("service.slow_client_disconnects",
        slow_client_disconnects_.load(std::memory_order_relaxed));
    put("service.write_timeouts",
        write_timeouts_.load(std::memory_order_relaxed));
    put("service.send_failures",
        send_failures_.load(std::memory_order_relaxed));
    put("service.replay_hits", replay_hits_.load(std::memory_order_relaxed));
    put("service.invalid_backend",
        invalid_backend_.load(std::memory_order_relaxed));
    put("service.degraded_retries",
        degraded_retries_.load(std::memory_order_relaxed));
    put("service.degraded_shipped",
        degraded_shipped_.load(std::memory_order_relaxed));
    put("service.drain_deadline_exceeded",
        drain_deadline_exceeded_.load(std::memory_order_relaxed));
    put("service.queued", a.queued);
    put("service.in_flight", a.in_flight);
    put("service.peak_pending", a.peak_pending);
    for (const auto& [tenant, tc] : a.tenants) {
        const std::string p = "service.tenant." + tenant + ".";
        put(p + "submitted", tc.submitted);
        put(p + "admitted", tc.admitted);
        put(p + "completed", tc.completed);
        put(p + "degraded", tc.degraded);
        put(p + "shed_deadline", tc.shed_deadline);
        put(p + "rejected_overload", tc.rejected_overload);
        put(p + "cancelled", tc.cancelled);
        put(p + "failed", tc.failed);
        put(p + "replayed", tc.replayed);
    }
    // Shared-compiler counters: these aggregate over ALL tenants (the caches
    // are shared — that sharing is the dedup the service exists for, so
    // per-tenant attribution of a hit would be arbitrary).
    const qoc::PulseLibraryStats lib = compiler_->library().stats();
    put("qoc.library_hits", lib.hits);
    put("qoc.library_misses", lib.misses);
    put("qoc.single_flight_waits", lib.single_flight_waits);
    put("qoc.uncached_degraded", lib.uncached_degraded);
    put("qoc.store_hits", lib.store_hits);
    put("qoc.store_pack_hits", lib.store_pack_hits);
    put("qoc.store_misses", lib.store_misses);
    put("qoc.store_rejected", lib.store_rejected);
    put("qoc.store_writes", lib.store_writes);
    if (store::PulseStore* st = compiler_->store()) {
        const store::PulseStoreStats ss = st->stats();
        put("store.hits", ss.hits);
        put("store.misses", ss.misses);
        put("store.writes", ss.writes);
        put("store.corrupt", ss.corrupt);
        put("store.evicted", ss.evicted);
        put("store.invalidated", ss.invalidated);
        put("store.io_errors", ss.io_errors);
        put("store.disabled_enospc", ss.disabled_enospc);
        put("store.skipped_disabled", ss.skipped_disabled);
        put("store.quarantine_evicted", ss.quarantine_evicted);
        put("store.bytes", ss.bytes);
        // Shared pack tier: the per-daemon view a fleet operator reads to
        // see whether the shipped warm library is actually being hit.
        put("store.pack.hits", ss.pack_hits);
        put("store.pack.denied", ss.pack_denied);
        put("store.pack.corrupt", ss.pack_corrupt);
        put("store.pack.suspect", ss.pack_suspect);
        put("store.pack.open", ss.packs_open);
        put("store.pack.entries", ss.pack_entries);
        put("store.pack.packed", ss.packed);
        put("store.pack.bytes", ss.pack_bytes);
    }
    return s;
}

} // namespace epoc::service
