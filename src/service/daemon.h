// epocd: the long-running compile-service daemon.
//
// One EpocDaemon owns one shared EpocCompiler — one pulse library, one
// synthesis cache, one plan cache, one (optional) on-disk pulse store — and
// serves compile jobs from any number of clients over an AF_UNIX socket
// (service/protocol.h). That sharing is the point: identical unitary blocks
// submitted by different clients dedupe through the caches' single-flight
// paths, so the thousandth GHZ-preparation circuit costs lookups, not GRAPE.
//
// Threading model:
//
//   accept thread  -> one reader thread per connection -> AdmissionController
//                                                          (fair queue)
//   executor threads (num_executors) <- AdmissionController::next()
//       each runs EpocCompiler::compile(circuit, per-call options)
//
// compile() is safe for concurrent callers (see epoc/pipeline.h), and the
// compiler's ThreadPool round-robins block-level work across the concurrent
// compiles, so a wide job and a burst of narrow jobs make progress together.
//
// Every job gets exactly one response, always — admission verdicts, parse
// failures, compile degradations and internal errors all come back as a
// JobResponse with the appropriate status; no path lets an exception escape
// to kill an executor or silently drop a request. Client disconnect fires
// the connection's job tokens (queued jobs then shed at dispatch; in-flight
// compiles wind down through the §4e ladder); stop() does the same globally.
#pragma once

#include "epoc/pipeline.h"
#include "service/admission.h"
#include "service/protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace epoc::service {

struct DaemonOptions {
    /// Filesystem path for the listening socket; created on start(),
    /// unlinked on stop(). A stale path from a crashed daemon is re-bound.
    std::string socket_path = "/tmp/epocd.sock";
    /// Concurrent compile jobs (executor threads). The compiler's own
    /// thread pool parallelizes inside each compile on top of this.
    int num_executors = 2;
    AdmissionOptions admission;
    /// Configuration for the shared compiler (deadline/cancel fields are
    /// ignored — per-job budgets arrive with each request).
    core::EpocOptions compiler;
};

class EpocDaemon {
public:
    explicit EpocDaemon(DaemonOptions opt);
    ~EpocDaemon(); ///< calls stop()

    EpocDaemon(const EpocDaemon&) = delete;
    EpocDaemon& operator=(const EpocDaemon&) = delete;

    /// Bind the socket and spawn the accept + executor threads. Throws
    /// std::runtime_error when the socket cannot be created or bound.
    void start();

    /// Block until a client's shutdown request (or a stop() from another
    /// thread) ends the serving loop.
    void wait();

    /// Drain and terminate: stop admitting, cancel in-flight jobs, answer
    /// queued jobs as cancelled, join every thread, unlink the socket.
    /// Idempotent; safe to call from any thread except an executor's.
    void stop();

    /// The flat counter snapshot the status endpoint serves; also handy for
    /// in-process tests.
    StatusResponse status() const;

    const std::string& socket_path() const { return opt_.socket_path; }

private:
    struct Connection;

    void accept_loop();
    void serve_connection(std::shared_ptr<Connection> conn);
    void executor_loop();
    JobResponse run_job(Job& job);
    void handle_job_request(const std::shared_ptr<Connection>& conn,
                            JobRequest&& req);

    DaemonOptions opt_;
    std::unique_ptr<core::EpocCompiler> compiler_;
    AdmissionController admission_;

    // Written by start()/stop(), read each iteration by the accept thread.
    std::atomic<int> listen_fd_{-1};
    std::thread accept_thread_;
    std::vector<std::thread> executors_;
    std::mutex conns_mutex_;
    std::vector<std::shared_ptr<Connection>> conns_;

    std::atomic<bool> running_{false};
    std::mutex shutdown_mutex_;
    std::condition_variable shutdown_cv_;
    bool shutdown_requested_ = false;

    // service.* counters not covered by the admission snapshot.
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> bad_frames_{0};
    std::atomic<std::uint64_t> status_requests_{0};
};

} // namespace epoc::service
