// epocd: the long-running compile-service daemon.
//
// One EpocDaemon owns one shared EpocCompiler — one pulse library, one
// synthesis cache, one plan cache, one (optional) on-disk pulse store — and
// serves compile jobs from any number of clients over an AF_UNIX socket
// (service/protocol.h). That sharing is the point: identical unitary blocks
// submitted by different clients dedupe through the caches' single-flight
// paths, so the thousandth GHZ-preparation circuit costs lookups, not GRAPE.
//
// Threading model:
//
//   accept thread  -> one reader thread per connection -> AdmissionController
//                      one writer thread per connection     (fair queue)
//   executor threads (num_executors) <- AdmissionController::next()
//       each runs EpocCompiler::compile(circuit, per-call options)
//   watchdog thread: fires the CancelToken of any job overrunning its armed
//       deadline by a grace factor (service.watchdog_fired)
//
// compile() is safe for concurrent callers (see epoc/pipeline.h), and the
// compiler's ThreadPool round-robins block-level work across the concurrent
// compiles, so a wide job and a burst of narrow jobs make progress together.
//
// Executors never block on a client: responses are queued on the
// connection's bounded outbox and drained by its writer thread under a write
// timeout — a slow or wedged client overflows its outbox (or times out a
// write) and is disconnected with accounting, while the executor has long
// moved on.
//
// Every job gets exactly one response, always — admission verdicts, parse
// failures, compile degradations and internal errors all come back as a
// JobResponse with the appropriate status; no path lets an exception escape
// to kill an executor or silently drop a request. Client disconnect fires
// the connection's job tokens (queued jobs then shed at dispatch; in-flight
// compiles wind down through the §4e ladder); stop() does the same globally.
// Completed verdicts (ok / invalid_input) are additionally recorded in a
// bounded replay table keyed by (tenant, id): a client that lost the
// response to a transport fault re-submits the same id and is answered from
// the record — the idempotence that makes client-side retry safe.
#pragma once

#include "epoc/pipeline.h"
#include "service/admission.h"
#include "service/protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace epoc::service {

struct DaemonOptions {
    /// Filesystem path for the listening socket; created on start(),
    /// unlinked on stop(). A stale path from a crashed daemon is probed
    /// (connect) and unlinked only when nothing answers — start() throws
    /// when a live daemon already holds the path.
    std::string socket_path = "/tmp/epocd.sock";
    /// Concurrent compile jobs (executor threads). The compiler's own
    /// thread pool parallelizes inside each compile on top of this.
    int num_executors = 2;
    AdmissionOptions admission;
    /// Configuration for the shared compiler (deadline/cancel fields are
    /// ignored — per-job budgets arrive with each request).
    core::EpocOptions compiler;
    /// Registry the per-job `backend` field resolves against. nullptr (the
    /// default) makes the daemon construct a registry of the built-in
    /// devices; pass a pre-populated one to serve custom (JSON-registered)
    /// backends.
    std::shared_ptr<backend::BackendRegistry> backends;

    /// Watchdog scan period. The watchdog fires a job's cancel token once
    /// the job has overrun its armed deadline by
    /// max(watchdog_min_grace_ms, (watchdog_grace - 1) * budget) — i.e. a
    /// grace factor of 2 allows a job its budget twice over before the
    /// service takes the executor back. Deadline-free jobs are not watched.
    double watchdog_poll_ms = 25.0;
    double watchdog_grace = 2.0;
    double watchdog_min_grace_ms = 100.0;

    /// Slow-client protection: responses queued per connection beyond this
    /// disconnect the client (service.slow_client_disconnects), and a single
    /// response write slower than write_timeout_ms does the same — an
    /// executor is never parked behind a wedged peer.
    std::size_t max_outbox_frames = 256;
    double write_timeout_ms = 5000.0;

    /// Completed responses remembered for idempotent re-submission, keyed
    /// by (tenant, id). 0 disables replay (a retried id recompiles).
    std::size_t replay_entries = 1024;

    /// stop() drain budget: how long to wait for executors to answer the
    /// queue before bumping service.drain_deadline_exceeded (threads are
    /// still joined — cancellation makes that prompt; the counter records
    /// that the budget was blown, it does not abandon threads).
    double drain_ms = 10000.0;
};

class EpocDaemon {
public:
    explicit EpocDaemon(DaemonOptions opt);
    ~EpocDaemon(); ///< calls stop()

    EpocDaemon(const EpocDaemon&) = delete;
    EpocDaemon& operator=(const EpocDaemon&) = delete;

    /// Bind the socket and spawn the accept + executor + watchdog threads.
    /// Throws std::runtime_error when the socket cannot be created or bound,
    /// or when a live daemon already serves socket_path.
    void start();

    /// Block until a client's shutdown request (or a stop() from another
    /// thread) ends the serving loop.
    void wait();

    /// wait(), bounded: returns true when shutdown was requested within
    /// `ms`, false on timeout. The polling primitive a signal-driven main
    /// loop needs (signal handlers can only set a flag; the loop checks it
    /// between bounded waits).
    bool wait_for(double ms);

    /// Drain and terminate: stop admitting, cancel in-flight jobs, answer
    /// queued jobs as cancelled, join every thread, unlink the socket.
    /// Idempotent; safe to call from any thread except an executor's.
    void stop();

    /// Wake wait()/wait_for() without stopping — lets a signal-watching
    /// thread hand control back to whoever drives stop().
    void request_shutdown();

    /// The flat counter snapshot the status endpoint serves; also handy for
    /// in-process tests.
    StatusResponse status() const;

    const std::string& socket_path() const { return opt_.socket_path; }

private:
    struct Connection;

    /// Bounded (tenant, id) -> completed JobResponse table, FIFO-evicted.
    class ReplayTable {
    public:
        explicit ReplayTable(std::size_t cap) : cap_(cap) {}
        bool lookup(const std::string& key, JobResponse& out) const;
        void insert(const std::string& key, const JobResponse& resp);

    private:
        std::size_t cap_;
        mutable std::mutex mutex_;
        std::unordered_map<std::string, JobResponse> map_;
        std::deque<std::string> fifo_;
    };

    void accept_loop();
    void serve_connection(std::shared_ptr<Connection> conn);
    void writer_loop(std::shared_ptr<Connection> conn);
    void executor_loop();
    void watchdog_loop();
    JobResponse run_job(Job& job);
    void handle_job_request(const std::shared_ptr<Connection>& conn,
                            JobRequest&& req);
    void send_response(const std::shared_ptr<Connection>& conn,
                       const JobResponse& resp);
    std::uint64_t watchdog_register(const Job& job);
    void watchdog_unregister(std::uint64_t slot);

    DaemonOptions opt_;
    std::unique_ptr<core::EpocCompiler> compiler_;
    AdmissionController admission_;
    ReplayTable replay_;

    // Written by start()/stop(), read each iteration by the accept thread.
    std::atomic<int> listen_fd_{-1};
    std::thread accept_thread_;
    std::thread watchdog_thread_;
    std::vector<std::thread> executors_;
    std::mutex conns_mutex_;
    std::vector<std::shared_ptr<Connection>> conns_;

    std::atomic<bool> running_{false};
    std::mutex shutdown_mutex_;
    std::condition_variable shutdown_cv_;
    bool shutdown_requested_ = false;

    // Drain accounting: executors still in their loop; stop() waits (bounded
    // by drain_ms) for this to reach zero before joining.
    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;
    int live_executors_ = 0;

    // Watchdog registry: in-flight jobs with armed deadlines.
    struct WatchedJob {
        std::shared_ptr<util::CancelToken> cancel;
        std::chrono::steady_clock::time_point fire_at;
        bool fired = false;
    };
    std::mutex watchdog_mutex_;
    std::condition_variable watchdog_cv_;
    std::unordered_map<std::uint64_t, WatchedJob> watched_;
    std::uint64_t watchdog_slot_ = 0;

    // service.* counters not covered by the admission snapshot.
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> bad_frames_{0};
    std::atomic<std::uint64_t> status_requests_{0};
    std::atomic<std::uint64_t> accept_faults_{0};
    std::atomic<std::uint64_t> watchdog_fired_{0};
    std::atomic<std::uint64_t> slow_client_disconnects_{0};
    std::atomic<std::uint64_t> write_timeouts_{0};
    std::atomic<std::uint64_t> send_failures_{0};
    std::atomic<std::uint64_t> replay_hits_{0};
    /// Jobs naming a backend the registry does not know (answered
    /// invalid_input at admission).
    std::atomic<std::uint64_t> invalid_backend_{0};
    std::atomic<std::uint64_t> drain_deadline_exceeded_{0};
    /// Healthy jobs whose first compile came back degraded (inherited another
    /// job's cancellation via the shared compiler) and were re-compiled once.
    std::atomic<std::uint64_t> degraded_retries_{0};
    /// Retries that were still degraded — the result shipped as-is.
    std::atomic<std::uint64_t> degraded_shipped_{0};
};

} // namespace epoc::service
