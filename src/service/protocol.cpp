#include "service/protocol.h"

#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <cerrno>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace epoc::service {

namespace {

using qoc::ByteReader;
using qoc::put_f64;
using qoc::put_u32;
using qoc::put_u64;
using qoc::put_u8;

void put_str(std::string& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/// Strings ride inside an already length-capped frame; the declared length
/// just has to fit the bytes actually present (a lying length field must not
/// read past the buffer or size a wild allocation).
bool get_str(ByteReader& in, std::string& out) {
    std::uint32_t len = 0;
    if (!in.get_u32(len)) return false;
    return in.get_bytes(out, len);
}

bool get_bool(ByteReader& in, bool& out) {
    std::uint8_t b = 0;
    if (!in.get_u8(b)) return false;
    if (b > 1) return false; // flags are strictly 0/1; anything else is rot
    out = b != 0;
    return true;
}

bool get_type(ByteReader& in, MsgType want) {
    std::uint8_t type = 0;
    return in.get_u8(type) && type == static_cast<std::uint8_t>(want);
}

} // namespace

const char* job_status_name(JobStatus s) {
    switch (s) {
    case JobStatus::ok: return "ok";
    case JobStatus::shed_deadline: return "shed_deadline";
    case JobStatus::rejected_overload: return "rejected_overload";
    case JobStatus::invalid_input: return "invalid_input";
    case JobStatus::cancelled: return "cancelled";
    case JobStatus::error: return "error";
    }
    return "unknown";
}

std::string encode_job_request(const JobRequest& req) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::job_request));
    put_u64(out, req.id);
    put_str(out, req.tenant);
    put_u32(out, static_cast<std::uint32_t>(req.priority));
    put_f64(out, req.deadline_ms);
    put_str(out, req.qasm);
    put_str(out, req.backend);
    return out;
}

std::string encode_job_response(const JobResponse& resp) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::job_response));
    put_u64(out, resp.id);
    put_u8(out, static_cast<std::uint8_t>(resp.status));
    put_u8(out, resp.degraded ? 1 : 0);
    put_u8(out, resp.deadline_hit ? 1 : 0);
    put_u8(out, resp.plan_hit ? 1 : 0);
    put_u64(out, resp.digest);
    put_f64(out, resp.latency_ns);
    put_f64(out, resp.esp);
    put_f64(out, resp.compile_ms);
    put_u64(out, resp.num_pulses);
    put_u64(out, resp.blocks_total);
    put_u64(out, resp.blocks_degraded);
    put_str(out, resp.detail);
    return out;
}

std::string encode_status_request() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::status_request));
    return out;
}

std::string encode_status_response(const StatusResponse& s) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::status_response));
    put_u32(out, static_cast<std::uint32_t>(s.counters.size()));
    for (const auto& [key, value] : s.counters) {
        put_str(out, key);
        put_u64(out, value);
    }
    return out;
}

std::string encode_shutdown_request() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::shutdown_request));
    return out;
}

std::string encode_shutdown_response() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::shutdown_response));
    return out;
}

std::optional<MsgType> peek_type(const std::string& payload) {
    if (payload.empty()) return std::nullopt;
    const auto t = static_cast<std::uint8_t>(payload[0]);
    if (t < static_cast<std::uint8_t>(MsgType::job_request) ||
        t > static_cast<std::uint8_t>(MsgType::shutdown_response))
        return std::nullopt;
    return static_cast<MsgType>(t);
}

std::optional<JobRequest> decode_job_request(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::job_request)) return std::nullopt;
    JobRequest req;
    std::uint32_t prio = 0;
    if (!in.get_u64(req.id) || !get_str(in, req.tenant) || !in.get_u32(prio) ||
        !in.get_f64(req.deadline_ms) || !get_str(in, req.qasm) ||
        !get_str(in, req.backend) || !in.done())
        return std::nullopt;
    req.priority = static_cast<std::int32_t>(prio);
    return req;
}

std::optional<JobResponse> decode_job_response(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::job_response)) return std::nullopt;
    JobResponse resp;
    std::uint8_t status = 0;
    if (!in.get_u64(resp.id) || !in.get_u8(status) ||
        status > static_cast<std::uint8_t>(JobStatus::error))
        return std::nullopt;
    resp.status = static_cast<JobStatus>(status);
    if (!get_bool(in, resp.degraded) || !get_bool(in, resp.deadline_hit) ||
        !get_bool(in, resp.plan_hit) || !in.get_u64(resp.digest) ||
        !in.get_f64(resp.latency_ns) || !in.get_f64(resp.esp) ||
        !in.get_f64(resp.compile_ms) || !in.get_u64(resp.num_pulses) ||
        !in.get_u64(resp.blocks_total) || !in.get_u64(resp.blocks_degraded) ||
        !get_str(in, resp.detail) || !in.done())
        return std::nullopt;
    return resp;
}

std::optional<StatusResponse> decode_status_response(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::status_response)) return std::nullopt;
    std::uint32_t n = 0;
    if (!in.get_u32(n)) return std::nullopt;
    // Each entry needs at least 4 (key length) + 8 (value) bytes: cap the
    // declared count against the bytes actually present before reserving.
    if (static_cast<std::size_t>(n) * 12 > in.remaining()) return std::nullopt;
    StatusResponse s;
    s.counters.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string key;
        std::uint64_t value = 0;
        if (!get_str(in, key) || !in.get_u64(value)) return std::nullopt;
        s.counters.emplace_back(std::move(key), value);
    }
    if (!in.done()) return std::nullopt;
    return s;
}

namespace {

/// Block until `fd` is ready for `events`, bounded by `deadline`. 1 = ready,
/// 0 = deadline expired, -1 = poll failed. An unarmed deadline waits
/// indefinitely. EINTR storms just re-poll (with the remaining budget).
int wait_io(int fd, short events, const util::Deadline& deadline) {
    for (;;) {
        int timeout_ms = -1;
        if (deadline.armed()) {
            const double left = deadline.remaining_ms();
            if (left <= 0.0) return 0;
            // Cap each poll so a clock deadline is honored within ~100ms
            // even when the kernel rounds the timeout.
            timeout_ms = static_cast<int>(std::min(left, 100.0)) + 1;
        }
        pollfd p{};
        p.fd = fd;
        p.events = events;
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR) continue;
            return -1;
        }
        if (rc > 0) return 1; // readable/writable/error — read/write decides
        if (deadline.armed() && deadline.expired()) return 0;
    }
}

IoStatus write_all(int fd, const char* data, std::size_t size,
                   const util::Deadline& deadline) {
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not as a
        // process-killing SIGPIPE from inside the daemon's writer.
        // MSG_DONTWAIT: a full socket buffer (slow client) parks us in
        // poll() below, where the deadline is enforced, instead of in an
        // unbounded blocking send.
        const ssize_t n = ::send(fd, data + sent, size - sent,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int w = wait_io(fd, POLLOUT, deadline);
                if (w == 0) return IoStatus::timeout;
                if (w < 0) return IoStatus::closed;
                continue;
            }
            return IoStatus::closed;
        }
        if (n == 0) return IoStatus::closed;
        sent += static_cast<std::size_t>(n);
    }
    return IoStatus::ok;
}

IoStatus read_exact(int fd, char* buf, std::size_t n,
                    const util::Deadline& deadline) {
    std::size_t got = 0;
    while (got < n) {
        const int w = wait_io(fd, POLLIN, deadline);
        if (w == 0) return IoStatus::timeout;
        if (w < 0) return IoStatus::closed;
        const ssize_t r = ::read(fd, buf + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            return IoStatus::closed;
        }
        if (r == 0) return IoStatus::closed; // EOF mid-frame or at a boundary
        got += static_cast<std::size_t>(r);
    }
    return IoStatus::ok;
}

} // namespace

IoStatus write_frame_deadline(int fd, const std::string& payload,
                              const util::Deadline& deadline) {
    if (payload.size() > kMaxFrameBytes) return IoStatus::closed;
    std::string frame;
    frame.reserve(4 + payload.size());
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.append(payload);
    if (util::fault::maybe_fail("service.write")) {
        // Torn write: a short prefix escapes to the peer (desynchronizing
        // its framing mid-frame), then the connection is reported dead.
        // Best-effort — the tear is the point, not the delivery.
        (void)::send(fd, frame.data(), std::min<std::size_t>(7, frame.size()),
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        return IoStatus::closed;
    }
    return write_all(fd, frame.data(), frame.size(), deadline);
}

IoStatus read_frame_deadline(int fd, std::string& payload,
                             const util::Deadline& deadline) {
    if (util::fault::maybe_fail("service.read"))
        return IoStatus::closed; // mid-frame reset / EINTR storm exhausted
    char head[4];
    IoStatus s = read_exact(fd, head, 4, deadline);
    if (s != IoStatus::ok) return s;
    ByteReader r(head, 4);
    std::uint32_t len = 0;
    r.get_u32(len);
    if (len > kMaxFrameBytes) return IoStatus::closed;
    payload.resize(len);
    if (len > 0) {
        s = read_exact(fd, payload.data(), len, deadline);
        if (s != IoStatus::ok) return s;
    }
    if (util::fault::maybe_fail("service.frame") && !payload.empty()) {
        // Frame rot: the type byte is clobbered with a value no message
        // uses, so every decoder rejects it — the corruption is always
        // *detectable* (a flipped payload byte could decode into a
        // different, valid request, which no amount of hardening could
        // distinguish from a legitimate one).
        payload[0] = '\x7f';
    }
    return IoStatus::ok;
}

bool write_frame(int fd, const std::string& payload) {
    return write_frame_deadline(fd, payload, util::Deadline()) == IoStatus::ok;
}

bool read_frame(int fd, std::string& payload) {
    return read_frame_deadline(fd, payload, util::Deadline()) == IoStatus::ok;
}

} // namespace epoc::service
