#include "service/protocol.h"

#include "qoc/pulse_io.h"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

namespace epoc::service {

namespace {

using qoc::ByteReader;
using qoc::put_f64;
using qoc::put_u32;
using qoc::put_u64;
using qoc::put_u8;

void put_str(std::string& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/// Strings ride inside an already length-capped frame; the declared length
/// just has to fit the bytes actually present (a lying length field must not
/// read past the buffer or size a wild allocation).
bool get_str(ByteReader& in, std::string& out) {
    std::uint32_t len = 0;
    if (!in.get_u32(len)) return false;
    return in.get_bytes(out, len);
}

bool get_bool(ByteReader& in, bool& out) {
    std::uint8_t b = 0;
    if (!in.get_u8(b)) return false;
    if (b > 1) return false; // flags are strictly 0/1; anything else is rot
    out = b != 0;
    return true;
}

bool get_type(ByteReader& in, MsgType want) {
    std::uint8_t type = 0;
    return in.get_u8(type) && type == static_cast<std::uint8_t>(want);
}

} // namespace

const char* job_status_name(JobStatus s) {
    switch (s) {
    case JobStatus::ok: return "ok";
    case JobStatus::shed_deadline: return "shed_deadline";
    case JobStatus::rejected_overload: return "rejected_overload";
    case JobStatus::invalid_input: return "invalid_input";
    case JobStatus::cancelled: return "cancelled";
    case JobStatus::error: return "error";
    }
    return "unknown";
}

std::string encode_job_request(const JobRequest& req) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::job_request));
    put_u64(out, req.id);
    put_str(out, req.tenant);
    put_u32(out, static_cast<std::uint32_t>(req.priority));
    put_f64(out, req.deadline_ms);
    put_str(out, req.qasm);
    return out;
}

std::string encode_job_response(const JobResponse& resp) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::job_response));
    put_u64(out, resp.id);
    put_u8(out, static_cast<std::uint8_t>(resp.status));
    put_u8(out, resp.degraded ? 1 : 0);
    put_u8(out, resp.deadline_hit ? 1 : 0);
    put_u8(out, resp.plan_hit ? 1 : 0);
    put_u64(out, resp.digest);
    put_f64(out, resp.latency_ns);
    put_f64(out, resp.esp);
    put_f64(out, resp.compile_ms);
    put_u64(out, resp.num_pulses);
    put_u64(out, resp.blocks_total);
    put_u64(out, resp.blocks_degraded);
    put_str(out, resp.detail);
    return out;
}

std::string encode_status_request() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::status_request));
    return out;
}

std::string encode_status_response(const StatusResponse& s) {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::status_response));
    put_u32(out, static_cast<std::uint32_t>(s.counters.size()));
    for (const auto& [key, value] : s.counters) {
        put_str(out, key);
        put_u64(out, value);
    }
    return out;
}

std::string encode_shutdown_request() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::shutdown_request));
    return out;
}

std::string encode_shutdown_response() {
    std::string out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::shutdown_response));
    return out;
}

std::optional<MsgType> peek_type(const std::string& payload) {
    if (payload.empty()) return std::nullopt;
    const auto t = static_cast<std::uint8_t>(payload[0]);
    if (t < static_cast<std::uint8_t>(MsgType::job_request) ||
        t > static_cast<std::uint8_t>(MsgType::shutdown_response))
        return std::nullopt;
    return static_cast<MsgType>(t);
}

std::optional<JobRequest> decode_job_request(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::job_request)) return std::nullopt;
    JobRequest req;
    std::uint32_t prio = 0;
    if (!in.get_u64(req.id) || !get_str(in, req.tenant) || !in.get_u32(prio) ||
        !in.get_f64(req.deadline_ms) || !get_str(in, req.qasm) || !in.done())
        return std::nullopt;
    req.priority = static_cast<std::int32_t>(prio);
    return req;
}

std::optional<JobResponse> decode_job_response(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::job_response)) return std::nullopt;
    JobResponse resp;
    std::uint8_t status = 0;
    if (!in.get_u64(resp.id) || !in.get_u8(status) ||
        status > static_cast<std::uint8_t>(JobStatus::error))
        return std::nullopt;
    resp.status = static_cast<JobStatus>(status);
    if (!get_bool(in, resp.degraded) || !get_bool(in, resp.deadline_hit) ||
        !get_bool(in, resp.plan_hit) || !in.get_u64(resp.digest) ||
        !in.get_f64(resp.latency_ns) || !in.get_f64(resp.esp) ||
        !in.get_f64(resp.compile_ms) || !in.get_u64(resp.num_pulses) ||
        !in.get_u64(resp.blocks_total) || !in.get_u64(resp.blocks_degraded) ||
        !get_str(in, resp.detail) || !in.done())
        return std::nullopt;
    return resp;
}

std::optional<StatusResponse> decode_status_response(const std::string& payload) {
    ByteReader in(payload.data(), payload.size());
    if (!get_type(in, MsgType::status_response)) return std::nullopt;
    std::uint32_t n = 0;
    if (!in.get_u32(n)) return std::nullopt;
    // Each entry needs at least 4 (key length) + 8 (value) bytes: cap the
    // declared count against the bytes actually present before reserving.
    if (static_cast<std::size_t>(n) * 12 > in.remaining()) return std::nullopt;
    StatusResponse s;
    s.counters.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string key;
        std::uint64_t value = 0;
        if (!get_str(in, key) || !in.get_u64(value)) return std::nullopt;
        s.counters.emplace_back(std::move(key), value);
    }
    if (!in.done()) return std::nullopt;
    return s;
}

bool write_frame(int fd, const std::string& payload) {
    if (payload.size() > kMaxFrameBytes) return false;
    std::string frame;
    frame.reserve(4 + payload.size());
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.append(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not as a
        // process-killing SIGPIPE from inside the daemon's writer.
        const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

namespace {

bool read_exact(int fd, char* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, buf + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (r == 0) return false; // EOF mid-frame (or at a frame boundary)
        got += static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace

bool read_frame(int fd, std::string& payload) {
    char head[4];
    if (!read_exact(fd, head, 4)) return false;
    ByteReader r(head, 4);
    std::uint32_t len = 0;
    r.get_u32(len);
    if (len > kMaxFrameBytes) return false;
    payload.resize(len);
    if (len == 0) return true;
    return read_exact(fd, payload.data(), len);
}

} // namespace epoc::service
