// Wire protocol for the epocd compile service.
//
// Transport: a local AF_UNIX stream socket carrying length-prefixed binary
// frames — u32 little-endian payload length, then the payload. The payload's
// first byte is the message type; the rest is the message body encoded with
// the same little-endian primitives as the pulse store codec (qoc/pulse_io.h),
// so doubles cross the wire bit-exact and the decode side is bounds-checked
// byte by byte. Decoding is defensive throughout: a malformed frame yields
// false / nullopt, never UB, an exception, or an allocation bomb (payload
// lengths are capped before any buffer is sized).
//
// The protocol is deliberately minimal — four request/response pairs:
//
//   job_request      -> job_response       compile one QASM circuit
//   status_request   -> status_response    flat key/value counter snapshot
//   shutdown_request -> shutdown_response  ack, then the daemon drains + exits
//
// Responses carry the request's id and may arrive out of submission order
// (the daemon interleaves jobs by priority and tenant); clients correlate by
// id. No new dependencies: framing is plain read/write on the socket fd.
//
// Fault-injection sites (util/fault_injection.h), so daemon chaos is as
// reproducible as compile chaos:
//
//   service.read    an incoming frame dies mid-read (connection reset)
//   service.frame   a frame arrives with its type byte rotted — the decoder
//                   must reject it and the server must drop the connection
//   service.write   an outgoing frame is torn: a short prefix reaches the
//                   peer, then the connection is reported dead
//
// (The fourth transport site, service.accept, lives in daemon.cpp where the
// accept loop runs.) Every site degrades to "connection lost", which the
// retrying client recovers from by reconnect + idempotent re-submission.
#pragma once

#include "util/deadline.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace epoc::service {

/// Payload bytes are capped here on both encode and decode: a corrupt or
/// hostile length prefix must not size a buffer. Generous for QASM text
/// (the biggest payload in practice).
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

enum class MsgType : std::uint8_t {
    job_request = 1,
    job_response = 2,
    status_request = 3,
    status_response = 4,
    shutdown_request = 5,
    shutdown_response = 6,
};

/// Terminal status of one job, from the client's point of view. Every
/// submitted job receives exactly one response with one of these — the
/// daemon's "no request ever sees an exception" contract.
enum class JobStatus : std::uint8_t {
    ok = 0,                ///< compiled (possibly degraded — see the flag)
    shed_deadline = 1,     ///< admission shed it: budget infeasible/expired
    rejected_overload = 2, ///< admission shed it: queue at capacity
    invalid_input = 3,     ///< QASM parse or boundary validation rejected it
    cancelled = 4,         ///< its cancel token fired (disconnect, shutdown)
    error = 5,             ///< unexpected failure; detail says what
};

const char* job_status_name(JobStatus s);

struct JobRequest {
    std::uint64_t id = 0;      ///< client-chosen correlation id
    std::string tenant;        ///< accounting + fairness bucket
    std::int32_t priority = 0; ///< larger = more urgent (strict levels)
    double deadline_ms = 0.0;  ///< wall-clock budget incl. queueing; 0 = none
    std::string qasm;          ///< OpenQASM 2 circuit text
    /// Hardware backend name, resolved against the daemon's registry at
    /// admission; empty = the daemon's default (topology-unconstrained)
    /// device model. An unknown name is answered invalid_input, not dropped.
    std::string backend;
};

struct JobResponse {
    std::uint64_t id = 0;
    JobStatus status = JobStatus::error;
    bool degraded = false;
    bool deadline_hit = false;
    bool plan_hit = false;
    /// fnv1a64 of the schedule's JSON export — the cross-process identity
    /// check (equal digests == bit-identical schedules).
    std::uint64_t digest = 0;
    double latency_ns = 0.0;
    double esp = 0.0;
    double compile_ms = 0.0;
    std::uint64_t num_pulses = 0;
    std::uint64_t blocks_total = 0;
    std::uint64_t blocks_degraded = 0;
    std::string detail; ///< empty on clean ok; human-readable otherwise
};

/// Flat counter snapshot: dotted keys ("service.jobs_completed",
/// "service.tenant.alice.admitted", "qoc.library_misses", ...). A vector of
/// pairs rather than a map so the daemon controls ordering for display.
struct StatusResponse {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// --- message codec (payload only, excluding the length prefix) ---

std::string encode_job_request(const JobRequest& req);
std::string encode_job_response(const JobResponse& resp);
std::string encode_status_request();
std::string encode_status_response(const StatusResponse& s);
std::string encode_shutdown_request();
std::string encode_shutdown_response();

/// First byte of a payload, or nullopt when empty/unknown.
std::optional<MsgType> peek_type(const std::string& payload);

/// Decoders return nullopt on any structural problem (wrong type byte,
/// truncation, oversized string field, trailing garbage).
std::optional<JobRequest> decode_job_request(const std::string& payload);
std::optional<JobResponse> decode_job_response(const std::string& payload);
std::optional<StatusResponse> decode_status_response(const std::string& payload);

// --- framing over a socket fd ---

/// Outcome of one framed I/O operation. `timeout` is only possible when the
/// caller armed a deadline; after a mid-frame timeout the stream is
/// desynchronized, so callers must treat the connection as lost either way —
/// the distinction exists for accounting (a slow peer is not a dead peer).
enum class IoStatus : std::uint8_t { ok = 0, closed = 1, timeout = 2 };

/// Write one length-prefixed frame; loops over partial writes and EINTR,
/// bounded by `deadline` (an unarmed deadline blocks indefinitely, the
/// historical behavior). `closed` on any write failure or a payload
/// exceeding kMaxFrameBytes.
IoStatus write_frame_deadline(int fd, const std::string& payload,
                              const util::Deadline& deadline);

/// Read one length-prefixed frame into `payload`, bounded by `deadline`.
/// `closed` on EOF, any read failure, or a lying length prefix.
IoStatus read_frame_deadline(int fd, std::string& payload,
                             const util::Deadline& deadline);

/// Unbounded conveniences (the pre-deadline API); true iff IoStatus::ok.
bool write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload);

} // namespace epoc::service
