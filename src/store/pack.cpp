#include "store/pack.h"

#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace epoc::store {

namespace {

constexpr char kPackMagic[8] = {'E', 'P', 'O', 'C', 'P', 'A', 'C', 'K'};
constexpr std::uint32_t kPackVersion = 1;
/// Header: magic + version + entry count + index offset.
constexpr std::uint64_t kHeaderSize = 8 + 4 + 8 + 8;
/// Index row: key hash + record offset + record size.
constexpr std::uint64_t kIndexRowSize = 24;
/// Trailer: index checksum + whole-file checksum.
constexpr std::uint64_t kTrailerSize = 16;
/// Smallest possible record: empty key + empty payload + checksum.
constexpr std::uint64_t kMinRecordSize = 8 + 8 + 8;
/// Keys are generated cache-key strings; a length beyond this is garbage
/// (mirrors the loose store's cap).
constexpr std::uint64_t kMaxKeyBytes = 1ull << 24;

std::uint64_t read_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t read_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

bool is_disk_full_errno(int err) {
    return err == ENOSPC || err == EROFS || err == EACCES || err == EPERM
#ifdef EDQUOT
           || err == EDQUOT
#endif
        ;
}

void set_error(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what;
}

/// Durable write + fsync, mirroring the loose store's publish discipline.
bool write_file_synced(const std::filesystem::path& p, const std::string& bytes,
                       int& err) {
    errno = 0;
    std::FILE* f = std::fopen(p.c_str(), "wb");
    if (f == nullptr) {
        err = errno;
        return false;
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (!ok) err = errno;
    if (std::fflush(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#ifdef __unix__
    if (::fsync(::fileno(f)) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#endif
    if (std::fclose(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
    return ok;
}

} // namespace

bool write_pack(const std::filesystem::path& path, std::vector<PackEntry> entries,
                std::string* error, bool* disk_full) {
    // First-wins dedup in input order: merge precedence is argument order,
    // and a pack must never hold two records for one key (the index search
    // would serve whichever sorts first — ambiguity, not redundancy).
    {
        std::vector<PackEntry> unique;
        unique.reserve(entries.size());
        std::vector<std::string> seen;
        for (PackEntry& e : entries) {
            if (e.key.size() > kMaxKeyBytes) {
                set_error(error, "entry key exceeds the key-size cap");
                return false;
            }
            if (std::find(seen.begin(), seen.end(), e.key) != seen.end()) continue;
            seen.push_back(e.key);
            unique.push_back(std::move(e));
        }
        entries = std::move(unique);
    }

    struct Row {
        std::uint64_t hash, offset, size;
    };
    std::string blob;
    blob.append(kPackMagic, sizeof(kPackMagic));
    qoc::put_u32(blob, kPackVersion);
    qoc::put_u64(blob, entries.size());
    qoc::put_u64(blob, 0); // index offset, patched below

    std::vector<Row> rows;
    rows.reserve(entries.size());
    for (const PackEntry& e : entries) {
        const std::uint64_t offset = blob.size();
        qoc::put_u64(blob, e.key.size());
        blob += e.key;
        qoc::put_u64(blob, e.payload.size());
        blob += e.payload;
        qoc::put_u64(blob, qoc::fnv1a64(blob.data() + offset, blob.size() - offset));
        rows.push_back(Row{qoc::fnv1a64(e.key), offset, blob.size() - offset});
    }

    const std::uint64_t index_offset = blob.size();
    {
        // Patch the header's index-offset field in place.
        std::string patched;
        qoc::put_u64(patched, index_offset);
        std::memcpy(&blob[20], patched.data(), 8);
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.hash != b.hash ? a.hash < b.hash : a.offset < b.offset;
    });
    for (const Row& r : rows) {
        qoc::put_u64(blob, r.hash);
        qoc::put_u64(blob, r.offset);
        qoc::put_u64(blob, r.size);
    }
    // Index checksum: header bytes chained with index bytes, so a doctored
    // header (wrong count, shifted offset) fails the same check a doctored
    // index row does.
    std::uint64_t index_ck = qoc::fnv1a64(blob.data(), kHeaderSize);
    index_ck = qoc::fnv1a64(blob.data() + index_offset, blob.size() - index_offset,
                            index_ck);
    qoc::put_u64(blob, index_ck);
    qoc::put_u64(blob, qoc::fnv1a64(blob));

    // Atomic publish: build next to the target (rename must not cross
    // filesystems), fsync, rename. The ".pack.tmp" suffix is the sweep
    // contract — startup and compaction delete stale ones.
    const std::filesystem::path tmp =
        path.parent_path() /
        (path.filename().string() + "." + std::to_string(
#ifdef __unix__
                                              static_cast<std::uint64_t>(::getpid())
#else
                                              0
#endif
                                              ) +
         ".pack.tmp");
    int err = 0;
    if (!write_file_synced(tmp, blob, err)) {
        if (disk_full != nullptr) *disk_full = is_disk_full_errno(err);
        set_error(error, "cannot write pack temp file: " +
                             std::error_code(err, std::generic_category()).message());
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::error_code rec;
    std::filesystem::rename(tmp, path, rec);
    if (rec) {
        if (disk_full != nullptr) *disk_full = is_disk_full_errno(rec.value());
        set_error(error, "cannot publish pack: " + rec.message());
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

std::shared_ptr<PackReader> PackReader::open(const std::filesystem::path& path,
                                             std::string* error) {
    std::shared_ptr<PackReader> pack(new PackReader());
    pack->path_ = path;
    try {
        util::fault::maybe_throw("store.pack.open");
    } catch (...) {
        set_error(error, "injected open failure");
        return nullptr;
    }

#ifdef __unix__
    // mmap preferred: a lookup touches O(log N) index pages plus the hit's
    // record, not the whole file — the point of shipping multi-GB libraries.
    {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st{};
            if (::fstat(fd, &st) == 0 && st.st_size > 0) {
                void* m = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                                 PROT_READ, MAP_PRIVATE, fd, 0);
                if (m != MAP_FAILED) {
                    pack->data_ = static_cast<const unsigned char*>(m);
                    pack->size_ = static_cast<std::size_t>(st.st_size);
                    pack->mapped_ = true;
                }
            }
            ::close(fd); // the mapping outlives the descriptor
        }
    }
#endif
    if (!pack->mapped_) {
        // Buffered fallback: whole-file slurp. Correctness-equivalent; only
        // the paging economics differ.
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            set_error(error, "cannot open pack file");
            return nullptr;
        }
        pack->fallback_.assign((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
        if (in.bad()) {
            set_error(error, "cannot read pack file");
            return nullptr;
        }
        pack->data_ = reinterpret_cast<const unsigned char*>(pack->fallback_.data());
        pack->size_ = pack->fallback_.size();
    }

    // Structural validation. Everything below is arithmetic over untrusted
    // numbers, so every derived quantity is checked before use and every
    // multiply is guarded against overflow.
    const unsigned char* d = pack->data();
    const std::uint64_t size = pack->size_;
    if (size < kHeaderSize + kTrailerSize) {
        set_error(error, "pack too small for header and trailer");
        return nullptr;
    }
    if (std::memcmp(d, kPackMagic, sizeof(kPackMagic)) != 0) {
        set_error(error, "bad pack magic");
        return nullptr;
    }
    if (read_u32(d + 8) != kPackVersion) {
        set_error(error, "unsupported pack format version");
        return nullptr;
    }
    const std::uint64_t count = read_u64(d + 12);
    const std::uint64_t index_offset = read_u64(d + 20);
    if (util::fault::maybe_fail("store.pack.index") ||
        count > (size - kHeaderSize - kTrailerSize) / kIndexRowSize ||
        index_offset < kHeaderSize || index_offset > size ||
        index_offset + count * kIndexRowSize + kTrailerSize != size) {
        set_error(error, "malformed pack index geometry");
        return nullptr;
    }
    std::uint64_t index_ck = qoc::fnv1a64(d, kHeaderSize);
    index_ck = qoc::fnv1a64(d + index_offset, count * kIndexRowSize, index_ck);
    if (index_ck != read_u64(d + size - 16)) {
        set_error(error, "pack index checksum mismatch");
        return nullptr;
    }
    pack->index_.reserve(static_cast<std::size_t>(count));
    std::uint64_t prev_hash = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const unsigned char* row = d + index_offset + i * kIndexRowSize;
        IndexRow r{read_u64(row), read_u64(row + 8), read_u64(row + 16)};
        // Rows must stay sorted (binary search depends on it) and point at
        // plausible records strictly inside the entry region.
        if ((i > 0 && r.hash < prev_hash) || r.offset < kHeaderSize ||
            r.size < kMinRecordSize || r.size > index_offset ||
            r.offset > index_offset - r.size) {
            set_error(error, "pack index row out of bounds or unsorted");
            return nullptr;
        }
        prev_hash = r.hash;
        pack->index_.push_back(r);
    }
    return pack;
}

PackReader::~PackReader() {
#ifdef __unix__
    if (mapped_ && data_ != nullptr)
        ::munmap(const_cast<unsigned char*>(data_), size_);
#endif
}

bool PackReader::contains_hash(std::uint64_t hash) const {
    const auto it = std::lower_bound(
        index_.begin(), index_.end(), hash,
        [](const IndexRow& r, std::uint64_t h) { return r.hash < h; });
    return it != index_.end() && it->hash == hash;
}

bool PackReader::read_record(const IndexRow& row, std::string& key,
                             std::string& payload) {
    // Injected torn-page / rotten-read stand-ins: real damage of either kind
    // lands on the identical checksum-mismatch path below.
    if (util::fault::maybe_fail("store.pack.mmap") ||
        util::fault::maybe_fail("store.pack.read"))
        return false;
    const unsigned char* rec = data() + row.offset;
    if (qoc::fnv1a64(rec, static_cast<std::size_t>(row.size - 8)) !=
        read_u64(rec + row.size - 8))
        return false;
    qoc::ByteReader in(rec, static_cast<std::size_t>(row.size - 8));
    std::uint64_t key_len;
    if (!in.get_u64(key_len) || key_len > kMaxKeyBytes || key_len > in.remaining() ||
        !in.get_bytes(key, static_cast<std::size_t>(key_len)))
        return false;
    std::uint64_t payload_len;
    if (!in.get_u64(payload_len) || payload_len != in.remaining() ||
        !in.get_bytes(payload, static_cast<std::size_t>(payload_len)))
        return false;
    // The record must hash to its own index row: a doctored record cannot
    // ride a row that was validated at open time.
    return qoc::fnv1a64(key) == row.hash;
}

std::optional<qoc::LatencyResult> PackReader::find(const std::string& key,
                                                   bool* corrupt) {
    if (suspect()) return std::nullopt;
    const std::uint64_t hash = qoc::fnv1a64(key);
    auto it = std::lower_bound(
        index_.begin(), index_.end(), hash,
        [](const IndexRow& r, std::uint64_t h) { return r.hash < h; });
    for (; it != index_.end() && it->hash == hash; ++it) {
        std::string record_key, payload;
        if (!read_record(*it, record_key, payload)) {
            mark_suspect();
            if (corrupt != nullptr) *corrupt = true;
            return std::nullopt;
        }
        // Hash matched, key differs: an honest collision — some other key's
        // valid entry. Keep scanning same-hash rows, then miss.
        if (record_key != key) continue;
        std::optional<qoc::LatencyResult> result = qoc::decode_latency_result(payload);
        if (!result) {
            // Checksum-valid but undecodable: the pack was built wrong (or
            // doctored checksum-consistently). Same damage class.
            mark_suspect();
            if (corrupt != nullptr) *corrupt = true;
            return std::nullopt;
        }
        return result;
    }
    return std::nullopt;
}

bool PackReader::for_each(
    const std::function<bool(const std::string& key, const std::string& payload)>& fn) {
    if (suspect()) return false;
    // File order == offset order; re-sort a copy rather than trusting the
    // hash-ordered index to happen to match.
    std::vector<IndexRow> rows = index_;
    std::sort(rows.begin(), rows.end(),
              [](const IndexRow& a, const IndexRow& b) { return a.offset < b.offset; });
    for (const IndexRow& row : rows) {
        std::string key, payload;
        if (!read_record(row, key, payload)) {
            mark_suspect();
            return false;
        }
        if (!fn(key, payload)) break;
    }
    return true;
}

bool PackReader::deep_verify(std::string* error) {
    if (suspect()) {
        set_error(error, "pack already marked suspect");
        return false;
    }
    if (qoc::fnv1a64(data(), size_ - 8) != read_u64(data() + size_ - 8)) {
        mark_suspect();
        set_error(error, "whole-file checksum mismatch");
        return false;
    }
    std::size_t visited = 0;
    if (!for_each([&](const std::string&, const std::string&) {
            ++visited;
            return true;
        })) {
        set_error(error, "entry " + std::to_string(visited) + " failed integrity");
        return false;
    }
    return true;
}

} // namespace epoc::store
