// Immutable pack segments: many pulse entries in one shareable file.
//
// The one-file-per-entry store (pulse_store.h) amortizes GRAPE per machine;
// pack segments amortize it per *fleet*. A pack is a single read-only file
// holding any number of (key, payload) pulse entries behind a sorted key
// index, built once (by compaction or the `epoc_pack` CLI) and then shipped,
// mounted and shared — the AccQOC pay-once-reuse-forever economics at
// artifact granularity. PulseStore layers an ordered list of packs behind
// its loose-entry tier, so a fresh machine with a shipped pack cold-starts
// at warm-run speed.
//
// On-disk format (all integers little-endian; doubles never appear — the
// payload is the opaque qoc::encode_latency_result byte string, so pulses
// round-trip exactly to the bit):
//
//   offset          size  field
//   ------          ----  -----
//        0             8  magic "EPOCPACK"
//        8             4  format version (readers reject != ours)
//       12             8  entry count N (u64)
//       20             8  index offset I (u64)
//       28       I - 28   entry records, back to back:
//                           key length (u64), key bytes,
//                           payload length (u64), payload bytes,
//                           FNV-1a64 of the record bytes before this field
//        I        24 * N  index rows sorted by (key hash, offset):
//                           fnv1a64(key) (u64), record offset (u64),
//                           record size incl. its checksum (u64)
//   I+24N             8  index checksum: FNV-1a64 over the header bytes
//                         [0, 28) continued over the index bytes [I, I+24N)
//   I+24N+8           8  whole-file checksum: FNV-1a64 over [0, filesize-8)
//
// Trust model — every byte is foreign. A pack may come from another machine,
// another build, or an adversarial artifact registry, so the reader never
// extends trust it has not checked:
//
//   * open() validates structure (magic, version, size arithmetic), the
//     index checksum, and every index row's bounds + sort order before the
//     pack is consulted at all — a malformed or doctored index is rejected
//     in O(N) without touching a single entry;
//   * every lookup re-verifies the hit's per-entry checksum, that the
//     embedded key hashes to its index row (a doctored record cannot ride a
//     valid-looking row), and that it equals the probe key byte-for-byte
//     (same-hash different-key is an honest collision: a miss, not damage);
//   * the whole-file checksum is the `epoc_pack verify` / deep_verify()
//     gate — too expensive per open, exactly right for ingest tooling.
//
// Any integrity failure marks the pack *suspect*: it answers every later
// probe with a miss (the caller recomputes — never a crash, never a wrong
// pulse) and PulseStore quarantines the file. Reads go through mmap where
// available (the index probe touches O(log N) pages, not the file) with a
// whole-file buffered fallback; a torn page surfaces as a checksum mismatch
// and takes the same suspect path.
//
// Fault-injection sites (util/fault_injection.h): `store.pack.open` (open
// fails), `store.pack.index` (index validation fails), `store.pack.mmap`
// (a torn mapping detected at lookup), `store.pack.read` (entry bytes fail
// integrity at lookup). All four degrade to miss-and-recompute.
//
// Writing is fsync-temp-then-rename, same as loose entries: the temp name
// ends in ".pack.tmp" (swept on store startup and compaction), so a crash
// mid-build never publishes a torn pack and never leaks disk.
#pragma once

#include "qoc/latency_search.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace epoc::store {

/// One pulse entry as pack tooling sees it: the full generation key and the
/// opaque encoded payload (qoc::encode_latency_result bytes, verbatim).
struct PackEntry {
    std::string key;
    std::string payload;
};

/// Build a pack at `path` from `entries` (deduplicated first-wins on key —
/// merge order is precedence order) via fsync-temp-then-rename. False on any
/// failure (nothing published, temp removed; `error`, when non-null, gets a
/// one-line diagnosis and `disk_full` whether the errno was ENOSPC-class).
bool write_pack(const std::filesystem::path& path, std::vector<PackEntry> entries,
                std::string* error = nullptr, bool* disk_full = nullptr);

/// A mapped, validated, read-only pack. Immutable after open() (quarantine
/// renames do not disturb an open mapping); safe to probe from any number of
/// threads concurrently. mark_suspect() is the one mutation: a relaxed
/// atomic flag every probe checks first.
class PackReader {
public:
    /// Map and structurally validate the pack. nullptr on any failure
    /// (missing file, bad magic/version/size arithmetic, malformed or
    /// unsorted index, index checksum mismatch); `error`, when non-null,
    /// gets the reason. An open pack has a fully-trusted *index*; entries
    /// stay trust-but-verify per lookup.
    static std::shared_ptr<PackReader> open(const std::filesystem::path& path,
                                            std::string* error = nullptr);

    ~PackReader();
    PackReader(const PackReader&) = delete;
    PackReader& operator=(const PackReader&) = delete;

    /// The decoded entry for `key`, or nullopt on a miss. Misses include:
    /// key absent, hash collision (embedded key differs), suspect pack, and
    /// every integrity failure — the latter also set `*corrupt` (when
    /// non-null) and mark the pack suspect, so the caller can quarantine.
    std::optional<qoc::LatencyResult> find(const std::string& key,
                                           bool* corrupt = nullptr);

    /// True when the index holds `hash` — a constant-time-ish pre-check so
    /// PulseStore's denylist only grows for keys a pack could actually serve.
    bool contains_hash(std::uint64_t hash) const;

    /// Visit every entry in file order, fully validated (checksum + embedded
    /// key vs index). Returns false (after visiting the valid prefix of the
    /// iteration) when any entry fails integrity, and marks the pack
    /// suspect. `fn` returning false stops early (iteration still counts as
    /// clean). The enumeration backbone of list/merge/extract.
    bool for_each(const std::function<bool(const std::string& key,
                                           const std::string& payload)>& fn);

    /// Everything open() checks, plus the whole-file checksum and every
    /// entry's record — the `epoc_pack verify` gate. Marks suspect on
    /// failure.
    bool deep_verify(std::string* error = nullptr);

    std::size_t entry_count() const { return index_.size(); }
    std::size_t size_bytes() const { return size_; } ///< whole-file size
    const std::filesystem::path& path() const { return path_; }
    bool mapped() const { return mapped_; } ///< mmap vs buffered fallback

    bool suspect() const { return suspect_.load(std::memory_order_relaxed); }
    void mark_suspect() { suspect_.store(true, std::memory_order_relaxed); }

private:
    struct IndexRow {
        std::uint64_t hash;
        std::uint64_t offset;
        std::uint64_t size;
    };

    PackReader() = default;
    /// Validate + read the record at `row`; empty optional (and suspect) on
    /// any integrity failure, `key`/`payload` filled on success.
    bool read_record(const IndexRow& row, std::string& key, std::string& payload);

    const unsigned char* data() const { return data_; }

    std::filesystem::path path_;
    const unsigned char* data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
    std::string fallback_; ///< owns the bytes when mmap was unavailable
    std::vector<IndexRow> index_;
    std::atomic<bool> suspect_{false};
};

} // namespace epoc::store
