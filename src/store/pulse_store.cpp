#include "store/pulse_store.h"

#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace epoc::store {

namespace {

constexpr char kMagic[8] = {'E', 'P', 'O', 'C', 'P', 'U', 'L', 'S'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kEntrySuffix = ".pulse";
constexpr const char* kPackSuffix = ".pack";
constexpr const char* kPackTempSuffix = ".pack.tmp";
constexpr const char* kTempPrefix = "tmp-";
constexpr const char* kQuarantineDir = "quarantine";
/// Temp files older than this are crash leftovers, safe to sweep: a live
/// writer holds its temp for milliseconds between create and rename.
constexpr auto kStaleTempAge = std::chrono::minutes(10);
/// Minimum entry size: magic + version + key length + payload length +
/// checksum around an empty key and payload.
constexpr std::uint64_t kMinEntrySize = 8 + 4 + 8 + 8 + 8;
/// Keys are short generated strings; a length field beyond this is garbage.
constexpr std::uint64_t kMaxKeyBytes = 1ull << 24;

std::uint64_t process_id() {
#ifdef __unix__
    return static_cast<std::uint64_t>(::getpid());
#else
    return 0;
#endif
}

/// Whole-file read; empty optional when the file cannot be opened (the
/// common miss path) or cannot be read.
std::optional<std::string> slurp(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) return std::nullopt;
    return bytes;
}

/// Durably write `bytes` to `p` (fsync before close, so a crash after the
/// subsequent rename cannot publish a file whose data never hit the disk).
/// On failure `err` holds the errno of the first failing step.
bool write_file_synced(const std::filesystem::path& p, const std::string& bytes,
                       int& err) {
    errno = 0;
    std::FILE* f = std::fopen(p.c_str(), "wb");
    if (f == nullptr) {
        err = errno;
        return false;
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (!ok) err = errno;
    if (std::fflush(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#ifdef __unix__
    if (::fsync(::fileno(f)) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#endif
    if (std::fclose(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
    return ok;
}

/// ENOSPC-class: failures that mean "this filesystem will keep refusing
/// writes" — retrying per-compile only burns syscalls and log lines.
bool is_disk_full_errno(int err) {
    return err == ENOSPC || err == EROFS || err == EACCES || err == EPERM
#ifdef EDQUOT
           || err == EDQUOT
#endif
        ;
}

bool is_entry_file(const std::filesystem::directory_entry& e) {
    return e.is_regular_file() && e.path().extension() == kEntrySuffix;
}

bool has_suffix(const std::string& name, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

bool is_temp_file(const std::filesystem::directory_entry& e) {
    if (!e.is_regular_file()) return false;
    const std::string name = e.path().filename().string();
    return name.rfind(kTempPrefix, 0) == 0 || has_suffix(name, kPackTempSuffix);
}

bool is_pack_file(const std::filesystem::directory_entry& e) {
    return e.is_regular_file() && !is_temp_file(e) &&
           e.path().extension() == kPackSuffix;
}

/// Best-effort move of a damaged or rejected pack file into its *own*
/// directory's quarantine/. Unlike loose-entry quarantine this never deletes
/// on failure: a pack may be a fleet-shared read-only artifact, and one
/// machine's mmap hiccup must not destroy it for the fleet — the caller's
/// in-memory suspect flag protects this process either way. Returns the
/// number of I/O errors for the caller to account.
std::size_t quarantine_pack_file(const std::filesystem::path& p) {
    static std::atomic<std::uint64_t> serial{0};
    std::size_t io_errs = 0;
    std::error_code ec;
    const std::filesystem::path qdir = p.parent_path() / kQuarantineDir;
    std::filesystem::create_directories(qdir, ec);
    if (ec) ++io_errs;
    std::filesystem::rename(
        p,
        qdir / (p.filename().string() + "." + std::to_string(process_id()) + "-" +
                std::to_string(serial.fetch_add(1, std::memory_order_relaxed))),
        ec);
    if (ec) ++io_errs; // likely a read-only share; the file stays in place
    return io_errs;
}

} // namespace

PulseStore::PulseStore(PulseStoreOptions opt) : opt_(std::move(opt)), dir_(opt_.dir) {
    if (opt_.dir.empty())
        throw std::runtime_error("PulseStore: empty store directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_))
        throw std::runtime_error("PulseStore: cannot create store directory '" +
                                 opt_.dir + "': " + ec.message());
    sweep_stale_temps();
    stats_.bytes = scan_bytes();
    open_packs();
}

std::string PulseStore::dir_from_env() {
    const char* dir = std::getenv("EPOC_PULSE_STORE");
    return dir == nullptr ? std::string() : std::string(dir);
}

std::vector<std::string> PulseStore::pack_dirs_from_env() {
    std::vector<std::string> dirs;
    const char* env = std::getenv("EPOC_PULSE_PACKS");
    if (env == nullptr) return dirs;
    const std::string spec(env);
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const std::size_t end = spec.find(':', begin);
        const std::string dir =
            spec.substr(begin, end == std::string::npos ? end : end - begin);
        if (!dir.empty()) dirs.push_back(dir);
        if (end == std::string::npos) break;
        begin = end + 1;
    }
    return dirs;
}

std::filesystem::path PulseStore::entry_path(const std::string& key) const {
    static const char* hex = "0123456789abcdef";
    const std::uint64_t h = qoc::fnv1a64(key);
    std::string name(16, '0');
    for (int i = 0; i < 16; ++i)
        name[static_cast<std::size_t>(i)] = hex[(h >> (60 - 4 * i)) & 0xf];
    return dir_ / (name + kEntrySuffix);
}

void PulseStore::open_packs() {
    // Local packs (compaction output) first — they shadow shared ones for
    // keys present in both — then each configured shared directory in order.
    std::vector<std::filesystem::path> dirs{dir_};
    for (const std::string& d : opt_.pack_dirs)
        if (!d.empty()) dirs.emplace_back(d);

    std::vector<std::shared_ptr<PackReader>> opened;
    std::size_t suspect = 0, io_errs = 0;
    for (const std::filesystem::path& dir : dirs) {
        std::vector<std::filesystem::path> files;
        std::error_code ec;
        for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
             it.increment(ec))
            if (is_pack_file(*it)) files.push_back(it->path());
        // A missing shared directory is a cold tier, not an error; a failed
        // walk of an existing one is worth surfacing.
        if (ec && std::filesystem::exists(dir)) ++io_errs;
        std::sort(files.begin(), files.end());
        for (const std::filesystem::path& p : files) {
            if (std::shared_ptr<PackReader> pack = PackReader::open(p)) {
                opened.push_back(std::move(pack));
            } else {
                // Structurally invalid (or injected open failure): a pack
                // the index of which cannot be trusted serves nothing.
                ++suspect;
                io_errs += quarantine_pack_file(p);
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    packs_ = std::move(opened);
    stats_.pack_suspect += suspect;
    stats_.io_errors += io_errs;
    stats_.packs_open = packs_.size();
    stats_.pack_entries = 0;
    stats_.pack_bytes = 0;
    for (const std::shared_ptr<PackReader>& pack : packs_) {
        stats_.pack_entries += pack->entry_count();
        stats_.pack_bytes += pack->size_bytes();
    }
}

std::vector<std::shared_ptr<PackReader>> PulseStore::packs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return packs_;
}

void PulseStore::quarantine_pack(const std::shared_ptr<PackReader>& pack) {
    pack->mark_suspect();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = std::find(packs_.begin(), packs_.end(), pack);
        if (it == packs_.end()) return; // another thread already quarantined it
        packs_.erase(it);
        ++stats_.pack_suspect;
        stats_.packs_open = packs_.size();
        stats_.pack_entries = 0;
        stats_.pack_bytes = 0;
        for (const std::shared_ptr<PackReader>& open : packs_) {
            stats_.pack_entries += open->entry_count();
            stats_.pack_bytes += open->size_bytes();
        }
    }
    // The rename happens after the list removal, so only the removing thread
    // touches the filesystem. An open mmap survives the rename.
    const std::size_t io_errs = quarantine_pack_file(pack->path());
    if (io_errs > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.io_errors += io_errs;
    }
}

std::optional<qoc::LatencyResult> PulseStore::load(const std::string& key,
                                                   bool* from_pack) {
    if (from_pack != nullptr) *from_pack = false;
    try {
        util::fault::maybe_throw("store.read");
        std::optional<qoc::LatencyResult> r = load_impl(key, from_pack);
        std::lock_guard<std::mutex> lock(mutex_);
        if (r)
            ++stats_.hits;
        else
            ++stats_.misses;
        return r;
    } catch (...) {
        // An unreadable store is a cold store, never a failed compile.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.io_errors;
        ++stats_.misses;
        return std::nullopt;
    }
}

std::optional<qoc::LatencyResult> PulseStore::load_impl(const std::string& key,
                                                        bool* from_pack) {
    const std::filesystem::path p = entry_path(key);
    const std::optional<std::string> bytes = slurp(p);

    const auto probe_packs = [&]() -> std::optional<qoc::LatencyResult> {
        std::vector<std::shared_ptr<PackReader>> packs;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (packs_.empty()) return std::nullopt;
            if (denylist_.count(key) != 0) {
                ++stats_.pack_denied;
                return std::nullopt;
            }
            packs = packs_;
        }
        for (const std::shared_ptr<PackReader>& pack : packs) {
            bool corrupt = false;
            if (std::optional<qoc::LatencyResult> r = pack->find(key, &corrupt)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.pack_hits;
                if (from_pack != nullptr) *from_pack = true;
                return r;
            }
            if (corrupt) {
                // Integrity failure inside this pack: it answers nothing any
                // more (suspect), gets quarantined, and the probe continues
                // down the tier list — a later pack may still hold the key.
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.pack_corrupt;
                }
                quarantine_pack(pack);
            }
        }
        return std::nullopt;
    };

    if (!bytes) return probe_packs(); // loose miss: fall through to the packs

    const auto corrupt = [&]() -> std::optional<qoc::LatencyResult> {
        quarantine(p);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.corrupt;
        }
        // The damaged loose entry is gone; a pack may still serve the key.
        return probe_packs();
    };

    // Header checks in diagnosis order: structure, then integrity, then
    // identity. A version mismatch is detected before the checksum so future
    // format revisions are reported as such even if they also moved the
    // trailer.
    if (bytes->size() < kMinEntrySize) return corrupt();
    if (std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) return corrupt();
    qoc::ByteReader header(bytes->data() + sizeof(kMagic),
                           bytes->size() - sizeof(kMagic));
    std::uint32_t version;
    std::uint64_t key_len;
    if (!header.get_u32(version)) return corrupt();
    if (version != kFormatVersion) return corrupt();
    if (!header.get_u64(key_len) || key_len > kMaxKeyBytes ||
        key_len > header.remaining())
        return corrupt();

    qoc::ByteReader trailer(bytes->data() + bytes->size() - 8, 8);
    std::uint64_t checksum;
    trailer.get_u64(checksum);
    if (qoc::fnv1a64(bytes->data(), bytes->size() - 8) != checksum) return corrupt();

    const char* key_begin = bytes->data() + sizeof(kMagic) + 4 + 8;
    if (key.size() != key_len ||
        std::memcmp(key_begin, key.data(), static_cast<std::size_t>(key_len)) != 0) {
        // Hash collision: a *valid* entry for some other key lives at our
        // content address. It is not corrupt — leave it in place (last
        // writer wins the name; see header) and report a miss for the loose
        // tier; a pack indexes by the full key hash too but validates the
        // embedded key, so the probe below is still exact.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.collisions;
        }
        return probe_packs();
    }

    qoc::ByteReader body(key_begin + key_len,
                         bytes->size() - (sizeof(kMagic) + 4 + 8) -
                             static_cast<std::size_t>(key_len) - 8);
    std::uint64_t payload_len;
    if (!body.get_u64(payload_len) || payload_len != body.remaining())
        return corrupt();
    const std::string payload(key_begin + key_len + 8,
                              static_cast<std::size_t>(payload_len));
    std::optional<qoc::LatencyResult> result = qoc::decode_latency_result(payload);
    if (!result) return corrupt();

    // LRU touch: a hit makes the entry recent, so hot pulses survive
    // compaction. Best effort — a read-only store still serves hits.
    std::error_code ec;
    std::filesystem::last_write_time(
        p, std::filesystem::file_time_type::clock::now(), ec);
    return result;
}

std::optional<PackEntry> PulseStore::read_entry_file(const std::filesystem::path& p) {
    const std::optional<std::string> bytes = slurp(p);
    if (!bytes || bytes->size() < kMinEntrySize) return std::nullopt;
    if (std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
    qoc::ByteReader header(bytes->data() + sizeof(kMagic),
                           bytes->size() - sizeof(kMagic));
    std::uint32_t version;
    std::uint64_t key_len;
    if (!header.get_u32(version) || version != kFormatVersion) return std::nullopt;
    if (!header.get_u64(key_len) || key_len > kMaxKeyBytes ||
        key_len > header.remaining())
        return std::nullopt;
    qoc::ByteReader trailer(bytes->data() + bytes->size() - 8, 8);
    std::uint64_t checksum;
    trailer.get_u64(checksum);
    if (qoc::fnv1a64(bytes->data(), bytes->size() - 8) != checksum)
        return std::nullopt;
    const char* key_begin = bytes->data() + sizeof(kMagic) + 4 + 8;
    qoc::ByteReader body(key_begin + key_len,
                         bytes->size() - (sizeof(kMagic) + 4 + 8) -
                             static_cast<std::size_t>(key_len) - 8);
    std::uint64_t payload_len;
    if (!body.get_u64(payload_len) || payload_len != body.remaining())
        return std::nullopt;
    PackEntry e;
    e.key.assign(key_begin, static_cast<std::size_t>(key_len));
    e.payload.assign(key_begin + key_len + 8, static_cast<std::size_t>(payload_len));
    // The payload must decode: a pack must never be built from an entry the
    // reader would reject, or `verify` and `extract` break on a good pack.
    if (!qoc::decode_latency_result(e.payload)) return std::nullopt;
    return e;
}

void PulseStore::store(const std::string& key, const qoc::LatencyResult& result) {
    // The poisoning rule, enforced at the last line of defense: a degraded
    // result must never outlive the process, whatever the caller believed.
    if (!result.authoritative()) return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (disabled_) {
            ++stats_.skipped_disabled;
            return;
        }
    }
    // store.enospc: deterministic stand-in for a full disk (tests often run
    // as root, where permission tricks cannot make a write fail).
    bool disk_full = util::fault::maybe_fail("store.enospc");
    bool wrote = false;
    if (!disk_full) {
        try {
            wrote = write_impl(key, result, disk_full);
        } catch (...) {
            wrote = false;
        }
    }
    std::uint64_t over_budget = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (wrote) {
            ++stats_.writes;
            // A fresh local write shadows any pack entry, so the key has no
            // business staying denylisted (the deny exists only to stop a
            // rejected pack entry from resolving; the loose tier now wins).
            denylist_.erase(key);
            if (opt_.max_bytes > 0 && stats_.bytes > opt_.max_bytes)
                over_budget = stats_.bytes;
        } else {
            ++stats_.io_errors;
            if (disk_full && !disabled_) {
                disabled_ = true;
                ++stats_.disabled_enospc;
            }
        }
    }
    if (over_budget > 0) compact();
}

bool PulseStore::memory_only() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return disabled_;
}

void PulseStore::invalidate(const std::string& key) {
    const std::filesystem::path p = entry_path(key);
    std::error_code ec;
    const bool had_loose = std::filesystem::exists(p, ec) && !ec;
    if (had_loose) quarantine(p);
    // Pack entries cannot be quarantined individually (the file is immutable
    // and possibly shared): deny the key in memory instead, but only when
    // some open pack could actually serve it — an unbounded denylist of
    // never-packed keys would just leak.
    const std::uint64_t h = qoc::fnv1a64(key);
    std::lock_guard<std::mutex> lock(mutex_);
    bool denied = false;
    for (const std::shared_ptr<PackReader>& pack : packs_) {
        if (pack->suspect() || !pack->contains_hash(h)) continue;
        denied = denylist_.insert(key).second;
        break;
    }
    if (had_loose || denied) ++stats_.invalidated;
}

std::size_t PulseStore::corrupt_all_entries_for_test() {
    std::size_t corrupted = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!is_entry_file(*it)) continue;
        const std::optional<PackEntry> entry = read_entry_file(it->path());
        if (!entry) continue;
        std::optional<qoc::LatencyResult> result =
            qoc::decode_latency_result(entry->payload);
        if (!result) continue;
        // Zero the amplitudes, keep the recorded fidelity and every flag,
        // republish through the ordinary writer: a valid, checksummed entry
        // whose physics no longer matches its own metadata.
        for (std::vector<double>& line : result->pulse.amplitudes)
            std::fill(line.begin(), line.end(), 0.0);
        bool disk_full = false;
        if (write_impl(entry->key, *result, disk_full)) ++corrupted;
    }
    return corrupted;
}

bool PulseStore::write_impl(const std::string& key, const qoc::LatencyResult& result,
                            bool& disk_full) {
    std::string blob;
    blob.append(kMagic, sizeof(kMagic));
    qoc::put_u32(blob, kFormatVersion);
    qoc::put_u64(blob, key.size());
    blob += key;
    const std::string payload = qoc::encode_latency_result(result);
    qoc::put_u64(blob, payload.size());
    blob += payload;
    qoc::put_u64(blob, qoc::fnv1a64(blob));

    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = ++temp_serial_;
    }
    const std::filesystem::path final_path = entry_path(key);
    const std::filesystem::path tmp =
        dir_ / (std::string(kTempPrefix) + std::to_string(process_id()) + "-" +
                std::to_string(serial) + "-" + final_path.stem().string());
    try {
        util::fault::maybe_throw("store.write");
        int err = 0;
        if (!write_file_synced(tmp, blob, err)) {
            disk_full = is_disk_full_errno(err);
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
        util::fault::maybe_throw("store.rename");
        // The atomic publish: readers see the old entry or the new one,
        // never a prefix.
        std::error_code rec;
        std::filesystem::rename(tmp, final_path, rec);
        if (rec) {
            disk_full = is_disk_full_errno(rec.value());
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    } catch (...) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes += blob.size();
    return true;
}

void PulseStore::quarantine(const std::filesystem::path& p) {
    std::error_code ec;
    std::size_t io_errs = 0;
    const std::filesystem::path qdir = dir_ / kQuarantineDir;
    std::filesystem::create_directories(qdir, ec);
    if (ec) ++io_errs; // post-mortem copy lost; the delete below still protects
    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = ++temp_serial_;
    }
    std::filesystem::rename(p,
                            qdir / (p.filename().string() + "." +
                                    std::to_string(process_id()) + "-" +
                                    std::to_string(serial)),
                            ec);
    // If even the rename fails, delete: a corrupt entry must not be served
    // (or quarantined+requarantined) forever.
    if (ec) {
        ++io_errs;
        std::filesystem::remove(p, ec);
        if (ec) ++io_errs; // entry is stuck in place — operators must see this
    }
    if (io_errs > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.io_errors += io_errs;
    }
}

std::size_t PulseStore::sweep_stale_temps() {
    // Crash leftovers only: both the loose writer ("tmp-*") and the pack
    // builder ("*.pack.tmp") hold their temps for milliseconds between
    // create and rename, so anything past kStaleTempAge has no live owner.
    std::size_t swept = 0, io_errs = 0;
    std::error_code ec;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!is_temp_file(*it)) continue;
        std::error_code fec;
        const auto mtime = it->last_write_time(fec);
        if (fec || mtime + kStaleTempAge >= now) continue;
        std::filesystem::remove(it->path(), fec);
        if (fec)
            ++io_errs;
        else
            ++swept;
    }
    if (io_errs > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.io_errors += io_errs;
    }
    return swept;
}

std::uint64_t PulseStore::scan_bytes() const {
    // Loose entries plus quarantined files: quarantine/ shares the byte
    // budget (it exists for post-mortems, not as a free second store).
    std::uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::error_code fec;
        if (is_entry_file(*it)) total += it->file_size(fec);
    }
    for (std::filesystem::directory_iterator it(dir_ / kQuarantineDir, ec), end;
         !ec && it != end; it.increment(ec)) {
        std::error_code fec;
        if (it->is_regular_file()) total += it->file_size(fec);
    }
    return total;
}

std::size_t PulseStore::compact() {
    sweep_stale_temps();

    struct Entry {
        std::filesystem::path path;
        std::uint64_t size;
        std::filesystem::file_time_type mtime;
    };
    const auto collect = [](const std::filesystem::path& dir, bool entries_only,
                            std::vector<Entry>& out, std::uint64_t& total,
                            std::size_t& io_errs, bool surface_walk_failure) {
        std::error_code ec;
        for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
             it.increment(ec)) {
            if (entries_only ? !is_entry_file(*it)
                             : (!it->is_regular_file() || is_temp_file(*it)))
                continue;
            std::error_code fec;
            Entry e{it->path(), it->file_size(fec), it->last_write_time(fec)};
            if (fec) continue; // vanished under a concurrent eviction
            total += e.size;
            out.push_back(std::move(e));
        }
        // A failed directory walk means the byte accounting below is a lie
        // by omission — surface it rather than silently trusting a partial
        // scan. (The quarantine dir legitimately may not exist yet.)
        if (ec && surface_walk_failure) ++io_errs;
    };
    const auto oldest_first = [](std::vector<Entry>& v) {
        // Oldest first; filename tiebreak keeps the order deterministic when
        // the filesystem's mtime granularity lumps a burst of writes.
        std::sort(v.begin(), v.end(), [](const Entry& a, const Entry& b) {
            return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
        });
    };

    std::vector<Entry> entries, quarantined;
    std::uint64_t total = 0;
    std::size_t io_errs = 0;
    collect(dir_, /*entries_only=*/true, entries, total, io_errs, true);
    collect(dir_ / kQuarantineDir, /*entries_only=*/false, quarantined, total,
            io_errs, false);

    std::size_t evicted = 0, q_evicted = 0, packed = 0;
    bool pack_disk_full = false;
    std::shared_ptr<PackReader> new_pack;
    if (opt_.max_bytes > 0 && total > opt_.max_bytes) {
        const std::uint64_t target = static_cast<std::uint64_t>(
            static_cast<double>(opt_.max_bytes) *
            std::clamp(opt_.compact_to, 0.0, 1.0));
        // Quarantined files go first: they serve no lookups, they exist only
        // for post-mortems, and every byte they hold is a byte a live entry
        // cannot use.
        oldest_first(quarantined);
        for (const Entry& e : quarantined) {
            if (total <= target) break;
            std::error_code rec;
            if (std::filesystem::remove(e.path, rec) && !rec) {
                total -= e.size;
                ++q_evicted;
            } else if (rec) {
                ++io_errs;
            }
        }
        oldest_first(entries);
        // The eviction victims, chosen up front so the optional pack fold
        // covers exactly the entries about to disappear.
        std::vector<const Entry*> victims;
        {
            std::uint64_t would_remain = total;
            for (const Entry& e : entries) {
                if (would_remain <= target) break;
                victims.push_back(&e);
                would_remain -= e.size;
            }
        }
        bool fold = opt_.pack_on_compact && !victims.empty();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (disabled_) fold = false; // memory-only: no new files, period
        }
        if (fold) {
            // Crash-safe fold: build the pack from the victims' bytes, make
            // it durable (fsync + rename inside write_pack), and only then
            // delete the loose files below. A crash in between leaves the
            // key in both tiers — the loose entry just shadows the pack.
            std::vector<PackEntry> to_pack;
            for (const Entry* e : victims)
                if (std::optional<PackEntry> parsed = read_entry_file(e->path))
                    to_pack.push_back(std::move(*parsed));
            if (!to_pack.empty()) {
                std::uint64_t serial;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    serial = ++temp_serial_;
                }
                const std::filesystem::path pack_path =
                    dir_ / ("pack-" + std::to_string(process_id()) + "-" +
                            std::to_string(serial) + kPackSuffix);
                const std::size_t count = to_pack.size();
                if (write_pack(pack_path, std::move(to_pack), nullptr,
                               &pack_disk_full)) {
                    new_pack = PackReader::open(pack_path);
                    if (new_pack != nullptr) packed = count;
                    // An unopenable pack we just wrote is a broken disk;
                    // fall through — the victims are still deleted, just
                    // not preserved.
                } else {
                    ++io_errs;
                }
            }
        }
        for (const Entry* e : victims) {
            std::error_code rec;
            if (std::filesystem::remove(e->path, rec) && !rec) {
                total -= e->size;
                ++evicted;
            } else if (rec) {
                ++io_errs; // undeletable entry: budget cannot be honored
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evicted += evicted;
    stats_.quarantine_evicted += q_evicted;
    stats_.packed += packed;
    stats_.io_errors += io_errs;
    stats_.bytes = total;
    if (new_pack != nullptr) {
        // Newest local pack probes *after* existing ones: entry duplication
        // across local packs is possible only via re-publish + re-fold, and
        // then the older copy is the one revalidation already vetted.
        stats_.pack_entries += new_pack->entry_count();
        stats_.pack_bytes += new_pack->size_bytes();
        packs_.push_back(std::move(new_pack));
        stats_.packs_open = packs_.size();
    }
    if (pack_disk_full && !disabled_) {
        // ENOSPC during the fold rides the same one-way trip as a failed
        // entry write: stop trying to grow files on a full disk.
        disabled_ = true;
        ++stats_.disabled_enospc;
    }
    return evicted;
}

PulseStoreStats PulseStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace epoc::store
