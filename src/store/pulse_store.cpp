#include "store/pulse_store.h"

#include "qoc/pulse_io.h"
#include "util/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace epoc::store {

namespace {

constexpr char kMagic[8] = {'E', 'P', 'O', 'C', 'P', 'U', 'L', 'S'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kEntrySuffix = ".pulse";
constexpr const char* kTempPrefix = "tmp-";
/// Temp files older than this are crash leftovers, safe to sweep: a live
/// writer holds its temp for milliseconds between create and rename.
constexpr auto kStaleTempAge = std::chrono::minutes(10);
/// Minimum entry size: magic + version + key length + payload length +
/// checksum around an empty key and payload.
constexpr std::uint64_t kMinEntrySize = 8 + 4 + 8 + 8 + 8;
/// Keys are short generated strings; a length field beyond this is garbage.
constexpr std::uint64_t kMaxKeyBytes = 1ull << 24;

std::uint64_t process_id() {
#ifdef __unix__
    return static_cast<std::uint64_t>(::getpid());
#else
    return 0;
#endif
}

/// Whole-file read; empty optional when the file cannot be opened (the
/// common miss path) or cannot be read.
std::optional<std::string> slurp(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) return std::nullopt;
    return bytes;
}

/// Durably write `bytes` to `p` (fsync before close, so a crash after the
/// subsequent rename cannot publish a file whose data never hit the disk).
/// On failure `err` holds the errno of the first failing step.
bool write_file_synced(const std::filesystem::path& p, const std::string& bytes,
                       int& err) {
    errno = 0;
    std::FILE* f = std::fopen(p.c_str(), "wb");
    if (f == nullptr) {
        err = errno;
        return false;
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (!ok) err = errno;
    if (std::fflush(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#ifdef __unix__
    if (::fsync(::fileno(f)) != 0) {
        if (ok) err = errno;
        ok = false;
    }
#endif
    if (std::fclose(f) != 0) {
        if (ok) err = errno;
        ok = false;
    }
    return ok;
}

/// ENOSPC-class: failures that mean "this filesystem will keep refusing
/// writes" — retrying per-compile only burns syscalls and log lines.
bool is_disk_full_errno(int err) {
    return err == ENOSPC || err == EROFS || err == EACCES || err == EPERM
#ifdef EDQUOT
           || err == EDQUOT
#endif
        ;
}

bool is_entry_file(const std::filesystem::directory_entry& e) {
    return e.is_regular_file() && e.path().extension() == kEntrySuffix;
}

bool is_temp_file(const std::filesystem::directory_entry& e) {
    return e.is_regular_file() &&
           e.path().filename().string().rfind(kTempPrefix, 0) == 0;
}

} // namespace

PulseStore::PulseStore(PulseStoreOptions opt) : opt_(std::move(opt)), dir_(opt_.dir) {
    if (opt_.dir.empty())
        throw std::runtime_error("PulseStore: empty store directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_))
        throw std::runtime_error("PulseStore: cannot create store directory '" +
                                 opt_.dir + "': " + ec.message());
    stats_.bytes = scan_bytes();
}

std::string PulseStore::dir_from_env() {
    const char* dir = std::getenv("EPOC_PULSE_STORE");
    return dir == nullptr ? std::string() : std::string(dir);
}

std::filesystem::path PulseStore::entry_path(const std::string& key) const {
    static const char* hex = "0123456789abcdef";
    const std::uint64_t h = qoc::fnv1a64(key);
    std::string name(16, '0');
    for (int i = 0; i < 16; ++i)
        name[static_cast<std::size_t>(i)] = hex[(h >> (60 - 4 * i)) & 0xf];
    return dir_ / (name + kEntrySuffix);
}

std::optional<qoc::LatencyResult> PulseStore::load(const std::string& key) {
    try {
        util::fault::maybe_throw("store.read");
        std::optional<qoc::LatencyResult> r = load_impl(key);
        std::lock_guard<std::mutex> lock(mutex_);
        if (r)
            ++stats_.hits;
        else
            ++stats_.misses;
        return r;
    } catch (...) {
        // An unreadable store is a cold store, never a failed compile.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.io_errors;
        ++stats_.misses;
        return std::nullopt;
    }
}

std::optional<qoc::LatencyResult> PulseStore::load_impl(const std::string& key) {
    const std::filesystem::path p = entry_path(key);
    const std::optional<std::string> bytes = slurp(p);
    if (!bytes) return std::nullopt; // plain miss (or vanished under eviction)

    const auto corrupt = [&]() -> std::optional<qoc::LatencyResult> {
        quarantine(p);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
        return std::nullopt;
    };

    // Header checks in diagnosis order: structure, then integrity, then
    // identity. A version mismatch is detected before the checksum so future
    // format revisions are reported as such even if they also moved the
    // trailer.
    if (bytes->size() < kMinEntrySize) return corrupt();
    if (std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) return corrupt();
    qoc::ByteReader header(bytes->data() + sizeof(kMagic),
                           bytes->size() - sizeof(kMagic));
    std::uint32_t version;
    std::uint64_t key_len;
    if (!header.get_u32(version)) return corrupt();
    if (version != kFormatVersion) return corrupt();
    if (!header.get_u64(key_len) || key_len > kMaxKeyBytes ||
        key_len > header.remaining())
        return corrupt();

    qoc::ByteReader trailer(bytes->data() + bytes->size() - 8, 8);
    std::uint64_t checksum;
    trailer.get_u64(checksum);
    if (qoc::fnv1a64(bytes->data(), bytes->size() - 8) != checksum) return corrupt();

    const char* key_begin = bytes->data() + sizeof(kMagic) + 4 + 8;
    if (key.size() != key_len ||
        std::memcmp(key_begin, key.data(), static_cast<std::size_t>(key_len)) != 0) {
        // Hash collision: a *valid* entry for some other key lives at our
        // content address. It is not corrupt — leave it in place (last
        // writer wins the name; see header) and report a miss.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.collisions;
        return std::nullopt;
    }

    qoc::ByteReader body(key_begin + key_len,
                         bytes->size() - (sizeof(kMagic) + 4 + 8) -
                             static_cast<std::size_t>(key_len) - 8);
    std::uint64_t payload_len;
    if (!body.get_u64(payload_len) || payload_len != body.remaining())
        return corrupt();
    const std::string payload(key_begin + key_len + 8,
                              static_cast<std::size_t>(payload_len));
    std::optional<qoc::LatencyResult> result = qoc::decode_latency_result(payload);
    if (!result) return corrupt();

    // LRU touch: a hit makes the entry recent, so hot pulses survive
    // compaction. Best effort — a read-only store still serves hits.
    std::error_code ec;
    std::filesystem::last_write_time(
        p, std::filesystem::file_time_type::clock::now(), ec);
    return result;
}

void PulseStore::store(const std::string& key, const qoc::LatencyResult& result) {
    // The poisoning rule, enforced at the last line of defense: a degraded
    // result must never outlive the process, whatever the caller believed.
    if (!result.authoritative()) return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (disabled_) {
            ++stats_.skipped_disabled;
            return;
        }
    }
    // store.enospc: deterministic stand-in for a full disk (tests often run
    // as root, where permission tricks cannot make a write fail).
    bool disk_full = util::fault::maybe_fail("store.enospc");
    bool wrote = false;
    if (!disk_full) {
        try {
            wrote = write_impl(key, result, disk_full);
        } catch (...) {
            wrote = false;
        }
    }
    std::uint64_t over_budget = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (wrote) {
            ++stats_.writes;
            if (opt_.max_bytes > 0 && stats_.bytes > opt_.max_bytes)
                over_budget = stats_.bytes;
        } else {
            ++stats_.io_errors;
            if (disk_full && !disabled_) {
                disabled_ = true;
                ++stats_.disabled_enospc;
            }
        }
    }
    if (over_budget > 0) compact();
}

bool PulseStore::memory_only() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return disabled_;
}

void PulseStore::invalidate(const std::string& key) {
    const std::filesystem::path p = entry_path(key);
    std::error_code ec;
    if (!std::filesystem::exists(p, ec) || ec) return;
    quarantine(p);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.invalidated;
}

std::size_t PulseStore::corrupt_all_entries_for_test() {
    std::size_t corrupted = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!is_entry_file(*it)) continue;
        const std::optional<std::string> bytes = slurp(it->path());
        if (!bytes || bytes->size() < kMinEntrySize) continue;
        if (std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) continue;
        qoc::ByteReader header(bytes->data() + sizeof(kMagic),
                               bytes->size() - sizeof(kMagic));
        std::uint32_t version;
        std::uint64_t key_len;
        if (!header.get_u32(version) || version != kFormatVersion) continue;
        if (!header.get_u64(key_len) || key_len > kMaxKeyBytes ||
            key_len > header.remaining())
            continue;
        const char* key_begin = bytes->data() + sizeof(kMagic) + 4 + 8;
        const std::string key(key_begin, static_cast<std::size_t>(key_len));
        qoc::ByteReader body(key_begin + key_len,
                             bytes->size() - (sizeof(kMagic) + 4 + 8) -
                                 static_cast<std::size_t>(key_len) - 8);
        std::uint64_t payload_len;
        if (!body.get_u64(payload_len) || payload_len != body.remaining()) continue;
        const std::string payload(key_begin + key_len + 8,
                                  static_cast<std::size_t>(payload_len));
        std::optional<qoc::LatencyResult> result = qoc::decode_latency_result(payload);
        if (!result) continue;
        // Zero the amplitudes, keep the recorded fidelity and every flag,
        // republish through the ordinary writer: a valid, checksummed entry
        // whose physics no longer matches its own metadata.
        for (std::vector<double>& line : result->pulse.amplitudes)
            std::fill(line.begin(), line.end(), 0.0);
        bool disk_full = false;
        if (write_impl(key, *result, disk_full)) ++corrupted;
    }
    return corrupted;
}

bool PulseStore::write_impl(const std::string& key, const qoc::LatencyResult& result,
                            bool& disk_full) {
    std::string blob;
    blob.append(kMagic, sizeof(kMagic));
    qoc::put_u32(blob, kFormatVersion);
    qoc::put_u64(blob, key.size());
    blob += key;
    const std::string payload = qoc::encode_latency_result(result);
    qoc::put_u64(blob, payload.size());
    blob += payload;
    qoc::put_u64(blob, qoc::fnv1a64(blob));

    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = ++temp_serial_;
    }
    const std::filesystem::path final_path = entry_path(key);
    const std::filesystem::path tmp =
        dir_ / (std::string(kTempPrefix) + std::to_string(process_id()) + "-" +
                std::to_string(serial) + "-" + final_path.stem().string());
    try {
        util::fault::maybe_throw("store.write");
        int err = 0;
        if (!write_file_synced(tmp, blob, err)) {
            disk_full = is_disk_full_errno(err);
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
        util::fault::maybe_throw("store.rename");
        // The atomic publish: readers see the old entry or the new one,
        // never a prefix.
        std::error_code rec;
        std::filesystem::rename(tmp, final_path, rec);
        if (rec) {
            disk_full = is_disk_full_errno(rec.value());
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    } catch (...) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes += blob.size();
    return true;
}

void PulseStore::quarantine(const std::filesystem::path& p) {
    std::error_code ec;
    std::size_t io_errs = 0;
    const std::filesystem::path qdir = dir_ / "quarantine";
    std::filesystem::create_directories(qdir, ec);
    if (ec) ++io_errs; // post-mortem copy lost; the delete below still protects
    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = ++temp_serial_;
    }
    std::filesystem::rename(p,
                            qdir / (p.filename().string() + "." +
                                    std::to_string(process_id()) + "-" +
                                    std::to_string(serial)),
                            ec);
    // If even the rename fails, delete: a corrupt entry must not be served
    // (or quarantined+requarantined) forever.
    if (ec) {
        ++io_errs;
        std::filesystem::remove(p, ec);
        if (ec) ++io_errs; // entry is stuck in place — operators must see this
    }
    if (io_errs > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.io_errors += io_errs;
    }
}

std::uint64_t PulseStore::scan_bytes() const {
    std::uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::error_code fec;
        if (is_entry_file(*it)) total += it->file_size(fec);
    }
    return total;
}

std::size_t PulseStore::compact() {
    struct Entry {
        std::filesystem::path path;
        std::uint64_t size;
        std::filesystem::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::size_t io_errs = 0;
    std::error_code ec;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::error_code fec;
        if (is_temp_file(*it)) {
            // Crash leftovers: a temp that outlived any plausible writer.
            if (it->last_write_time(fec) + kStaleTempAge < now && !fec) {
                std::filesystem::remove(it->path(), fec);
                if (fec) ++io_errs;
            }
            continue;
        }
        if (!is_entry_file(*it)) continue;
        Entry e{it->path(), it->file_size(fec), it->last_write_time(fec)};
        if (fec) continue; // vanished under a concurrent eviction
        total += e.size;
        entries.push_back(std::move(e));
    }
    // A failed directory walk means the byte accounting below is a lie by
    // omission — surface it rather than silently trusting a partial scan.
    if (ec) ++io_errs;

    std::size_t evicted = 0;
    if (opt_.max_bytes > 0 && total > opt_.max_bytes) {
        const std::uint64_t target = static_cast<std::uint64_t>(
            static_cast<double>(opt_.max_bytes) *
            std::clamp(opt_.compact_to, 0.0, 1.0));
        // Oldest first; filename tiebreak keeps the order deterministic when
        // the filesystem's mtime granularity lumps a burst of writes.
        std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
            return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
        });
        for (const Entry& e : entries) {
            if (total <= target) break;
            std::error_code rec;
            if (std::filesystem::remove(e.path, rec) && !rec) {
                total -= e.size;
                ++evicted;
            } else if (rec) {
                ++io_errs; // undeletable entry: budget cannot be honored
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evicted += evicted;
    stats_.io_errors += io_errs;
    stats_.bytes = total;
    return evicted;
}

PulseStoreStats PulseStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace epoc::store
