// Persistent on-disk pulse artifact store: the crash-safe L2 tier behind
// qoc::PulseLibrary.
//
// The pulse library is EPOC's amortization engine (paper Section 3.4): the
// compile-time wins of Figure 9 assume repeated unitaries hit a cache instead
// of re-running GRAPE. In-memory, that amortization dies with the process.
// This store persists each authoritative latency-search result as one
// content-addressed file, so a fresh compiler — or a concurrent one sharing
// the directory — re-pays zero optimal-control cost for anything any prior
// run already solved. A warm run from a populated store is bit-identical to
// the cold run that filled it (the codec round-trips doubles exactly).
//
// On-disk format (one entry per file, `<fnv1a64(key) as 16 hex>.pulse`):
//
//   offset  size  field
//   ------  ----  -----
//        0     8  magic "EPOCPULS"
//        8     4  format version (little-endian u32; readers reject != ours)
//       12     8  key length (u64)
//       20     K  the full generation key, verbatim — the content address is
//                 a *hash* of this, so readers compare the key byte-for-byte
//                 and treat a mismatch as a hash collision (a miss for our
//                 key), never as our entry
//    20+K      8  payload length (u64)
//    28+K      P  qoc::encode_latency_result payload (pulse_io.h)
//  28+K+P      8  FNV-1a64 of bytes [0, 28+K+P) — integrity checksum
//
// Crash safety is by atomic publish: writes go to a unique temp file in the
// same directory, then std::filesystem::rename onto the final name. POSIX
// rename is atomic, so a reader (or a concurrent writer) sees either the old
// complete entry or the new complete entry, never a torn one; a crash leaves
// at most an unreferenced temp file (cleaned opportunistically on
// compaction). Writers racing on one name last-wins with identical bytes
// (generation is deterministic), which is idempotent.
//
// Corruption is never fatal: a truncated, bit-flipped, wrong-magic,
// wrong-version or undecodable file is *quarantined* (renamed into
// `quarantine/` for post-mortem) and reported as a miss, so the library
// transparently recomputes and the next write re-publishes a good entry.
//
// The directory is size-bounded: when the payload bytes exceed
// PulseStoreOptions::max_bytes, a compaction pass deletes entries
// oldest-mtime-first (LRU approximation: loads re-touch mtime) until the
// directory is back under `compact_to * max_bytes`.
//
// Fault-injection sites (util/fault_injection.h): `store.read`,
// `store.write`, `store.rename` — each fires as an I/O failure at that stage;
// the store must degrade to miss/no-op with no torn or degraded entry ever
// published. Real filesystem errors (ENOSPC, EPERM, ...) take the same paths.
//
// Disk-full protection: the first write failure whose errno is in the
// ENOSPC class (ENOSPC, EDQUOT, EROFS, EACCES, EPERM — or the `store.enospc`
// fault site) trips the store into *memory-only mode*: loads keep serving
// whatever is already on disk, but writes are skipped from then on
// (stats counters `disabled_enospc` / `skipped_disabled`) instead of
// hammering a full or read-only filesystem on every compile. The trip is
// one-way for the store's lifetime — recovering disk space needs an
// operator anyway, and a process restart re-arms the writer.
#pragma once

#include "qoc/pulse_library.h"

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>

namespace epoc::store {

struct PulseStoreOptions {
    /// Directory holding the entries (created, with parents, on
    /// construction). One directory may be shared by any number of stores in
    /// any number of processes.
    std::string dir;
    /// Byte budget for the entry files. <= 0 disables compaction entirely.
    std::uint64_t max_bytes = 256ull << 20;
    /// Compaction target: evict down to this fraction of max_bytes, so one
    /// pass buys headroom instead of thrashing at the boundary.
    double compact_to = 0.8;
};

struct PulseStoreStats {
    std::size_t hits = 0;       ///< loads that returned an entry
    std::size_t misses = 0;     ///< loads that found no (usable) entry
    std::size_t writes = 0;     ///< entries successfully published
    std::size_t corrupt = 0;    ///< files quarantined (bad magic/version/checksum/decode)
    std::size_t collisions = 0; ///< hash matched, key differed (counted in misses)
    std::size_t evicted = 0;    ///< entries deleted by compaction
    std::size_t io_errors = 0;  ///< read/write/rename failures (incl. injected)
    /// Entries quarantined by invalidate(): bytes were intact (the load
    /// passed every integrity check) but revalidation proved the physics
    /// wrong. Disjoint from `corrupt`, which counts structural damage.
    std::size_t invalidated = 0;
    /// Times the write path tripped into memory-only mode on an
    /// ENOSPC-class failure (0 or 1 — the trip is one-way; see header).
    std::size_t disabled_enospc = 0;
    /// Writes skipped because the store is in memory-only mode.
    std::size_t skipped_disabled = 0;
    std::uint64_t bytes = 0;    ///< entry bytes on disk, as last accounted
};

class PulseStore final : public qoc::PulseTier {
public:
    /// Opens (creating if needed) the store directory and accounts existing
    /// entries toward the byte budget. Throws std::runtime_error when the
    /// directory cannot be created — a store you explicitly configured but
    /// cannot use is a setup error, not something to paper over.
    explicit PulseStore(PulseStoreOptions opt);

    /// qoc::PulseTier: verify-and-load the entry for `key`. Any failure —
    /// missing file, I/O error, corruption (quarantined), version mismatch
    /// (quarantined), hash collision — is a miss. Never throws.
    std::optional<qoc::LatencyResult> load(const std::string& key) override;

    /// qoc::PulseTier: atomically publish `result` under `key`. Refuses
    /// non-authoritative results outright (degraded pulses must never
    /// outlive the process, whatever the caller thinks). Never throws;
    /// failures count as io_errors and leave no partial file behind.
    void store(const std::string& key, const qoc::LatencyResult& result) override;

    /// qoc::PulseTier: quarantine the entry for `key` (same post-mortem
    /// directory the corruption path uses) so later loads miss and the next
    /// authoritative write re-publishes. Called when store revalidation
    /// rejects an entry whose bytes are intact but whose physics is wrong.
    /// Never throws; a missing entry is a no-op.
    void invalidate(const std::string& key) override;

    /// Test hook: rewrite every entry in place with zeroed pulse amplitudes
    /// but the original recorded fidelity — then re-checksum. The result is
    /// *post-checksum* corruption: magic, version, key, codec and checksum
    /// all verify, so load() serves it as a clean hit and only re-simulation
    /// (verify-layer revalidation) can catch it. Returns how many entries
    /// were rewritten. Exists so tests and CI can prove that detection,
    /// quarantine and recompute actually happen; never call it otherwise.
    std::size_t corrupt_all_entries_for_test();

    /// Force a compaction pass now (also run automatically when a write
    /// pushes the directory over budget). Deletes oldest-mtime entries until
    /// under `compact_to * max_bytes`, sweeps stale temp files, and refreshes
    /// the byte accounting. Returns the number of entries evicted.
    std::size_t compact();

    /// Path the entry for `key` lives at (exposed for tests and tooling).
    std::filesystem::path entry_path(const std::string& key) const;

    PulseStoreStats stats() const;
    const PulseStoreOptions& options() const { return opt_; }

    /// True once an ENOSPC-class write failure tripped the store into
    /// memory-only mode (loads serve, writes skip).
    bool memory_only() const;

    /// Store directory from the EPOC_PULSE_STORE environment variable, empty
    /// when unset. The conventional way to arm any binary with persistence.
    static std::string dir_from_env();

private:
    std::optional<qoc::LatencyResult> load_impl(const std::string& key);
    /// `disk_full` is set when the failure was ENOSPC-class (caller trips
    /// memory-only mode); untouched on success and on other failures.
    bool write_impl(const std::string& key, const qoc::LatencyResult& result,
                    bool& disk_full);
    void quarantine(const std::filesystem::path& p);
    std::uint64_t scan_bytes() const;

    PulseStoreOptions opt_;
    std::filesystem::path dir_;

    mutable std::mutex mutex_; ///< guards stats_, disabled_, temp_serial_
    PulseStoreStats stats_;
    bool disabled_ = false; ///< memory-only mode (ENOSPC-class trip)
    std::uint64_t temp_serial_ = 0;
};

} // namespace epoc::store
