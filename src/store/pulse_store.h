// Persistent on-disk pulse artifact store: the crash-safe L2 tier behind
// qoc::PulseLibrary.
//
// The pulse library is EPOC's amortization engine (paper Section 3.4): the
// compile-time wins of Figure 9 assume repeated unitaries hit a cache instead
// of re-running GRAPE. In-memory, that amortization dies with the process.
// This store persists each authoritative latency-search result as one
// content-addressed file, so a fresh compiler — or a concurrent one sharing
// the directory — re-pays zero optimal-control cost for anything any prior
// run already solved. A warm run from a populated store is bit-identical to
// the cold run that filled it (the codec round-trips doubles exactly).
//
// On-disk format (one entry per file, `<fnv1a64(key) as 16 hex>.pulse`):
//
//   offset  size  field
//   ------  ----  -----
//        0     8  magic "EPOCPULS"
//        8     4  format version (little-endian u32; readers reject != ours)
//       12     8  key length (u64)
//       20     K  the full generation key, verbatim — the content address is
//                 a *hash* of this, so readers compare the key byte-for-byte
//                 and treat a mismatch as a hash collision (a miss for our
//                 key), never as our entry
//    20+K      8  payload length (u64)
//    28+K      P  qoc::encode_latency_result payload (pulse_io.h)
//  28+K+P      8  FNV-1a64 of bytes [0, 28+K+P) — integrity checksum
//
// Crash safety is by atomic publish: writes go to a unique temp file in the
// same directory, then std::filesystem::rename onto the final name. POSIX
// rename is atomic, so a reader (or a concurrent writer) sees either the old
// complete entry or the new complete entry, never a torn one; a crash leaves
// at most an unreferenced temp file (cleaned opportunistically on
// compaction). Writers racing on one name last-wins with identical bytes
// (generation is deterministic), which is idempotent.
//
// Corruption is never fatal: a truncated, bit-flipped, wrong-magic,
// wrong-version or undecodable file is *quarantined* (renamed into
// `quarantine/` for post-mortem) and reported as a miss, so the library
// transparently recomputes and the next write re-publishes a good entry.
//
// The directory is size-bounded: when the payload bytes exceed
// PulseStoreOptions::max_bytes, a compaction pass deletes entries
// oldest-mtime-first (LRU approximation: loads re-touch mtime) until the
// directory is back under `compact_to * max_bytes`.
//
// Fault-injection sites (util/fault_injection.h): `store.read`,
// `store.write`, `store.rename` — each fires as an I/O failure at that stage;
// the store must degrade to miss/no-op with no torn or degraded entry ever
// published. Real filesystem errors (ENOSPC, EPERM, ...) take the same paths.
//
// Disk-full protection: the first write failure whose errno is in the
// ENOSPC class (ENOSPC, EDQUOT, EROFS, EACCES, EPERM — or the `store.enospc`
// fault site) trips the store into *memory-only mode*: loads keep serving
// whatever is already on disk, but writes are skipped from then on
// (stats counters `disabled_enospc` / `skipped_disabled`) instead of
// hammering a full or read-only filesystem on every compile. The trip is
// one-way for the store's lifetime — recovering disk space needs an
// operator anyway, and a process restart re-arms the writer. An ENOSPC-class
// failure while compaction folds entries into a pack rides the same trip.
//
// Pack tier (pack.h): behind the loose one-file-per-entry tier sits an
// ordered list of immutable pack segments — `*.pack` files in the store
// directory itself (produced by compaction when `pack_on_compact` is set)
// followed by every directory in PulseStoreOptions::pack_dirs (read-only
// shared libraries, e.g. a fleet-wide warm artifact). Lookup order is
//
//   loose entry  →  local packs (filename order)  →  shared packs
//                                                    (dir order, then filename)
//
// so a locally regenerated entry always shadows a pack. Pack bytes do NOT
// count toward `max_bytes` — packs are immutable operator-managed artifacts,
// and evicting one to make room for loose churn would throw away exactly the
// cold tail compaction worked to preserve. Every integrity failure inside a
// pack (malformed index at open, checksum mismatch, embedded key disagreeing
// with the index, torn mmap page) marks that pack *suspect* — it answers
// every later probe with a miss — and quarantines the file (best-effort
// rename into its own directory's `quarantine/`; a read-only share that
// refuses the rename is left in place, the in-memory suspect flag still
// protects this process). Entries a revalidator rejects land in an in-memory
// *denylist* instead: the read-only file is never touched, the key just
// stops resolving through packs, and the regenerated loose entry shadows it.
#pragma once

#include "qoc/pulse_library.h"
#include "store/pack.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace epoc::store {

struct PulseStoreOptions {
    /// Directory holding the entries (created, with parents, on
    /// construction). One directory may be shared by any number of stores in
    /// any number of processes.
    std::string dir;
    /// Byte budget for the entry files. <= 0 disables compaction entirely.
    std::uint64_t max_bytes = 256ull << 20;
    /// Compaction target: evict down to this fraction of max_bytes, so one
    /// pass buys headroom instead of thrashing at the boundary.
    double compact_to = 0.8;
    /// Read-only shared pack directories, probed after the local tier in this
    /// order (see header). Missing directories are tolerated (a share that is
    /// not mounted is a cold tier, not an error).
    std::vector<std::string> pack_dirs;
    /// When set, compaction folds the loose entries it would have evicted
    /// into a new local pack segment first and deletes them only after the
    /// pack is durable (fsync + rename) — the entries stay servable, just
    /// colder. Off by default: packing is an explicit operational choice.
    bool pack_on_compact = false;
};

struct PulseStoreStats {
    std::size_t hits = 0;       ///< loads that returned an entry
    std::size_t misses = 0;     ///< loads that found no (usable) entry
    std::size_t writes = 0;     ///< entries successfully published
    std::size_t corrupt = 0;    ///< files quarantined (bad magic/version/checksum/decode)
    std::size_t collisions = 0; ///< hash matched, key differed (counted in misses)
    std::size_t evicted = 0;    ///< entries deleted by compaction
    std::size_t io_errors = 0;  ///< read/write/rename failures (incl. injected)
    /// Entries quarantined by invalidate(): bytes were intact (the load
    /// passed every integrity check) but revalidation proved the physics
    /// wrong. Disjoint from `corrupt`, which counts structural damage.
    std::size_t invalidated = 0;
    /// Times the write path tripped into memory-only mode on an
    /// ENOSPC-class failure (0 or 1 — the trip is one-way; see header).
    std::size_t disabled_enospc = 0;
    /// Writes skipped because the store is in memory-only mode.
    std::size_t skipped_disabled = 0;
    /// Quarantined files deleted by compaction to honor the byte budget —
    /// quarantine/ shares `max_bytes` and is evicted before live entries.
    std::size_t quarantine_evicted = 0;
    /// Budgeted bytes on disk as last accounted: loose entries plus
    /// quarantined files (which share `max_bytes`); packs are excluded.
    std::uint64_t bytes = 0;
    // Pack tier (all zero when no packs are configured or produced):
    std::size_t pack_hits = 0;    ///< loads served from a pack (subset of hits)
    std::size_t pack_denied = 0;  ///< pack probes blocked by the denylist
    std::size_t pack_corrupt = 0; ///< entry integrity failures inside packs
    /// Packs marked suspect (open-time rejection or a lookup integrity
    /// failure) and quarantined. Each pack counts once.
    std::size_t pack_suspect = 0;
    std::size_t packs_open = 0;   ///< packs currently open and probed
    std::size_t pack_entries = 0; ///< entries indexed across open packs
    std::size_t packed = 0;       ///< loose entries folded into packs by compaction
    std::uint64_t pack_bytes = 0; ///< bytes across open packs (outside the budget)
};

class PulseStore final : public qoc::PulseTier {
public:
    /// Opens (creating if needed) the store directory and accounts existing
    /// entries toward the byte budget. Throws std::runtime_error when the
    /// directory cannot be created — a store you explicitly configured but
    /// cannot use is a setup error, not something to paper over.
    explicit PulseStore(PulseStoreOptions opt);

    /// qoc::PulseTier: verify-and-load the entry for `key` — loose tier
    /// first, then the ordered pack list (see header). Any failure — missing
    /// file, I/O error, corruption (quarantined), version mismatch
    /// (quarantined), hash collision, suspect or denylisted pack entry — is a
    /// miss. `*from_pack` (when non-null) reports whether the hit came from a
    /// pack segment rather than a loose entry. Never throws.
    std::optional<qoc::LatencyResult> load(const std::string& key,
                                           bool* from_pack = nullptr) override;

    /// qoc::PulseTier: atomically publish `result` under `key`. Refuses
    /// non-authoritative results outright (degraded pulses must never
    /// outlive the process, whatever the caller thinks). Never throws;
    /// failures count as io_errors and leave no partial file behind.
    void store(const std::string& key, const qoc::LatencyResult& result) override;

    /// qoc::PulseTier: quarantine the loose entry for `key` (same post-mortem
    /// directory the corruption path uses) so later loads miss and the next
    /// authoritative write re-publishes. When any open pack indexes the key,
    /// it is also added to the in-memory denylist, so the rejected entry
    /// cannot keep resolving through the read-only tier (the pack file itself
    /// is never modified). Called when store revalidation rejects an entry
    /// whose bytes are intact but whose physics is wrong. Never throws; a
    /// missing entry is a no-op.
    void invalidate(const std::string& key) override;

    /// Test hook: rewrite every entry in place with zeroed pulse amplitudes
    /// but the original recorded fidelity — then re-checksum. The result is
    /// *post-checksum* corruption: magic, version, key, codec and checksum
    /// all verify, so load() serves it as a clean hit and only re-simulation
    /// (verify-layer revalidation) can catch it. Returns how many entries
    /// were rewritten. Exists so tests and CI can prove that detection,
    /// quarantine and recompute actually happen; never call it otherwise.
    std::size_t corrupt_all_entries_for_test();

    /// Force a compaction pass now (also run automatically when a write
    /// pushes the directory over budget). Sweeps stale temp files (loose and
    /// pack), evicts quarantined files oldest-mtime-first, then loose entries
    /// oldest-mtime-first — folding the latter into a new local pack segment
    /// first when `pack_on_compact` is set (deleted only after the pack is
    /// durable) — until under `compact_to * max_bytes`, and refreshes the
    /// byte accounting. Returns the number of loose entries removed.
    std::size_t compact();

    /// Parse one loose entry file into its (key, payload) pair, fully
    /// validated (magic, version, checksum, decodability). Empty optional for
    /// anything else — including valid entries of a future format version.
    /// The ingest primitive behind `epoc_pack create` and pack-folding
    /// compaction; quarantines nothing (tooling reports, the store decides).
    static std::optional<PackEntry> read_entry_file(const std::filesystem::path& p);

    /// Path the entry for `key` lives at (exposed for tests and tooling).
    std::filesystem::path entry_path(const std::string& key) const;

    /// The open pack list in probe order (exposed for tests and tooling;
    /// readers are immutable and thread-safe, see pack.h).
    std::vector<std::shared_ptr<PackReader>> packs() const;

    PulseStoreStats stats() const;
    const PulseStoreOptions& options() const { return opt_; }

    /// True once an ENOSPC-class write failure tripped the store into
    /// memory-only mode (loads serve, writes skip).
    bool memory_only() const;

    /// Store directory from the EPOC_PULSE_STORE environment variable, empty
    /// when unset. The conventional way to arm any binary with persistence.
    static std::string dir_from_env();

    /// Colon-separated shared pack directories from the EPOC_PULSE_PACKS
    /// environment variable, empty when unset.
    static std::vector<std::string> pack_dirs_from_env();

private:
    std::optional<qoc::LatencyResult> load_impl(const std::string& key,
                                                bool* from_pack);
    /// `disk_full` is set when the failure was ENOSPC-class (caller trips
    /// memory-only mode); untouched on success and on other failures.
    bool write_impl(const std::string& key, const qoc::LatencyResult& result,
                    bool& disk_full);
    void quarantine(const std::filesystem::path& p);
    /// Mark suspect, account, and best-effort move the file into its own
    /// directory's quarantine/ (a read-only share that refuses stays put —
    /// the suspect flag alone protects this process). Idempotent per pack.
    void quarantine_pack(const std::shared_ptr<PackReader>& pack);
    /// Open every `*.pack` in the local dir then each pack_dirs entry
    /// (construction-time; packs are immutable, so no re-scan afterward).
    void open_packs();
    /// Delete stale temp files (`tmp-*` loose, `*.pack.tmp` pack) older than
    /// kStaleTempAge — crash leftovers. Run at startup and each compaction.
    std::size_t sweep_stale_temps();
    std::uint64_t scan_bytes() const;

    PulseStoreOptions opt_;
    std::filesystem::path dir_;

    mutable std::mutex mutex_; ///< guards stats_, disabled_, temp_serial_,
                               ///< packs_, denylist_
    PulseStoreStats stats_;
    bool disabled_ = false; ///< memory-only mode (ENOSPC-class trip)
    std::uint64_t temp_serial_ = 0;
    /// Probe-ordered open packs. The vector is copied out under the lock and
    /// probed without it (readers are internally thread-safe).
    std::vector<std::shared_ptr<PackReader>> packs_;
    /// Keys revalidation rejected out of the read-only tier (see header).
    std::unordered_set<std::string> denylist_;
};

} // namespace epoc::store
