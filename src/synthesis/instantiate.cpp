#include "synthesis/instantiate.h"

#include "circuit/gate.h"
#include "circuit/unitary.h"
#include "opt/lbfgs.h"

#include <cmath>
#include <numbers>
#include <random>

namespace epoc::synthesis {

namespace {

using circuit::GateKind;
using linalg::cplx;

/// tr(A^dag B) for same-shape matrices.
cplx overlap(const Matrix& a, const Matrix& b) {
    cplx w{0.0, 0.0};
    const std::size_t n = a.rows() * a.cols();
    const cplx* pa = a.data();
    const cplx* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) w += std::conj(pa[i]) * pb[i];
    return w;
}

} // namespace

InstantiateResult instantiate(const SynthStructure& s, const Matrix& target,
                              const InstantiateOptions& opt,
                              const std::vector<double>& warm_start) {
    const int nq = s.num_qubits;
    const std::size_t dim = std::size_t{1} << nq;
    const double d = static_cast<double>(dim);
    const std::size_t np = static_cast<std::size_t>(s.num_params());
    const Matrix cx = circuit::kind_matrix(GateKind::CX, {});

    // Objective: f = 1 - |tr(U^dag C)|/d, with analytic gradients via
    // prefix/suffix products around each VUG.
    const auto objective = [&](const std::vector<double>& x, std::vector<double>& grad) {
        grad.assign(np, 0.0);
        const std::size_t m = s.ops.size();

        // Embedded op matrices and prefix products P_k = E_k ... E_1.
        std::vector<Matrix> emb(m);
        std::vector<Matrix> prefix(m + 1);
        prefix[0] = Matrix::identity(dim);
        std::size_t p = 0;
        std::vector<std::size_t> param_base(m, 0);
        for (std::size_t k = 0; k < m; ++k) {
            const SynthOp& op = s.ops[k];
            param_base[k] = p;
            if (op.kind == SynthOp::Kind::Vug) {
                emb[k] = circuit::embed_gate(
                    circuit::u3_matrix(x[p], x[p + 1], x[p + 2]), {op.a}, nq);
                p += 3;
            } else {
                emb[k] = circuit::embed_gate(cx, {op.a, op.b}, nq);
            }
            prefix[k + 1] = emb[k] * prefix[k];
        }
        // Suffix products S_k = E_m ... E_{k+1}.
        std::vector<Matrix> suffix(m + 1);
        suffix[m] = Matrix::identity(dim);
        for (std::size_t k = m; k-- > 0;) suffix[k] = suffix[k + 1] * emb[k];

        const Matrix& c = prefix[m];
        const cplx w = overlap(target, c);
        const double aw = std::abs(w);
        const double f = 1.0 - aw / d;
        if (aw < 1e-15) return f; // gradient direction undefined at the centre

        const cplx wbar = std::conj(w) / aw;
        p = 0;
        for (std::size_t k = 0; k < m; ++k) {
            const SynthOp& op = s.ops[k];
            if (op.kind != SynthOp::Kind::Vug) continue;
            const std::size_t base = param_base[k];
            for (int which = 0; which < 3; ++which) {
                const Matrix de = circuit::embed_gate(
                    u3_derivative(x[base], x[base + 1], x[base + 2], which), {op.a}, nq);
                const Matrix dc = suffix[k + 1] * (de * prefix[k]);
                const cplx dw = overlap(target, dc);
                grad[base + which] = -std::real(wbar * dw) / d;
            }
        }
        return f;
    };

    std::mt19937_64 rng(opt.seed);
    std::uniform_real_distribution<double> ang(-std::numbers::pi, std::numbers::pi);

    InstantiateResult best;
    opt::LbfgsOptions lopt;
    lopt.max_iterations = opt.max_iterations;
    lopt.target_value = opt.target_distance * opt.target_distance; // f ~ dist^2
    for (int r = 0; r < std::max(1, opt.restarts); ++r) {
        std::vector<double> x0(np);
        if (r == 0 && warm_start.size() == np) {
            x0 = warm_start;
        } else {
            for (double& v : x0) v = ang(rng);
        }
        const opt::OptimizeResult res = opt::lbfgs_minimize(objective, std::move(x0), lopt);
        const double dist = std::sqrt(std::max(0.0, res.value));
        if (dist < best.distance || best.params.empty()) {
            best.distance = dist;
            best.params = res.x;
        }
        if (best.distance <= opt.target_distance) break;
    }
    best.converged = best.distance <= opt.target_distance;
    return best;
}

} // namespace epoc::synthesis
