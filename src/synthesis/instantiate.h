// Parameter instantiation for synthesis structures: minimize the
// phase-invariant Hilbert-Schmidt distance to a target unitary with L-BFGS
// over analytic gradients, with multi-start restarts.
#pragma once

#include "synthesis/vug.h"

#include <cstdint>

namespace epoc::synthesis {

struct InstantiateOptions {
    int restarts = 3;
    int max_iterations = 150;
    double target_distance = 1e-8;
    std::uint64_t seed = 0x5eed;
};

struct InstantiateResult {
    std::vector<double> params;
    double distance = 1.0; ///< sqrt(1 - |tr(U^dag C)| / d)
    bool converged = false;
};

/// Fit the structure's parameters to `target`. `warm_start` (if non-empty and
/// of matching size) is used as the first starting point.
InstantiateResult instantiate(const SynthStructure& s, const Matrix& target,
                              const InstantiateOptions& opt = {},
                              const std::vector<double>& warm_start = {});

} // namespace epoc::synthesis
