#include "synthesis/kak.h"

#include "circuit/decompose.h"
#include "circuit/gate.h"
#include "circuit/unitary.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace epoc::synthesis {

namespace {

using linalg::cplx;
using linalg::Matrix;

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// The magic (Bell) basis change.
Matrix magic_basis() {
    Matrix m(4, 4);
    m(0, 0) = cplx{kInvSqrt2, 0};
    m(0, 3) = cplx{0, kInvSqrt2};
    m(1, 1) = cplx{0, kInvSqrt2};
    m(1, 2) = cplx{kInvSqrt2, 0};
    m(2, 1) = cplx{0, kInvSqrt2};
    m(2, 2) = cplx{-kInvSqrt2, 0};
    m(3, 0) = cplx{kInvSqrt2, 0};
    m(3, 3) = cplx{0, -kInvSqrt2};
    return m;
}

/// Simultaneously diagonalize the commuting real symmetric parts of the
/// unitary symmetric matrix p: returns real orthogonal o with o^T p o
/// diagonal.
Matrix simultaneous_diagonalizer(const Matrix& p) {
    Matrix x(4, 4), y(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c) {
            x(r, c) = cplx{p(r, c).real(), 0.0};
            y(r, c) = cplx{p(r, c).imag(), 0.0};
        }
    const linalg::SymmetricEigen ex = linalg::jacobi_symmetric(x, 1e-11);
    Matrix o = ex.vectors;

    // Within each degenerate eigenspace of X, diagonalize the restriction of
    // Y (X and Y commute, so this completes the joint diagonalization).
    constexpr double kGroupTol = 1e-6;
    const Matrix b = o.transpose() * y * o;
    std::size_t start = 0;
    while (start < 4) {
        std::size_t end = start + 1;
        while (end < 4 && std::abs(ex.values[end] - ex.values[start]) < kGroupTol) ++end;
        const std::size_t len = end - start;
        if (len > 1) {
            Matrix sub(len, len);
            for (std::size_t r = 0; r < len; ++r)
                for (std::size_t c = 0; c < len; ++c)
                    sub(r, c) = cplx{b(start + r, start + c).real(), 0.0};
            const linalg::SymmetricEigen ey = linalg::jacobi_symmetric(sub, 1e-11);
            // Rotate the affected columns of o.
            Matrix rotated(4, len);
            for (std::size_t r = 0; r < 4; ++r)
                for (std::size_t c = 0; c < len; ++c) {
                    cplx acc{0, 0};
                    for (std::size_t k = 0; k < len; ++k)
                        acc += o(r, start + k) * ey.vectors(k, c);
                    rotated(r, c) = acc;
                }
            for (std::size_t r = 0; r < 4; ++r)
                for (std::size_t c = 0; c < len; ++c) o(r, start + c) = rotated(r, c);
        }
        start = end;
    }

    // Force det(o) = +1 so the back-transformed factors stay in SU(2)xSU(2).
    if (linalg::determinant(o).real() < 0.0)
        for (std::size_t r = 0; r < 4; ++r) o(r, 0) = -o(r, 0);
    return o;
}

/// Diagonal (in the magic basis) signatures of XX, YY, ZZ.
void pauli_signatures(const Matrix& m, double sx[4], double sy[4], double sz[4]) {
    const Matrix xx = kron(circuit::pauli_x(), circuit::pauli_x());
    const Matrix yy = kron(circuit::pauli_y(), circuit::pauli_y());
    const Matrix zz = kron(circuit::pauli_z(), circuit::pauli_z());
    const Matrix mdag = m.dagger();
    const Matrix dx = mdag * xx * m;
    const Matrix dy = mdag * yy * m;
    const Matrix dz = mdag * zz * m;
    for (std::size_t j = 0; j < 4; ++j) {
        sx[j] = dx(j, j).real();
        sy[j] = dy(j, j).real();
        sz[j] = dz(j, j).real();
    }
}

Matrix factor_or_throw(const Matrix& k, const char* what, Matrix& other) {
    const auto f = linalg::kron_factor_2x2(k, /*require_exact=*/true, 1e-6);
    if (!f) throw std::logic_error(std::string("kak_decompose: ") + what +
                                   " is not a product operator");
    other = f->second;
    return f->first;
}

} // namespace

KakDecomposition kak_decompose(const Matrix& u) {
    if (u.rows() != 4 || u.cols() != 4)
        throw std::invalid_argument("kak_decompose: expected a 4x4 matrix");
    if (!u.is_unitary(1e-8))
        throw std::invalid_argument("kak_decompose: matrix is not unitary");

    // Normalize to SU(4) (global phase is irrelevant downstream).
    Matrix su = u;
    const cplx det = linalg::determinant(su);
    su *= std::polar(1.0, -std::arg(det) / 4.0);

    const Matrix m = magic_basis();
    const Matrix mdag = m.dagger();
    const Matrix v = mdag * su * m;
    const Matrix p = v.transpose() * v;

    const Matrix o2 = simultaneous_diagonalizer(p);
    const Matrix d = o2.transpose() * p * o2;

    // Eigenphases theta_j with d_jj = exp(2 i theta_j).
    double theta[4];
    for (std::size_t j = 0; j < 4; ++j) theta[j] = 0.5 * std::arg(d(j, j));

    // Branch fixing: det(Q1) = exp(-i sum theta) must be +1.
    double sum = theta[0] + theta[1] + theta[2] + theta[3];
    const double rem = std::remainder(sum, 2.0 * std::numbers::pi);
    if (std::abs(std::abs(rem) - std::numbers::pi) < 0.5) {
        theta[0] += std::numbers::pi; // flips det(D^{1/2}) sign
    }

    Matrix dhalf(4, 4), dhalf_inv(4, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        dhalf(j, j) = std::polar(1.0, theta[j]);
        dhalf_inv(j, j) = std::polar(1.0, -theta[j]);
    }

    // V = Q1 * D^{1/2} * Q2 with Q1 = V * O * D^{-1/2} and Q2 = O^T.
    const Matrix q1 = v * o2 * dhalf_inv;
    const Matrix q2 = o2.transpose();

    // Canonical coefficients from the eigenphases: theta_j = theta_bar +
    // cx*sx_j + cy*sy_j + cz*sz_j (signature vectors are orthogonal).
    double sx[4], sy[4], sz[4];
    pauli_signatures(m, sx, sy, sz);
    KakDecomposition k;
    for (std::size_t j = 0; j < 4; ++j) {
        k.cx += theta[j] * sx[j] / 4.0;
        k.cy += theta[j] * sy[j] / 4.0;
        k.cz += theta[j] * sz[j] / 4.0;
    }

    Matrix k1 = m * q1 * mdag;
    Matrix k2 = m * q2 * mdag;
    k.a1 = factor_or_throw(k1, "outer local factor", k.b1);
    k.a2 = factor_or_throw(k2, "inner local factor", k.b2);

    // Fold each coefficient into (-pi/4, pi/4]: exp(i(c -/+ pi/2) PP) equals
    // exp(i c PP) * (-/+i P(x)P), and the Pauli pair is absorbed into the
    // inner local factors (global phase dropped).
    const auto fold = [&k](double& c, const Matrix& pauli) {
        while (c > std::numbers::pi / 4 + 1e-12 || c <= -std::numbers::pi / 4 - 1e-12) {
            c += (c > 0) ? -std::numbers::pi / 2 : std::numbers::pi / 2;
            k.a2 = pauli * k.a2;
            k.b2 = pauli * k.b2;
        }
    };
    fold(k.cx, circuit::pauli_x());
    fold(k.cy, circuit::pauli_y());
    fold(k.cz, circuit::pauli_z());
    return k;
}

circuit::Circuit kak_to_circuit(const KakDecomposition& k) {
    circuit::Circuit c(2);
    const auto emit_local = [&c](const Matrix& g, int qubit) {
        const circuit::Zyz e = circuit::zyz_decompose(g);
        if (std::abs(e.theta) < 1e-12 && std::abs(e.phi + e.lambda) < 1e-12) return;
        c.u3(e.theta, e.phi, e.lambda, qubit);
    };
    // Inner locals first (kron convention: the first factor acts on qubit 1).
    emit_local(k.a2, 1);
    emit_local(k.b2, 0);
    // exp(i c PP) == Rpp(-2c); the three terms commute.
    if (std::abs(k.cx) > 1e-12) c.rxx(-2.0 * k.cx, 0, 1);
    if (std::abs(k.cy) > 1e-12)
        c.add(circuit::Gate(circuit::GateKind::RYY, {0, 1}, {-2.0 * k.cy}));
    if (std::abs(k.cz) > 1e-12) c.rzz(-2.0 * k.cz, 0, 1);
    emit_local(k.a1, 1);
    emit_local(k.b1, 0);
    return c;
}

circuit::Circuit kak_synthesize(const Matrix& u) { return kak_to_circuit(kak_decompose(u)); }

} // namespace epoc::synthesis
