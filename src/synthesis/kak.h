// Analytic two-qubit KAK (Cartan) decomposition.
//
// Every U in U(4) factors, up to global phase, as
//     U = (a1 (x) b1) * exp(i (cx XX + cy YY + cz ZZ)) * (a2 (x) b2)
// with single-qubit unitaries a*, b* and interaction coefficients c*. The
// construction follows the magic-basis recipe (Kraus & Cirac 2001): conjugate
// into the Bell basis where SU(2)xSU(2) becomes SO(4), simultaneously
// diagonalize the symmetric unitary V^T V with the real Jacobi solver, and
// read the canonical class off the eigenphases.
//
// Compared with QSearch this is exact, non-iterative and ~1000x faster, but
// only for 2-qubit targets; the synthesizer uses it as a fast path when
// enabled (EpocOptions::use_kak).
#pragma once

#include "circuit/circuit.h"
#include "linalg/matrix.h"

namespace epoc::synthesis {

struct KakDecomposition {
    linalg::Matrix a1, b1; ///< outer (later-in-time) local gates; a on qubit 1
    linalg::Matrix a2, b2; ///< inner (earlier) local gates
    double cx = 0.0, cy = 0.0, cz = 0.0; ///< canonical interaction coefficients
};

/// Decompose a 4x4 unitary. Throws std::invalid_argument for non-unitary or
/// wrongly shaped input.
KakDecomposition kak_decompose(const linalg::Matrix& u);

/// Realize the decomposition as a circuit over {u3, rxx, ryy, rzz} on two
/// qubits (qubit 0 = low bit). Equal to the input up to global phase.
circuit::Circuit kak_to_circuit(const KakDecomposition& k);

/// Convenience: decompose and lower in one step.
circuit::Circuit kak_synthesize(const linalg::Matrix& u);

} // namespace epoc::synthesis
