#include "synthesis/leap.h"

#include <cmath>
#include <stdexcept>

namespace epoc::synthesis {

namespace {

int qubits_for_dim(std::size_t dim) {
    int n = 0;
    while ((std::size_t{1} << n) < dim) ++n;
    if ((std::size_t{1} << n) != dim || n < 1)
        throw std::invalid_argument("leap: target dimension is not a power of two");
    return n;
}

} // namespace

SynthesisResult leap_synthesize(const Matrix& target, const LeapOptions& opt) {
    const int nq = qubits_for_dim(target.rows());

    SynthStructure cur = SynthStructure::seed(nq);
    InstantiateResult cur_fit = instantiate(cur, target, opt.instantiate, {});
    int stalls = 0;
    bool timed_out = false;

    while (cur_fit.distance > opt.threshold && cur.cnot_count() < opt.max_cnots &&
           stalls < opt.stall_rounds) {
        if (epoc::util::deadline_expired(opt.deadline)) {
            timed_out = true;
            break;
        }
        SynthStructure best_s = cur;
        InstantiateResult best_fit = cur_fit;
        bool improved = false;
        for (int a = 0; a < nq; ++a) {
            for (int b = 0; b < nq; ++b) {
                if (a == b) continue;
                if (!cnot_pair_allowed(opt.allowed_pairs, a, b)) continue;
                SynthStructure cand = cur.expanded(a, b);
                std::vector<double> warm = cur_fit.params;
                warm.resize(static_cast<std::size_t>(cand.num_params()), 0.0);
                const InstantiateResult fit = instantiate(cand, target, opt.instantiate, warm);
                if (fit.distance < best_fit.distance) {
                    best_s = std::move(cand);
                    best_fit = fit;
                    improved = true;
                }
            }
        }
        if (!improved) break;
        if (cur_fit.distance - best_fit.distance < opt.min_progress)
            ++stalls;
        else
            stalls = 0;
        cur = std::move(best_s);
        cur_fit = std::move(best_fit);
    }

    SynthesisResult res;
    res.circuit = structure_to_circuit(cur, cur_fit.params);
    res.distance = cur_fit.distance;
    res.cnot_count = cur.cnot_count();
    res.converged = cur_fit.distance <= opt.threshold;
    res.timed_out = timed_out;
    return res;
}

} // namespace epoc::synthesis
