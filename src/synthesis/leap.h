// LEAP-style incremental synthesis (Smith et al. 2023): instead of a full
// best-first search, greedily commit to the best single-layer expansion and
// re-seed the search from there. Scales to deeper targets than QSearch at a
// small optimality cost; EPOC uses it for blocks whose QSearch budget is
// exhausted.
#pragma once

#include "synthesis/qsearch.h"

namespace epoc::synthesis {

struct LeapOptions {
    double threshold = 1e-6;
    int max_cnots = 40;
    /// Abort when an expansion round improves the distance by less than this.
    double min_progress = 1e-4;
    int stall_rounds = 6;
    /// Optional compile deadline (non-owning): polled once per expansion
    /// round; on expiry the best committed structure so far is returned with
    /// SynthesisResult::timed_out set.
    const util::Deadline* deadline = nullptr;
    /// Topology constraint on CNOT placements (see QSearchOptions).
    std::vector<std::pair<int, int>> allowed_pairs;
    InstantiateOptions instantiate;
};

SynthesisResult leap_synthesize(const Matrix& target, const LeapOptions& opt = {});

} // namespace epoc::synthesis
