#include "synthesis/qsearch.h"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace epoc::synthesis {

namespace {

int qubits_for_dim(std::size_t dim) {
    int n = 0;
    while ((std::size_t{1} << n) < dim) ++n;
    if ((std::size_t{1} << n) != dim || n < 1)
        throw std::invalid_argument("qsearch: target dimension is not a power of two");
    return n;
}

struct Node {
    SynthStructure structure;
    std::vector<double> params;
    double distance = 1.0;
    double f = 0.0;

    bool operator<(const Node& other) const { return f > other.f; } // min-heap
};

} // namespace

SynthesisResult qsearch_synthesize(const Matrix& target, const QSearchOptions& opt) {
    if (!target.is_square()) throw std::invalid_argument("qsearch: target not square");
    const int nq = qubits_for_dim(target.rows());

    SynthesisResult result;

    // 1-qubit targets need no search: a single VUG is exact.
    const auto evaluate = [&](const SynthStructure& s,
                              const std::vector<double>& warm) {
        return instantiate(s, target, opt.instantiate, warm);
    };

    std::priority_queue<Node> frontier;
    {
        Node root;
        root.structure = SynthStructure::seed(nq);
        const InstantiateResult ir = evaluate(root.structure, {});
        root.params = ir.params;
        root.distance = ir.distance;
        root.f = ir.distance;
        frontier.push(std::move(root));
    }

    Node best = frontier.top();
    int expanded = 0;
    while (!frontier.empty() && expanded < opt.max_nodes) {
        if (epoc::util::deadline_expired(opt.deadline)) {
            result.timed_out = true;
            break;
        }
        Node cur = frontier.top();
        frontier.pop();
        if (cur.distance < best.distance) best = cur;
        if (cur.distance <= opt.threshold) {
            best = cur;
            break;
        }
        if (cur.structure.cnot_count() >= opt.max_cnots) continue;
        ++expanded;
        for (int a = 0; a < nq; ++a) {
            for (int b = 0; b < nq; ++b) {
                if (a == b) continue;
                if (!cnot_pair_allowed(opt.allowed_pairs, a, b)) continue;
                Node next;
                next.structure = cur.structure.expanded(a, b);
                // Warm start: reuse parent parameters, zero-init the new VUGs.
                std::vector<double> warm = cur.params;
                warm.resize(static_cast<std::size_t>(next.structure.num_params()), 0.0);
                const InstantiateResult ir = evaluate(next.structure, warm);
                next.params = ir.params;
                next.distance = ir.distance;
                next.f = ir.distance +
                         opt.cnot_weight * next.structure.cnot_count();
                if (ir.distance <= opt.threshold) {
                    best = next;
                    expanded = opt.max_nodes; // force exit
                    break;
                }
                frontier.push(std::move(next));
            }
            if (expanded >= opt.max_nodes) break;
        }
    }

    result.circuit = structure_to_circuit(best.structure, best.params);
    result.distance = best.distance;
    result.cnot_count = best.structure.cnot_count();
    result.nodes_expanded = expanded;
    result.converged = best.distance <= opt.threshold;
    return result;
}

} // namespace epoc::synthesis
