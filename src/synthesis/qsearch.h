// QSearch-style best-first synthesis (Davis et al. 2020; paper Algorithm 2).
//
// Nodes are circuit structures (VUG layers + CNOT placements). Each expansion
// appends one CNOT followed by fresh VUGs on the touched qubits; nodes are
// scored f = instantiated-distance + weight * cnot_count and explored
// best-first until a node instantiates within the accuracy threshold.
#pragma once

#include "synthesis/instantiate.h"
#include "util/deadline.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace epoc::synthesis {

struct QSearchOptions {
    double threshold = 1e-6;   ///< accept when distance <= threshold
    double cnot_weight = 0.02; ///< A* path-cost weight per CNOT
    int max_cnots = 14;        ///< structure depth cap
    int max_nodes = 120;       ///< expansion budget
    /// Optional compile deadline (non-owning; excluded from cache keys).
    /// Polled once per A* expansion: on expiry the search returns its best
    /// structure so far with `timed_out` set instead of throwing.
    const util::Deadline* deadline = nullptr;
    /// Topology constraint: CNOT placements are restricted to these local
    /// qubit pairs (unordered; either orientation expands). Empty = all
    /// pairs, the historical all-to-all behaviour.
    std::vector<std::pair<int, int>> allowed_pairs;
    InstantiateOptions instantiate;
};

/// True when a CNOT over local qubits (a, b) is admissible under `allowed`
/// (empty allows everything; pairs are unordered).
inline bool cnot_pair_allowed(const std::vector<std::pair<int, int>>& allowed, int a,
                              int b) {
    if (allowed.empty()) return true;
    const std::pair<int, int> key{std::min(a, b), std::max(a, b)};
    return std::any_of(allowed.begin(), allowed.end(),
                       [&key](const std::pair<int, int>& p) {
                           return std::pair<int, int>{std::min(p.first, p.second),
                                                      std::max(p.first, p.second)} == key;
                       });
}

struct SynthesisResult {
    circuit::Circuit circuit;  ///< U3 + CX realisation
    double distance = 1.0;
    int cnot_count = 0;
    int nodes_expanded = 0;
    bool converged = false;
    /// The compile deadline cut the search: `circuit` is the best structure
    /// found before expiry (valid, possibly unconverged). Timed-out results
    /// are never stored in the synthesis cache.
    bool timed_out = false;
};

/// Synthesize `target` (dimension must be a power of two, >= 2).
SynthesisResult qsearch_synthesize(const Matrix& target, const QSearchOptions& opt = {});

} // namespace epoc::synthesis
