// QSearch-style best-first synthesis (Davis et al. 2020; paper Algorithm 2).
//
// Nodes are circuit structures (VUG layers + CNOT placements). Each expansion
// appends one CNOT followed by fresh VUGs on the touched qubits; nodes are
// scored f = instantiated-distance + weight * cnot_count and explored
// best-first until a node instantiates within the accuracy threshold.
#pragma once

#include "synthesis/instantiate.h"
#include "util/deadline.h"

namespace epoc::synthesis {

struct QSearchOptions {
    double threshold = 1e-6;   ///< accept when distance <= threshold
    double cnot_weight = 0.02; ///< A* path-cost weight per CNOT
    int max_cnots = 14;        ///< structure depth cap
    int max_nodes = 120;       ///< expansion budget
    /// Optional compile deadline (non-owning; excluded from cache keys).
    /// Polled once per A* expansion: on expiry the search returns its best
    /// structure so far with `timed_out` set instead of throwing.
    const util::Deadline* deadline = nullptr;
    InstantiateOptions instantiate;
};

struct SynthesisResult {
    circuit::Circuit circuit;  ///< U3 + CX realisation
    double distance = 1.0;
    int cnot_count = 0;
    int nodes_expanded = 0;
    bool converged = false;
    /// The compile deadline cut the search: `circuit` is the best structure
    /// found before expiry (valid, possibly unconverged). Timed-out results
    /// are never stored in the synthesis cache.
    bool timed_out = false;
};

/// Synthesize `target` (dimension must be a power of two, >= 2).
SynthesisResult qsearch_synthesize(const Matrix& target, const QSearchOptions& opt = {});

} // namespace epoc::synthesis
