#include "synthesis/vug.h"

#include "circuit/unitary.h"

#include <cmath>
#include <stdexcept>

namespace epoc::synthesis {

using circuit::GateKind;
using linalg::cplx;

int SynthStructure::num_params() const {
    int n = 0;
    for (const SynthOp& op : ops)
        if (op.kind == SynthOp::Kind::Vug) n += 3;
    return n;
}

int SynthStructure::cnot_count() const {
    int n = 0;
    for (const SynthOp& op : ops)
        if (op.kind == SynthOp::Kind::Cnot) ++n;
    return n;
}

SynthStructure SynthStructure::seed(int num_qubits) {
    SynthStructure s;
    s.num_qubits = num_qubits;
    for (int q = 0; q < num_qubits; ++q) s.ops.push_back(SynthOp::vug(q));
    return s;
}

SynthStructure SynthStructure::expanded(int a, int b) const {
    SynthStructure s = *this;
    s.ops.push_back(SynthOp::cnot(a, b));
    s.ops.push_back(SynthOp::vug(a));
    s.ops.push_back(SynthOp::vug(b));
    return s;
}

Matrix structure_unitary(const SynthStructure& s, const std::vector<double>& params) {
    if (static_cast<int>(params.size()) != s.num_params())
        throw std::invalid_argument("structure_unitary: parameter count mismatch");
    const std::size_t dim = std::size_t{1} << s.num_qubits;
    Matrix u = Matrix::identity(dim);
    std::size_t p = 0;
    for (const SynthOp& op : s.ops) {
        if (op.kind == SynthOp::Kind::Vug) {
            const Matrix g = circuit::u3_matrix(params[p], params[p + 1], params[p + 2]);
            p += 3;
            circuit::apply_gate(u, g, {op.a}, s.num_qubits);
        } else {
            circuit::apply_gate(u, circuit::kind_matrix(GateKind::CX, {}), {op.a, op.b},
                                s.num_qubits);
        }
    }
    return u;
}

circuit::Circuit structure_to_circuit(const SynthStructure& s,
                                      const std::vector<double>& params) {
    circuit::Circuit c(s.num_qubits);
    std::size_t p = 0;
    for (const SynthOp& op : s.ops) {
        if (op.kind == SynthOp::Kind::Vug) {
            c.u3(params.at(p), params.at(p + 1), params.at(p + 2), op.a);
            p += 3;
        } else {
            c.cx(op.a, op.b);
        }
    }
    return c;
}

Matrix u3_derivative(double theta, double phi, double lambda, int which) {
    const double c = std::cos(theta / 2), sn = std::sin(theta / 2);
    switch (which) {
    case 0: // d/dtheta
        return Matrix{{cplx{-sn / 2, 0.0}, -0.5 * std::polar(c, lambda)},
                      {0.5 * std::polar(c, phi), -0.5 * std::polar(sn, phi + lambda)}};
    case 1: // d/dphi
        return Matrix{{cplx{0, 0}, cplx{0, 0}},
                      {cplx{0, 1} * std::polar(sn, phi),
                       cplx{0, 1} * std::polar(c, phi + lambda)}};
    case 2: // d/dlambda
        return Matrix{{cplx{0, 0}, cplx{0, -1} * std::polar(sn, lambda)},
                      {cplx{0, 0}, cplx{0, 1} * std::polar(c, phi + lambda)}};
    default:
        throw std::invalid_argument("u3_derivative: which must be 0..2");
    }
}

} // namespace epoc::synthesis
