// Parameterized circuit structures for numerical synthesis.
//
// A structure is a sequence of ops over a small register: single-qubit
// variable unitary gates (VUGs, realised as U3 with 3 parameters -- exactly
// BQSKit's single-qubit variable gate) and fixed CNOTs. QSearch explores the
// space of structures; the instantiater (instantiate.h) fits the parameters
// to a target unitary.
#pragma once

#include "circuit/circuit.h"
#include "linalg/matrix.h"

#include <vector>

namespace epoc::synthesis {

using linalg::Matrix;

struct SynthOp {
    enum class Kind { Vug, Cnot } kind = Kind::Vug;
    int a = 0; ///< VUG qubit, or CNOT control
    int b = 0; ///< CNOT target (unused for VUG)

    static SynthOp vug(int q) { return {Kind::Vug, q, 0}; }
    static SynthOp cnot(int c, int t) { return {Kind::Cnot, c, t}; }
};

struct SynthStructure {
    int num_qubits = 1;
    std::vector<SynthOp> ops;

    int num_params() const;
    int cnot_count() const;

    /// Initial QSearch node: one VUG per qubit.
    static SynthStructure seed(int num_qubits);

    /// Successor: append CNOT(a,b) followed by fresh VUGs on a and b.
    SynthStructure expanded(int a, int b) const;
};

/// Unitary of the structure at the given parameter vector.
Matrix structure_unitary(const SynthStructure& s, const std::vector<double>& params);

/// Lower the instantiated structure to a circuit of U3 + CX gates.
circuit::Circuit structure_to_circuit(const SynthStructure& s,
                                      const std::vector<double>& params);

/// d(u3)/d(theta|phi|lambda): analytic 2x2 derivative matrices.
Matrix u3_derivative(double theta, double phi, double lambda, int which);

} // namespace epoc::synthesis
