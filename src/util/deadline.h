// Compile deadlines and cooperative cancellation.
//
// A compile gets one Deadline (EpocOptions::deadline_ms), and every
// long-running loop in the pipeline — QSearch's A* expansion, LEAP's rounds,
// GRAPE's gradient iterations, the latency search's probes — polls it at its
// natural iteration granularity. On expiry a loop does NOT throw: it returns
// its best-so-far result with converged/feasible/timed_out flags set, and the
// pipeline's degradation ladder substitutes a fallback. That keeps a deadline
// a *quality* knob (you get the best compile the budget allows) rather than a
// failure mode.
//
// Polling cost: an unarmed Deadline (no budget, no token) is two branches on
// already-loaded members. A linked CancelToken is one relaxed atomic load.
// The armed clock check is a steady_clock read, but only until expiry is
// first observed — after that a relaxed atomic short-circuits every later
// poll (the loops that poll do matrix exponentials per iteration, so even
// the clock read is noise).
#pragma once

#include <atomic>
#include <chrono>

namespace epoc::util {

/// A relaxed-atomic cancellation flag shared between a controller thread and
/// the workers polling it. Fire-once semantics per compile (reset() exists
/// for reuse across compiles, not mid-flight).
class CancelToken {
public:
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }
    void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget (steady_clock based) optionally linked to a
/// CancelToken: expired() is true once the budget elapses *or* the token
/// fires. Default-constructed deadlines never expire, so call sites can poll
/// unconditionally.
class Deadline {
public:
    Deadline() = default;

    /// A deadline `ms` milliseconds from now. `ms <= 0` arms an
    /// already-expired deadline (useful for "best effort, zero budget").
    static Deadline after_ms(double ms) {
        Deadline d;
        d.armed_ = true;
        d.at_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
        return d;
    }

    /// Also expire when `token` fires. nullptr detaches. The token must
    /// outlive every expired() call.
    void link(const CancelToken* token) noexcept { token_ = token; }

    /// The linked cancellation token, nullptr when none. Call sites that
    /// forward cancellation (e.g. ThreadPool::parallel_for) take it from the
    /// deadline so one link() call covers both expiry and claim-stopping.
    const CancelToken* token() const noexcept { return token_; }

    bool armed() const noexcept { return armed_ || token_ != nullptr; }

    bool expired() const noexcept {
        if (expired_cached_.load(std::memory_order_relaxed)) return true;
        const bool hit = (token_ != nullptr && token_->cancelled()) ||
                         (armed_ && std::chrono::steady_clock::now() >= at_);
        if (hit) expired_cached_.store(true, std::memory_order_relaxed);
        return hit;
    }

    /// Milliseconds left in the budget; a large positive number when unarmed,
    /// clamped at 0 once expired. A fired CancelToken zeroes the budget even
    /// when no clock deadline is armed: a cancelled job has no budget left,
    /// and an admission controller keying on remaining_ms() must see dead
    /// requests as infeasible, not as infinitely patient. (The historical
    /// version ignored the token and kept reporting the full clock budget.)
    double remaining_ms() const noexcept {
        if (expired()) return 0.0;
        if (!armed_) return 1e300;
        const auto left = at_ - std::chrono::steady_clock::now();
        const double ms = std::chrono::duration<double, std::milli>(left).count();
        return ms > 0.0 ? ms : 0.0;
    }

    // Copyable so option structs can carry one by value; the cached-expiry
    // flag is per-copy (worst case a copy re-reads the clock once).
    Deadline(const Deadline& other) noexcept { *this = other; }
    Deadline& operator=(const Deadline& other) noexcept {
        armed_ = other.armed_;
        at_ = other.at_;
        token_ = other.token_;
        expired_cached_.store(other.expired_cached_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
        return *this;
    }

private:
    bool armed_ = false;
    std::chrono::steady_clock::time_point at_{};
    const CancelToken* token_ = nullptr;
    mutable std::atomic<bool> expired_cached_{false};
};

/// True when `d` is non-null and expired — the polling idiom for option
/// structs that carry an optional `const Deadline*`.
inline bool deadline_expired(const Deadline* d) noexcept {
    return d != nullptr && d->expired();
}

} // namespace epoc::util
