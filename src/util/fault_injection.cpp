#include "util/fault_injection.h"

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace epoc::util::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

struct Trigger {
    enum class Kind { always, nth, from_nth, rate } kind = Kind::always;
    std::size_t n = 1;        ///< ordinal for nth / from_nth
    std::uint64_t rate = 1;   ///< K for rate (fire ~1/K)
    std::uint64_t seed = 0;   ///< S for rate
};

struct Site {
    Trigger trigger;
    bool armed = false;
    std::size_t arrivals = 0;
    std::size_t fired = 0;
};

struct Registry {
    std::mutex mutex;
    std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
    static Registry r;
    return r;
}

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Trigger parse_trigger(const std::string& spec, const std::string& s) {
    const auto bad = [&] {
        throw std::invalid_argument("fault::configure: bad trigger '" + s + "' in spec '" +
                                    spec + "'");
    };
    Trigger t;
    if (s == "*") {
        t.kind = Trigger::Kind::always;
        return t;
    }
    try {
        if (s.front() == '%') {
            // %K@S
            const std::size_t at = s.find('@');
            if (at == std::string::npos) bad();
            t.kind = Trigger::Kind::rate;
            t.rate = std::stoull(s.substr(1, at - 1));
            t.seed = std::stoull(s.substr(at + 1));
            if (t.rate == 0) bad();
            return t;
        }
        if (s.back() == '+') {
            t.kind = Trigger::Kind::from_nth;
            t.n = std::stoull(s.substr(0, s.size() - 1));
        } else {
            t.kind = Trigger::Kind::nth;
            t.n = std::stoull(s);
        }
        if (t.n == 0) bad();
    } catch (const std::invalid_argument&) {
        bad();
    } catch (const std::out_of_range&) {
        bad();
    }
    return t;
}

bool fires(const Trigger& t, std::size_t arrival) {
    switch (t.kind) {
        case Trigger::Kind::always: return true;
        case Trigger::Kind::nth: return arrival == t.n;
        case Trigger::Kind::from_nth: return arrival >= t.n;
        case Trigger::Kind::rate:
            return splitmix64(t.seed ^ static_cast<std::uint64_t>(arrival)) % t.rate == 0;
    }
    return false;
}

} // namespace

namespace detail {

bool maybe_fail_slow(const char* site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Site& s = r.sites[site]; // unarmed sites still count arrivals
    ++s.arrivals;
    if (!s.armed || !fires(s.trigger, s.arrivals)) return false;
    ++s.fired;
    return true;
}

} // namespace detail

void configure(const std::string& spec) {
    Registry& r = registry();
    std::unordered_map<std::string, Site> sites;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos) end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument("fault::configure: entry '" + entry +
                                        "' is not site=trigger");
        Site s;
        s.armed = true;
        s.trigger = parse_trigger(spec, entry.substr(eq + 1));
        sites.emplace(entry.substr(0, eq), std::move(s));
    }
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.sites = std::move(sites);
    }
    detail::g_enabled.store(!spec.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
    const char* spec = std::getenv("EPOC_FAULT_INJECT");
    if (spec != nullptr && *spec != '\0') configure(spec);
}

void clear() { configure(""); }

std::size_t arrivals(const std::string& site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.arrivals;
}

std::size_t fired(const std::string& site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.fired;
}

} // namespace epoc::util::fault
