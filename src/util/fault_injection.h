// Deterministic fault injection for the compiler's fallback paths.
//
// Every degradation rung in the pipeline (synthesis throw -> keep original
// gates; GRAPE non-finite -> reseed then gate-by-gate pulses; infeasible
// latency search -> ladder; ...) is guarded by a *named injection site*:
//
//     if (util::fault::maybe_fail("grape.nonfinite")) { ...poison... }
//     util::fault::maybe_throw("synth.block");
//
// Disabled (the default), a site costs a single relaxed atomic load — the
// same contract as the tracer — so production binaries carry the sites for
// free. Tests and chaos runs arm sites with a spec string:
//
//     util::fault::configure("synth.block=*;grape.nonfinite=2");
//
// or via the EPOC_FAULT_INJECT environment variable (same grammar), which
// `configure_from_env()` reads. Triggers are deterministic functions of the
// per-site arrival counter, never of wall clock or unseeded randomness:
//
//     site=*      fire on every arrival
//     site=N      fire on exactly the Nth arrival (1-based)
//     site=N+     fire on the Nth and every later arrival
//     site=%K@S   fire when splitmix64(S ^ arrival) % K == 0 — a seeded
//                 pseudo-random ~1/K rate, reproducible across runs
//
// Arrival ordinals are global atomics: with num_threads > 1 *which* block
// observes ordinal N is scheduling-dependent, so ordinal triggers belong in
// single-threaded tests; `*` and `N+`-from-1 are thread-count-agnostic.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace epoc::util::fault {

/// The exception thrown by maybe_throw() when its site fires. Deliberately a
/// std::runtime_error subtype: the pipeline's fallbacks must treat it like
/// any real failure, but tests can assert on the concrete type.
struct InjectedFault : std::runtime_error {
    explicit InjectedFault(const std::string& site)
        : std::runtime_error("injected fault at site '" + site + "'"), site_name(site) {}
    std::string site_name;
};

namespace detail {
extern std::atomic<bool> g_enabled;
bool maybe_fail_slow(const char* site);
} // namespace detail

/// True when any site is armed (one relaxed load).
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Record an arrival at `site` and return true when its trigger fires.
/// Disabled harness: a single relaxed load, no side effects.
inline bool maybe_fail(const char* site) {
    return detail::g_enabled.load(std::memory_order_relaxed) &&
           detail::maybe_fail_slow(site);
}

/// maybe_fail(), but throws InjectedFault when the site fires.
inline void maybe_throw(const char* site) {
    if (maybe_fail(site)) throw InjectedFault(site);
}

/// Arm the harness with a spec string (grammar above). Replaces any previous
/// configuration and resets all counters; an empty spec disables the harness.
/// Throws std::invalid_argument on a malformed spec.
void configure(const std::string& spec);

/// configure() from the EPOC_FAULT_INJECT environment variable (no-op when
/// unset or empty). Call once at process start to chaos-test any binary.
void configure_from_env();

/// Disarm every site and reset all counters.
void clear();

/// Total arrivals observed at `site` since the last configure()/clear().
/// Counted for every site while the harness is enabled, armed or not — tests
/// use this to prove an injection site is actually on the executed path.
std::size_t arrivals(const std::string& site);

/// How many of those arrivals fired.
std::size_t fired(const std::string& site);

} // namespace epoc::util::fault
