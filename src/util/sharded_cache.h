// Sharded, single-flight, string-keyed cache.
//
// This is the concurrency substrate under qoc::PulseLibrary and the
// pipeline's synthesis cache. Two properties matter for the compiler:
//
//   * Single-flight misses. A pulse-library miss costs a full GRAPE latency
//     search (seconds); a synthesis miss costs a QSearch A* run. When several
//     threads miss on the same key simultaneously, exactly one runs the
//     compute function and the rest block until the value lands. This keeps
//     hit/miss totals — and the amount of numerical work — bit-identical to
//     the sequential schedule, which the determinism tests rely on.
//
//   * Reference stability. Values are handed out as shared_ptr<const V>, so
//     a rehash of the underlying hash map under concurrent insertion can
//     never dangle a result a caller is still holding (the historical
//     PulseLibrary returned references into its unordered_map; see
//     tests/test_pulse_library_concurrent.cpp for the regression).
//
// Sharding (key-hash -> one of N independently locked maps) keeps lock
// contention bounded: threads working on distinct keys almost never touch
// the same mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace epoc::util {

/// Snapshot of cache activity. `waits` counts lookups that found another
/// thread already generating their key and blocked for the result — the
/// cache-contention number the benchmarks report. Every lookup is either a
/// hit or a miss; waits are a subset of hits.
struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t waits = 0;
    /// Computed values the `cacheable` verdict rejected: returned to their
    /// callers but evicted immediately, so a later lookup recomputes. This is
    /// how degraded (timed-out / fault-injected) pulses and syntheses are
    /// kept out of the authoritative caches.
    std::size_t uncacheable = 0;
    double hit_rate() const {
        const std::size_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

template <typename V>
class ShardedFlightCache {
public:
    explicit ShardedFlightCache(std::size_t num_shards = 16)
        : shards_(num_shards == 0 ? 1 : num_shards) {}

    ShardedFlightCache(const ShardedFlightCache&) = delete;
    ShardedFlightCache& operator=(const ShardedFlightCache&) = delete;

    /// Return the cached value for `key`, computing it with `make` on a miss.
    /// Concurrent callers with the same key: one computes, the others wait.
    /// If the leader's `make` throws, the slot is erased (so a later call
    /// retries) and the exception propagates to the leader *and* to every
    /// waiter.
    ///
    /// `cacheable` (optional) vets the computed value: when it returns false
    /// the value is still handed to the leader and to every waiter already
    /// blocked on the slot — they asked under the same conditions that
    /// degraded it — but the entry is evicted immediately, so no *later*
    /// lookup is served the degraded value as an authoritative hit; it
    /// recomputes instead (e.g. a compile with a fresh deadline re-attempting
    /// a timed-out pulse).
    std::shared_ptr<const V> get_or_compute(
        const std::string& key, const std::function<V()>& make,
        const std::function<bool(const V&)>& cacheable = {}) {
        Shard& shard = shard_of(key);
        std::shared_ptr<Slot> slot;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.table.find(key);
            if (it == shard.table.end()) {
                slot = std::make_shared<Slot>();
                shard.table.emplace(key, slot);
                leader = true;
            } else {
                slot = it->second;
            }
        }

        if (leader) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            try {
                auto value = std::make_shared<const V>(make());
                const bool keep = !cacheable || cacheable(*value);
                if (!keep) {
                    // Evict BEFORE publishing: once ready is set, a waking
                    // waiter can loop back around and look the key up again
                    // ahead of this thread being rescheduled — publishing
                    // first opens a window where the degraded value is served
                    // as an ordinary hit (observed on a 1-core host: a
                    // waiter's bounded retry loop burned every attempt on
                    // that window). Evicting first means any lookup after
                    // publication recomputes; only callers already blocked on
                    // the slot receive the degraded value.
                    uncacheable_.fetch_add(1, std::memory_order_relaxed);
                    std::lock_guard<std::mutex> lock(shard.mutex);
                    // Evict only our own slot: a concurrent eviction+reinsert
                    // cycle may have put a fresh slot under this key.
                    const auto it = shard.table.find(key);
                    if (it != shard.table.end() && it->second == slot)
                        shard.table.erase(it);
                }
                {
                    std::lock_guard<std::mutex> lock(slot->mutex);
                    slot->value = std::move(value);
                    slot->ready = true;
                }
                slot->cv.notify_all();
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(slot->mutex);
                    slot->error = std::current_exception();
                    slot->ready = true;
                }
                slot->cv.notify_all();
                std::lock_guard<std::mutex> lock(shard.mutex);
                const auto it = shard.table.find(key);
                if (it != shard.table.end() && it->second == slot)
                    shard.table.erase(it);
                throw;
            }
            return slot->value;
        }

        hits_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(slot->mutex);
        if (!slot->ready) {
            waits_.fetch_add(1, std::memory_order_relaxed);
            slot->cv.wait(lock, [&] { return slot->ready; });
        }
        if (slot->error) std::rethrow_exception(slot->error);
        return slot->value;
    }

    /// Drop the entry under `key` so the next lookup recomputes. Safe against
    /// an in-flight generation: the leader's slot is merely orphaned — it
    /// still completes, hands its value to itself and its waiters, and its
    /// own eviction/erase paths compare slot identity before touching the
    /// table. Used by the verify layer to force a recompute after an audit
    /// rejects a cached value.
    void erase(const std::string& key) {
        Shard& shard = shard_of(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.table.erase(key);
    }

    /// Compare-and-evict: drop the entry only if it currently holds exactly
    /// `expected` (a completed value). Returns true when the erase happened.
    /// Of N threads that observed one bad value, exactly one wins the erase —
    /// and with it the right to invalidate downstream tiers — while the rest
    /// fall through to a normal lookup that waits on or hits the winner's
    /// replacement. This keeps verify-triggered recomputes single-flight.
    bool erase_if(const std::string& key, const std::shared_ptr<const V>& expected) {
        Shard& shard = shard_of(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.table.find(key);
        if (it == shard.table.end()) return false;
        {
            std::lock_guard<std::mutex> slot_lock(it->second->mutex);
            if (!it->second->ready || it->second->value != expected) return false;
        }
        shard.table.erase(it);
        return true;
    }

    /// Lookup only; nullptr on miss or while the value is still being
    /// generated. Does not touch the statistics.
    std::shared_ptr<const V> peek(const std::string& key) const {
        const Shard& shard = shard_of(key);
        std::shared_ptr<Slot> slot;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            const auto it = shard.table.find(key);
            if (it == shard.table.end()) return nullptr;
            slot = it->second;
        }
        std::lock_guard<std::mutex> lock(slot->mutex);
        return slot->ready && !slot->error ? slot->value : nullptr;
    }

    /// Number of completed entries (in-flight generations are not counted).
    std::size_t size() const {
        std::size_t n = 0;
        for (const Shard& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (const auto& [k, slot] : shard.table) {
                std::lock_guard<std::mutex> slot_lock(slot->mutex);
                if (slot->ready && !slot->error) ++n;
            }
        }
        return n;
    }

    CacheStats stats() const {
        CacheStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.waits = waits_.load(std::memory_order_relaxed);
        s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
        return s;
    }

    void reset_stats() {
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
        waits_.store(0, std::memory_order_relaxed);
        uncacheable_.store(0, std::memory_order_relaxed);
    }

private:
    struct Slot {
        mutable std::mutex mutex;
        std::condition_variable cv;
        bool ready = false;
        std::exception_ptr error;
        std::shared_ptr<const V> value;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, std::shared_ptr<Slot>> table;
    };

    Shard& shard_of(const std::string& key) {
        return shards_[std::hash<std::string>{}(key) % shards_.size()];
    }
    const Shard& shard_of(const std::string& key) const {
        return shards_[std::hash<std::string>{}(key) % shards_.size()];
    }

    std::vector<Shard> shards_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> waits_{0};
    std::atomic<std::size_t> uncacheable_{0};
};

} // namespace epoc::util
