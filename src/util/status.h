// Structured error taxonomy for per-block pipeline work.
//
// The pipeline's unit of failure is a *block* (a partition block in the
// synthesis stage, a regroup block or single gate in the pulse stage), and a
// production compile must absorb a failing block instead of aborting the
// whole circuit. BlockStatus replaces escape-by-exception for that per-block
// work: each block records which stage it was in, why it degraded (if it
// did), and whether a fallback was taken — so a compile can always return a
// valid schedule plus an exact account of what was degraded and where.
#pragma once

#include <string>

namespace epoc::util {

/// Pipeline stage a status refers to.
enum class Stage {
    input,     ///< compile() boundary validation
    zx,        ///< graph-based depth optimization
    partition, ///< greedy circuit partitioning
    synthesis, ///< per-block QSearch/LEAP/KAK synthesis
    regroup,   ///< VUG+CNOT regrouping
    pulse,     ///< per-block / per-gate GRAPE pulse generation
    schedule,  ///< ASAP scheduling
};

/// Why a block (or the whole compile) degraded.
enum class Cause {
    none,          ///< clean: no fallback, no error
    exception,     ///< the stage threw; the fallback absorbed it
    timeout,       ///< the compile deadline expired mid-stage
    cancelled,     ///< the caller's CancelToken fired
    infeasible,    ///< latency search could not meet the fidelity threshold
    nonfinite,     ///< GRAPE fidelity/gradients went non-finite past retries
    invalid_input, ///< compile() boundary validation rejected the circuit
    injected,      ///< a fault-injection site fired (tests/chaos runs)
    verify_failed, ///< an independent audit rejected the stage's output
};

inline const char* stage_name(Stage s) {
    switch (s) {
        case Stage::input: return "input";
        case Stage::zx: return "zx";
        case Stage::partition: return "partition";
        case Stage::synthesis: return "synthesis";
        case Stage::regroup: return "regroup";
        case Stage::pulse: return "pulse";
        case Stage::schedule: return "schedule";
    }
    return "?";
}

inline const char* cause_name(Cause c) {
    switch (c) {
        case Cause::none: return "none";
        case Cause::exception: return "exception";
        case Cause::timeout: return "timeout";
        case Cause::cancelled: return "cancelled";
        case Cause::infeasible: return "infeasible";
        case Cause::nonfinite: return "nonfinite";
        case Cause::invalid_input: return "invalid_input";
        case Cause::injected: return "injected";
        case Cause::verify_failed: return "verify_failed";
    }
    return "?";
}

/// Outcome of one unit of pipeline work. Default-constructed means "clean".
struct BlockStatus {
    Stage stage = Stage::input;
    Cause cause = Cause::none;
    /// True when the degradation ladder substituted a fallback artifact
    /// (original gates, gate-by-gate pulses, a placeholder pulse, ...).
    bool fallback_taken = false;
    /// Human-readable context, e.g. the absorbed exception's what().
    std::string detail;

    bool ok() const { return cause == Cause::none; }

    /// "stage/cause[/fallback][: detail]" — for logs and error messages.
    std::string to_string() const {
        std::string s = stage_name(stage);
        s += '/';
        s += cause_name(cause);
        if (fallback_taken) s += "/fallback";
        if (!detail.empty()) {
            s += ": ";
            s += detail;
        }
        return s;
    }
};

} // namespace epoc::util
