#include "util/thread_pool.h"

#include <algorithm>

namespace epoc::util {

int default_thread_count() {
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? default_thread_count() : num_threads) {
    workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
    for (int i = 0; i < num_threads_ - 1; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(Batch& b) {
    for (;;) {
        if (b.failed.load(std::memory_order_relaxed)) return; // stop claiming
        if (b.cancel != nullptr && b.cancel->cancelled()) return;
        const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.end) return;
        try {
            (*b.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(b.error_mutex);
            if (!b.failed.exchange(true)) b.error = std::current_exception();
        }
    }
}

void ThreadPool::worker_loop() {
    std::size_t seen_generation = 0;
    for (;;) {
        Batch* b = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || (batch_ != nullptr && generation_ != seen_generation);
            });
            if (shutdown_) return;
            seen_generation = generation_;
            b = batch_;
        }
        drain(*b);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++workers_done_;
        }
        done_cv_.notify_one();
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              const CancelToken* cancel) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
        // Sequential fast path: bit-identical to the pre-threading pipeline,
        // including immediate exception propagation.
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel != nullptr && cancel->cancelled()) return;
            fn(i);
        }
        return;
    }

    Batch b;
    b.end = n;
    b.fn = &fn;
    b.cancel = cancel;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = &b;
        ++generation_;
        workers_done_ = 0;
    }
    work_cv_.notify_all();
    drain(b); // the caller is a full lane, not just a coordinator
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
        batch_ = nullptr;
    }
    if (b.failed.load()) std::rethrow_exception(b.error);
}

} // namespace epoc::util
