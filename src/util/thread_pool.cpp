#include "util/thread_pool.h"

#include <algorithm>

namespace epoc::util {

int default_thread_count() {
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? default_thread_count() : num_threads) {
    workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
    for (int i = 0; i < num_threads_ - 1; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

bool ThreadPool::exhausted(const Batch& b) {
    return b.failed.load(std::memory_order_relaxed) ||
           (b.cancel != nullptr && b.cancel->cancelled()) ||
           b.next.load(std::memory_order_relaxed) >= b.end;
}

void ThreadPool::run_one(Batch& b, std::size_t i) {
    try {
        (*b.fn)(i);
    } catch (...) {
        std::lock_guard<std::mutex> lock(b.error_mutex);
        if (!b.failed.exchange(true)) b.error = std::current_exception();
    }
}

void ThreadPool::drain(Batch& b) {
    for (;;) {
        if (b.failed.load(std::memory_order_relaxed)) return; // stop claiming
        if (b.cancel != nullptr && b.cancel->cancelled()) return;
        const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.end) return;
        run_one(b, i);
    }
}

void ThreadPool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
        if (shutdown_) return;
        // One claim per turn, rotating across the live batches: with k
        // batches queued every batch receives ~1/k of the worker claims,
        // whatever its size — a thousand 1-index batches drain alongside a
        // single 10000-index one instead of behind it.
        if (rr_ >= queue_.size()) rr_ = 0;
        Batch* b = queue_[rr_];
        if (exhausted(*b)) {
            // Nothing left to claim: retire the batch from the queue. The
            // submitting caller is (or will be) waiting on `running`.
            b->queued = false;
            queue_.erase(queue_.begin() +
                         static_cast<std::vector<Batch*>::difference_type>(rr_));
            continue;
        }
        const std::size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b->end) continue; // lost the race to the last index
        ++rr_;
        ++b->running;
        lock.unlock();
        run_one(*b, i);
        lock.lock();
        // `b` stays valid: its caller cannot return (and pop its stack frame)
        // until running reaches 0 under this mutex.
        if (--b->running == 0) done_cv_.notify_all();
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              const CancelToken* cancel) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
        // Sequential fast path: bit-identical to the pre-threading pipeline,
        // including immediate exception propagation.
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel != nullptr && cancel->cancelled()) return;
            fn(i);
        }
        return;
    }

    Batch b;
    b.end = n;
    b.fn = &fn;
    b.cancel = cancel;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        b.queued = true;
        queue_.push_back(&b);
    }
    work_cv_.notify_all();
    drain(b); // the caller is a full lane, not just a coordinator
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (b.queued) {
            // Workers may not have noticed exhaustion yet; retire it ourselves
            // so no worker wastes a turn on it (or touches it after we return).
            b.queued = false;
            queue_.erase(std::find(queue_.begin(), queue_.end(), &b));
        }
        done_cv_.wait(lock, [&] { return b.running == 0; });
    }
    if (b.failed.load()) std::rethrow_exception(b.error);
}

} // namespace epoc::util
