// Reusable thread-pool executor for the embarrassingly parallel per-block
// stages of the pipeline (synthesis and GRAPE pulse generation).
//
// Design constraints, in order:
//   1. `num_threads == 1` must reproduce the sequential path *exactly*: no
//      worker threads are created and every task runs inline on the caller.
//   2. Results must be mergeable in deterministic submission order, so the
//      primitive is an index-space `parallel_for` rather than a future soup:
//      callers write into pre-sized slots and concatenate afterwards.
//   3. Exceptions thrown by tasks propagate to the caller (first one wins),
//      and a failed or cancelled batch stops *claiming* new indices: at most
//      the iterations already in flight keep running, never the whole tail.
#pragma once

#include "util/deadline.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace epoc::util {

/// `hardware_concurrency()` clamped to at least 1 (the standard permits 0).
int default_thread_count();

class ThreadPool {
public:
    /// `num_threads <= 0` selects `default_thread_count()`. The pool keeps
    /// `num_threads - 1` workers: the caller of parallel_for is always the
    /// remaining lane, so a 1-thread pool owns no threads at all.
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_threads() const { return num_threads_; }

    /// Run `fn(i)` for every i in [0, n). Blocks until all iterations finish.
    /// Iterations are claimed dynamically from a shared counter, so uneven
    /// per-index cost (some blocks synthesize in microseconds, some in
    /// seconds) balances automatically. If any iteration throws, the first
    /// exception is rethrown on the caller after the loop drains; once a task
    /// has thrown, no worker claims another index (only iterations already in
    /// flight complete). A non-null `cancel` token stops index claiming the
    /// same way when it fires — unclaimed indices are simply never run, and
    /// no exception is raised for them (the caller inspects its own slots to
    /// see what was skipped). On the sequential fast path (1 thread) the
    /// token is polled between iterations.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                      const CancelToken* cancel = nullptr);

private:
    struct Batch {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        const CancelToken* cancel = nullptr;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;
    };

    void worker_loop();
    static void drain(Batch& b);

    int num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< wakes workers when a batch arrives
    std::condition_variable done_cv_;  ///< wakes the caller when a batch drains
    Batch* batch_ = nullptr;           ///< the active batch, if any
    std::size_t generation_ = 0;       ///< bumped per batch (stack Batch objects
                                       ///< can reuse an address, so a pointer
                                       ///< compare cannot tell batches apart)
    std::size_t workers_done_ = 0;     ///< workers that exhausted the batch
    bool shutdown_ = false;
};

} // namespace epoc::util
