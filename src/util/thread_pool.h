// Reusable thread-pool executor for the embarrassingly parallel per-block
// stages of the pipeline (synthesis and GRAPE pulse generation).
//
// Design constraints, in order:
//   1. `num_threads == 1` must reproduce the sequential path *exactly*: no
//      worker threads are created and every task runs inline on the caller.
//   2. Results must be mergeable in deterministic submission order, so the
//      primitive is an index-space `parallel_for` rather than a future soup:
//      callers write into pre-sized slots and concatenate afterwards.
//   3. Exceptions thrown by tasks propagate to the caller (first one wins),
//      and a failed or cancelled batch stops *claiming* new indices: at most
//      the iterations already in flight keep running, never the whole tail.
//   4. Many callers may submit batches concurrently (the compile-service
//      daemon shares one pool across all in-flight requests), including
//      nested submissions from inside a running task. Every batch carries
//      its own state, and workers pick claims round-robin across the live
//      batches so one huge batch cannot starve the others — the block-level
//      fairness the service's mixed-size workloads rely on.
#pragma once

#include "util/deadline.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace epoc::util {

/// `hardware_concurrency()` clamped to at least 1 (the standard permits 0).
int default_thread_count();

class ThreadPool {
public:
    /// `num_threads <= 0` selects `default_thread_count()`. The pool keeps
    /// `num_threads - 1` workers: the caller of parallel_for is always the
    /// remaining lane, so a 1-thread pool owns no threads at all.
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_threads() const { return num_threads_; }

    /// Run `fn(i)` for every i in [0, n). Blocks until all iterations finish.
    /// Iterations are claimed dynamically from a shared counter, so uneven
    /// per-index cost (some blocks synthesize in microseconds, some in
    /// seconds) balances automatically. If any iteration throws, the first
    /// exception is rethrown on the caller after the loop drains; once a task
    /// has thrown, no worker claims another index of that batch (only
    /// iterations already in flight complete). A non-null `cancel` token
    /// stops index claiming the same way when it fires — unclaimed indices
    /// are simply never run, and no exception is raised for them (the caller
    /// inspects its own slots to see what was skipped). On the sequential
    /// fast path (1 thread) the token is polled between iterations.
    ///
    /// Thread-safe and reentrant: any number of threads may call
    /// parallel_for concurrently on one pool, and a task may itself call
    /// parallel_for (the nested caller drains its own batch inline, so a
    /// fully occupied pool makes nested batches sequential, never deadlocked).
    /// Each caller only ever observes its own batch's exceptions and
    /// cancellation. Workers interleave claims round-robin across all live
    /// batches, one index per turn, so concurrent batches make proportional
    /// progress regardless of their sizes.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                      const CancelToken* cancel = nullptr);

private:
    /// All per-submission state lives here, on the submitting caller's
    /// stack — nothing batch-specific on the pool itself, which is what
    /// makes concurrent submissions sound.
    struct Batch {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        const CancelToken* cancel = nullptr;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;
        /// Workers currently executing an iteration of this batch; guarded by
        /// the pool mutex. The caller's own drain is not counted (it waits on
        /// everyone else after finishing its own share).
        std::size_t running = 0;
        /// True while the batch sits in the pool's claim queue; guarded by
        /// the pool mutex.
        bool queued = false;
    };

    void worker_loop();
    /// Claim-and-run loop used by the submitting caller on its own batch:
    /// claims indices until none remain (or the batch failed / was
    /// cancelled). Does not touch pool state.
    static void drain(Batch& b);
    /// Run one iteration, folding a thrown exception into the batch (first
    /// exception wins; later ones are dropped).
    static void run_one(Batch& b, std::size_t i);
    /// True when no further index of `b` may be claimed.
    static bool exhausted(const Batch& b);

    int num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< wakes workers when a batch arrives
    std::condition_variable done_cv_;  ///< wakes callers when `running` drops
    std::vector<Batch*> queue_;        ///< live batches, claim-round-robin'd
    std::size_t rr_ = 0;               ///< round-robin cursor into queue_
    bool shutdown_ = false;
};

} // namespace epoc::util
