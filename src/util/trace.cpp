#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <tuple>

namespace epoc::util {

namespace {

std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// Minimal JSON string escaping; span/counter names are internal but labels can
// carry arbitrary bytes (same rules as epoc::core's schedule export).
void json_escape_into(std::ostringstream& os, const std::string& s) {
    static const char* hex = "0123456789abcdef";
    for (const char ch : s) {
        switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20)
                os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
            else
                os << ch;
        }
    }
}

} // namespace

// ----------------------------------------------------------------- TraceReport

std::uint64_t TraceReport::counter(const std::string& name) const {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return 0;
}

bool TraceReport::has_span(const std::string& name) const {
    for (const TraceEvent& ev : spans)
        if (ev.name == name) return true;
    return false;
}

std::string TraceReport::to_chrome_json() const {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : spans) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"";
        json_escape_into(os, ev.name);
        os << "\",\"cat\":\"";
        json_escape_into(os, ev.category.empty() ? "default" : ev.category);
        os << "\",\"ph\":\"X\",\"ts\":" << static_cast<double>(ev.begin_ns) / 1000.0
           << ",\"dur\":" << static_cast<double>(ev.end_ns - ev.begin_ns) / 1000.0
           << ",\"pid\":1,\"tid\":" << ev.tid << "}";
    }
    // Counters as one "C" sample each, stamped after the last span so the
    // totals read as end-of-run values in the viewer.
    std::uint64_t last_ns = 0;
    for (const TraceEvent& ev : spans) last_ns = std::max(last_ns, ev.end_ns);
    for (const auto& [name, value] : counters) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"";
        json_escape_into(os, name);
        os << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":"
           << static_cast<double>(last_ns) / 1000.0
           << ",\"pid\":1,\"args\":{\"value\":" << value << "}}";
    }
    os << "]}";
    return os.str();
}

std::string TraceReport::summary() const {
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (!enabled) {
        os << "trace: disabled\n";
        return os.str();
    }
    // Aggregate spans by name (map: deterministic name order).
    std::map<std::string, std::pair<std::size_t, std::uint64_t>> by_name;
    for (const TraceEvent& ev : spans) {
        auto& [count, total] = by_name[ev.name];
        ++count;
        total += ev.end_ns - ev.begin_ns;
    }
    os << "spans (" << spans.size() << "):\n";
    for (const auto& [name, agg] : by_name)
        os << "  " << name << ": n=" << agg.first
           << " total=" << static_cast<double>(agg.second) / 1e6 << "ms\n";
    os << "counters (" << counters.size() << "):\n";
    for (const auto& [name, value] : counters) os << "  " << name << ": " << value << "\n";
    return os.str();
}

// ---------------------------------------------------------------------- Tracer

Tracer::Tracer(bool enabled) : enabled_(enabled), epoch_ns_(steady_now_ns()) {}

std::uint64_t Tracer::now_ns() const {
    const std::uint64_t t = steady_now_ns();
    return t >= epoch_ns_ ? t - epoch_ns_ : 0;
}

int Tracer::tid_of(std::thread::id id) {
    const auto it = thread_ids_.find(id);
    if (it != thread_ids_.end()) return it->second;
    const int tid = static_cast<int>(thread_ids_.size());
    thread_ids_.emplace(id, tid);
    return tid;
}

void Tracer::record(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mutex_);
    ev.tid = tid_of(std::this_thread::get_id());
    events_.push_back(std::move(ev));
}

Tracer::Span Tracer::span(std::string name, std::string category) {
    if (!enabled()) return Span{};
    return Span{this, std::move(name), std::move(category)};
}

void Tracer::add_counter(const std::string& name, std::uint64_t delta) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void Tracer::set_counter(const std::string& name, std::uint64_t value) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] = value;
}

TraceReport Tracer::report() const {
    TraceReport r;
    r.enabled = enabled();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        r.spans = events_;
        r.counters.assign(counters_.begin(), counters_.end());
    }
    std::sort(r.spans.begin(), r.spans.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return std::tie(a.begin_ns, a.end_ns, a.name, a.tid) <
                         std::tie(b.begin_ns, b.end_ns, b.name, b.tid);
              });
    return r;
}

void Tracer::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    counters_.clear();
    thread_ids_.clear();
    epoch_ns_ = steady_now_ns();
}

// ----------------------------------------------------------------------- Span

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      begin_ns_(tracer->now_ns()) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      begin_ns_(other.begin_ns_) {
    other.tracer_ = nullptr;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
    if (this != &other) {
        end();
        tracer_ = other.tracer_;
        name_ = std::move(other.name_);
        category_ = std::move(other.category_);
        begin_ns_ = other.begin_ns_;
        other.tracer_ = nullptr;
    }
    return *this;
}

void Tracer::Span::end() {
    if (tracer_ == nullptr) return;
    TraceEvent ev;
    ev.name = std::move(name_);
    ev.category = std::move(category_);
    ev.begin_ns = begin_ns_;
    ev.end_ns = std::max(begin_ns_, tracer_->now_ns());
    tracer_->record(std::move(ev));
    tracer_ = nullptr;
}

Tracer::Span::~Span() { end(); }

} // namespace epoc::util
