// Tracing + metrics for the compiler pipeline.
//
// The paper's evaluation (Figures 8-10, Table 1) is a set of latency and
// compile-time breakdowns; this layer is how the pipeline produces them.
// Three pieces:
//
//   * RAII spans. `Tracer::span("grape 2q", "qoc")` stamps a begin time and,
//     when the returned object dies, an end time plus the worker thread that
//     ran the region. Each block's synthesis / GRAPE work therefore shows up
//     as its own slice under its worker's row in the exported timeline.
//   * Named monotonic counters. `add_counter("qoc.grape_runs", n)` aggregates
//     order-independently (a plain sum), so totals are bit-identical across
//     thread counts whenever the underlying work is (which the single-flight
//     caches guarantee).
//   * Export. `TraceReport::to_chrome_json()` emits Chrome trace_event JSON
//     ("X" duration events + "C" counter samples) loadable in chrome://tracing
//     and Perfetto; `summary()` is a flat text digest for terminals.
//
// Overhead contract: a disabled tracer does one relaxed atomic load per
// span/counter call and touches nothing else — no locks, no allocation, no
// clock reads. The parallel-speedup bench holds the disabled path to < 2 %
// end-to-end regression. Enabled-path recording takes a mutex per event,
// which is negligible next to the multi-millisecond GRAPE/QSearch regions it
// brackets.
//
// Determinism contract (PR 1): tracing must never perturb the compiled
// artifact. Spans are sorted by (begin, end, name, tid) on snapshot so the
// export is reproducible given identical timings; counters are plain sums,
// identical across thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace epoc::util {

/// One completed span. Times are nanoseconds since the tracer's epoch (its
/// construction or last reset). `tid` is a small dense id: 0 for the first
/// thread that recorded an event, 1 for the second, and so on.
struct TraceEvent {
    std::string name;
    std::string category;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    int tid = 0;
};

/// Immutable snapshot of a tracer: spans (sorted) + counters (name-ordered).
/// Cheap to copy around on EpocResult; empty when tracing was disabled.
struct TraceReport {
    bool enabled = false;
    std::vector<TraceEvent> spans;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// Value of a counter, 0 if absent.
    std::uint64_t counter(const std::string& name) const;
    /// True if some span with this exact name was recorded.
    bool has_span(const std::string& name) const;

    /// Chrome trace_event JSON (the {"traceEvents":[...]} object form).
    /// Loadable in chrome://tracing and Perfetto. Span times become
    /// microsecond "X" events; counters become one "C" sample each.
    std::string to_chrome_json() const;
    /// Flat text summary: per-name span count/total time, then counters.
    std::string summary() const;
};

class Tracer {
public:
    explicit Tracer(bool enabled = false);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    /// Enabling mid-run is safe; spans already in flight on other threads
    /// record iff the tracer was enabled when they were opened.
    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    /// RAII span handle. Inactive handles (disabled tracer) are inert.
    class Span {
    public:
        Span() = default;
        Span(Tracer* tracer, std::string name, std::string category);
        ~Span();
        Span(Span&& other) noexcept;
        Span& operator=(Span&& other) noexcept;
        Span(const Span&) = delete;
        Span& operator=(const Span&) = delete;
        /// Close early (idempotent); the destructor then does nothing.
        void end();

    private:
        Tracer* tracer_ = nullptr; ///< null when inert
        std::string name_;
        std::string category_;
        std::uint64_t begin_ns_ = 0;
    };

    /// Open a span; record it when the handle dies (or `end()` is called).
    Span span(std::string name, std::string category = std::string());

    /// Add `delta` to the named counter. No-op when disabled.
    void add_counter(const std::string& name, std::uint64_t delta = 1);
    /// Overwrite the named counter (for folding in externally-accumulated
    /// totals like cache hit/miss stats). No-op when disabled.
    void set_counter(const std::string& name, std::uint64_t value);

    /// Snapshot everything recorded since construction / the last reset.
    TraceReport report() const;

    /// Drop all spans and counters and restart the time epoch.
    void reset();

private:
    friend class Span;
    std::uint64_t now_ns() const;
    int tid_of(std::thread::id id);
    void record(TraceEvent ev);

    std::atomic<bool> enabled_;
    std::uint64_t epoch_ns_ = 0; ///< steady_clock origin, guarded by mutex_ on write

    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::thread::id, int> thread_ids_;
};

} // namespace epoc::util
