#include "verify/verify.h"

#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "qoc/grape.h"
#include "qoc/pulse_io.h"
#include "util/fault_injection.h"
#include "zx/circuit_to_zx.h"
#include "zx/tensor.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace epoc::verify {

namespace {

// Same finalizer the fault-injection %K@S trigger uses: a well-mixed 64-bit
// hash so sampling is uniform even over structured ids (sequential block
// indices, FNV digests of similar keys).
std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void update_max(std::atomic<double>& slot, double v) {
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

// |tr(a^dagger b)| / (||a||_F ||b||_F): 1 iff b is a nonzero scalar multiple
// of a. The ZX tensor evaluator keeps sqrt(2) factors from Hadamard edges, so
// the cross-check must be invariant under arbitrary scalars, not just unit
// phases — hs_fidelity is not enough here.
double cosine_similarity(const linalg::Matrix& a, const linalg::Matrix& b) {
    linalg::cplx tr{0.0, 0.0};
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            tr += std::conj(a(r, c)) * b(r, c);
    const double na = a.frobenius_norm(), nb = b.frobenius_norm();
    if (na <= 0.0 || nb <= 0.0) return 0.0;
    return std::abs(tr) / (na * nb);
}

int interior_spiders(const zx::ZxGraph& g) {
    int n = 0;
    for (int v : g.vertices())
        if (g.is_interior(v)) ++n;
    return n;
}

} // namespace

const char* level_name(VerifyLevel level) {
    switch (level) {
    case VerifyLevel::unset: return "unset";
    case VerifyLevel::off: return "off";
    case VerifyLevel::sampled: return "sampled";
    case VerifyLevel::full: return "full";
    }
    return "?";
}

VerifyLevel level_from_name(const std::string& name) {
    if (name == "off") return VerifyLevel::off;
    if (name == "sampled") return VerifyLevel::sampled;
    if (name == "full") return VerifyLevel::full;
    throw std::invalid_argument("unknown verify level '" + name +
                                "' (expected off|sampled|full)");
}

VerifyLevel level_from_env() {
    const char* env = std::getenv("EPOC_VERIFY");
    if (env == nullptr || *env == '\0') return VerifyLevel::off;
    try {
        return level_from_name(env);
    } catch (const std::invalid_argument&) {
        return VerifyLevel::off;
    }
}

VerifyLevel resolve_level(VerifyLevel explicit_level) {
    return explicit_level == VerifyLevel::unset ? level_from_env() : explicit_level;
}

const char* outcome_name(Outcome o) {
    switch (o) {
    case Outcome::not_checked: return "not_checked";
    case Outcome::passed: return "passed";
    case Outcome::failed: return "failed";
    case Outcome::unverified: return "unverified";
    }
    return "?";
}

Verifier::Verifier(VerifyOptions opt, util::Tracer* tracer)
    : opt_(opt), tracer_(tracer) {
    opt_.level = resolve_level(opt_.level);
    if (opt_.sample_period < 1) opt_.sample_period = 1;
}

void Verifier::begin_compile() {
    checks_.store(0, std::memory_order_relaxed);
    passed_.store(0, std::memory_order_relaxed);
    failed_.store(0, std::memory_order_relaxed);
    unverified_.store(0, std::memory_order_relaxed);
    skipped_.store(0, std::memory_order_relaxed);
    revalidations_.store(0, std::memory_order_relaxed);
    pack_revalidations_.store(0, std::memory_order_relaxed);
    revalidate_rejects_.store(0, std::memory_order_relaxed);
    recomputes_.store(0, std::memory_order_relaxed);
    max_error_.store(0.0, std::memory_order_relaxed);
    error_budget_.store(0.0, std::memory_order_relaxed);
}

VerifySummary Verifier::summary() const {
    VerifySummary s;
    s.level = opt_.level;
    s.checks = checks_.load(std::memory_order_relaxed);
    s.passed = passed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.unverified = unverified_.load(std::memory_order_relaxed);
    s.skipped = skipped_.load(std::memory_order_relaxed);
    s.revalidations = revalidations_.load(std::memory_order_relaxed);
    s.pack_revalidations = pack_revalidations_.load(std::memory_order_relaxed);
    s.revalidate_rejects = revalidate_rejects_.load(std::memory_order_relaxed);
    s.recomputes = recomputes_.load(std::memory_order_relaxed);
    s.error_budget = error_budget_.load(std::memory_order_relaxed);
    s.max_fidelity_error = max_error_.load(std::memory_order_relaxed);
    return s;
}

void Verifier::set_error_budget(double budget) {
    error_budget_.store(budget, std::memory_order_relaxed);
}

void Verifier::note_recompute() {
    recomputes_.fetch_add(1, std::memory_order_relaxed);
}

bool Verifier::should_check(std::uint64_t stable_id) const {
    if (!enabled()) return false;
    if (full() || opt_.sample_period <= 1) return true;
    return splitmix64(opt_.sample_seed ^ stable_id) %
               static_cast<std::uint64_t>(opt_.sample_period) ==
           0;
}

bool Verifier::should_check_key(const std::string& key) const {
    if (!enabled()) return false;
    return should_check(qoc::fnv1a64(key));
}

bool Verifier::should_check_unitary(const linalg::Matrix& u) const {
    if (!enabled()) return false;
    if (full()) return true; // skip the fingerprint cost when always checking
    return should_check(qoc::fnv1a64(linalg::phase_canonical_key(u, 6)));
}

Outcome Verifier::record(Outcome o, const char* /*counter_hint*/) {
    checks_.fetch_add(1, std::memory_order_relaxed);
    switch (o) {
    case Outcome::passed: passed_.fetch_add(1, std::memory_order_relaxed); break;
    case Outcome::failed: failed_.fetch_add(1, std::memory_order_relaxed); break;
    case Outcome::unverified:
        unverified_.fetch_add(1, std::memory_order_relaxed);
        break;
    case Outcome::not_checked: break;
    }
    return o;
}

void Verifier::count_skip() { skipped_.fetch_add(1, std::memory_order_relaxed); }

Outcome Verifier::check_circuit_equiv(const circuit::Circuit& before,
                                      const circuit::Circuit& after,
                                      const char* what) {
    if (!enabled()) return Outcome::not_checked;
    if (before.num_qubits() > opt_.max_equiv_qubits ||
        after.num_qubits() > opt_.max_equiv_qubits) {
        count_skip();
        return Outcome::not_checked;
    }
    auto span = tracer_ != nullptr
                    ? tracer_->span(std::string("verify.equiv ") + what, "verify")
                    : util::Tracer::Span();
    try {
        util::fault::maybe_throw("verify.equiv");
        const linalg::Matrix ub = circuit::circuit_unitary(before);
        const linalg::Matrix ua = circuit::circuit_unitary(after);
        bool ok = ub.rows() == ua.rows() &&
                  linalg::phase_invariant_distance(ub, ua) <= opt_.equiv_tol;
        // Third, independent evaluator: the brute-force ZX tensor semantics.
        // Exponential in interior spiders, so full mode only and tiny
        // diagrams only; a disagreement here flags a bug in circuit_unitary
        // itself, which the two-way check above cannot see.
        if (ok && full()) {
            const zx::ZxGraph g = zx::circuit_to_zx(after);
            if (interior_spiders(g) <= opt_.max_tensor_interior) {
                const linalg::Matrix m = zx::zx_to_matrix(g);
                ok = m.rows() == ua.rows() &&
                     cosine_similarity(ua, m) >= 1.0 - opt_.equiv_tol;
            }
        }
        return record(ok ? Outcome::passed : Outcome::failed, what);
    } catch (...) {
        return record(Outcome::unverified, what);
    }
}

Outcome Verifier::check_blocks_equiv(const circuit::Circuit& segment,
                                     const std::vector<partition::CircuitBlock>& blocks,
                                     const char* what) {
    if (!enabled()) return Outcome::not_checked;
    const int n = segment.num_qubits();
    if (n > opt_.max_equiv_qubits) {
        count_skip();
        return Outcome::not_checked;
    }
    auto span = tracer_ != nullptr
                    ? tracer_->span(std::string("verify.equiv ") + what, "verify")
                    : util::Tracer::Span();
    try {
        util::fault::maybe_throw("verify.equiv");
        linalg::Matrix u = linalg::Matrix::identity(std::size_t{1} << n);
        for (const partition::CircuitBlock& blk : blocks)
            circuit::apply_gate(u, partition::block_unitary(blk), blk.qubits, n);
        const linalg::Matrix ref = circuit::circuit_unitary(segment);
        const bool ok = linalg::phase_invariant_distance(ref, u) <= opt_.equiv_tol;
        return record(ok ? Outcome::passed : Outcome::failed, what);
    } catch (...) {
        return record(Outcome::unverified, what);
    }
}

Outcome Verifier::check_plan_layout(const circuit::Circuit& bound_skeleton,
                                    const std::vector<partition::CircuitBlock>& groups) {
    // Deliberately the same oracle (and the same verify.equiv fault site) as
    // a cold compile's regroup check: a plan hit earns no weaker audit than
    // the stages it skips.
    return check_blocks_equiv(bound_skeleton, groups, "plan");
}

Outcome Verifier::check_synthesized_block(const linalg::Matrix& target,
                                          const circuit::Circuit& local,
                                          double distance_tol) {
    if (!enabled()) return Outcome::not_checked;
    if (local.num_qubits() > opt_.max_equiv_qubits) {
        count_skip();
        return Outcome::not_checked;
    }
    auto span = tracer_ != nullptr ? tracer_->span("verify.equiv synth", "verify")
                                   : util::Tracer::Span();
    try {
        util::fault::maybe_throw("verify.equiv");
        const linalg::Matrix u = circuit::circuit_unitary(local);
        const bool ok = u.rows() == target.rows() &&
                        linalg::phase_invariant_distance(target, u) <= distance_tol;
        return record(ok ? Outcome::passed : Outcome::failed, "synth");
    } catch (...) {
        return record(Outcome::unverified, "synth");
    }
}

Outcome Verifier::audit_pulse(const qoc::BlockHamiltonian& h,
                              const linalg::Matrix& target,
                              const qoc::LatencyResult& lr, double* abs_error,
                              double* resim_fidelity) {
    if (abs_error != nullptr) *abs_error = 0.0;
    if (resim_fidelity != nullptr) *resim_fidelity = lr.pulse.fidelity;
    if (!enabled()) return Outcome::not_checked;
    auto span = tracer_ != nullptr ? tracer_->span("verify.simulate", "verify")
                                   : util::Tracer::Span();
    try {
        util::fault::maybe_throw("verify.simulate");
        const linalg::Matrix u = qoc::pulse_unitary(h, lr.pulse);
        double f = linalg::hs_fidelity(target, u);
        if (!std::isfinite(f)) f = 0.0;
        const double err = std::abs(lr.pulse.fidelity - f);
        if (abs_error != nullptr) *abs_error = err;
        if (resim_fidelity != nullptr) *resim_fidelity = f;
        update_max(max_error_, err);
        return record(err <= opt_.fidelity_tol ? Outcome::passed : Outcome::failed,
                      "simulate");
    } catch (...) {
        return record(Outcome::unverified, "simulate");
    }
}

bool Verifier::revalidate(const qoc::BlockHamiltonian& h, const linalg::Matrix& target,
                          const qoc::LatencyResult& lr, bool foreign) {
    revalidations_.fetch_add(1, std::memory_order_relaxed);
    // Foreign entries (pack-tier hits — bytes from another machine or build)
    // are tallied separately: unlike sampled local revalidation, *every* pack
    // hit passes through here, so this counter is the per-compile cost of
    // trust-but-verify ingest.
    if (foreign) pack_revalidations_.fetch_add(1, std::memory_order_relaxed);
    auto span = tracer_ != nullptr ? tracer_->span("verify.revalidate", "verify")
                                   : util::Tracer::Span();
    try {
        util::fault::maybe_throw("verify.revalidate");
        const linalg::Matrix u = qoc::pulse_unitary(h, lr.pulse);
        double f = linalg::hs_fidelity(target, u);
        if (!std::isfinite(f)) f = 0.0;
        const bool ok = std::abs(lr.pulse.fidelity - f) <= opt_.fidelity_tol;
        if (!ok) revalidate_rejects_.fetch_add(1, std::memory_order_relaxed);
        return ok;
    } catch (...) {
        // A broken verifier must never reject a good store entry: accept and
        // count the entry as explicitly unaudited.
        unverified_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
}

} // namespace epoc::verify
