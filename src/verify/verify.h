// Independent output auditing: the compiler's trust-but-verify tier.
//
// EPOC's pipeline is built on reuse — a phase-aware pulse library, a
// synthesis cache, an on-disk store — and reuse is exactly where silent
// correctness drift creeps in: a poisoned cache entry, a store file written
// by a buggy or older build, an optimizer that returns a plausible circuit
// for the wrong unitary. The checksums and status flags of the resilience
// and store layers catch *structural* damage; nothing before this layer
// independently checked that what the compiler emits actually implements the
// circuit. The Verifier closes that gap with three families of checks:
//
//   * Stage-equivalence oracles. The ZX-optimized circuit must equal the
//     input up to global phase; partition/regroup block lists must reproduce
//     the circuit segment they replace; each synthesized block must match
//     its target unitary within the synthesis threshold. All oracles
//     re-derive unitaries through circuit/unitary.h — a different code path
//     from the stages they audit — and, for tiny diagrams in `full` mode,
//     cross-check through the brute-force ZX tensor semantics (zx/tensor.h),
//     a third independent evaluator.
//   * Schedule audit. Every emitted pulse is forward-simulated under its
//     Hamiltonian (qoc::pulse_unitary) and the re-simulated process fidelity
//     is cross-checked against the fidelity the latency search recorded. A
//     disagreement beyond `fidelity_tol` marks the pulse bad; the absolute
//     errors of the shipped pulses aggregate into a per-schedule error
//     budget on EpocResult.
//   * Store revalidation. L2 (disk) hits are re-simulated on load — sampled
//     or always, by level — which catches entries a checksum cannot: valid
//     bytes encoding wrong physics. Rejected entries are quarantined via
//     the store's existing quarantine path and transparently recomputed.
//
// Failure semantics mirror the degradation ladder (util/status.h): a
// verification failure never throws. It becomes Cause::verify_failed on the
// block's status — recompute once (evicting the suspect cache/store entry),
// then fall back a rung — so a compile with a detected bad artifact still
// returns a complete schedule, normally bit-identical to an uncorrupted run.
// The verifier itself is guarded by fault-injection sites (`verify.equiv`,
// `verify.simulate`, `verify.revalidate`): a broken verifier degrades to
// Outcome::unverified and never fails a clean compile.
//
// Levels (EpocOptions::verify_level / the EPOC_VERIFY env variable):
//   off      — no checks; the compile is bit-identical to a build without
//              the verifier (every call site gates on enabled()).
//   sampled  — stage-level oracles always; per-block synthesis/pulse audits
//              and store revalidation on a deterministic ~1/sample_period
//              subset keyed on the target unitary / store key (never on
//              arrival order, so the subset is thread-count-invariant).
//   full     — every check, every block, every store hit.
#pragma once

#include "partition/partition.h"
#include "qoc/latency_search.h"
#include "util/trace.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace epoc::verify {

/// Audit level. `unset` (the EpocOptions default) resolves through the
/// EPOC_VERIFY environment variable and falls back to `off`.
enum class VerifyLevel : std::uint8_t { unset, off, sampled, full };

const char* level_name(VerifyLevel level);
/// Parse "off" | "sampled" | "full"; throws std::invalid_argument otherwise.
VerifyLevel level_from_name(const std::string& name);
/// EPOC_VERIFY environment variable; `off` when unset, empty, or malformed
/// (a typo in an env var must not change compile behaviour unpredictably —
/// it disables verification, the conservative default).
VerifyLevel level_from_env();
/// `explicit_level` unless it is `unset`, in which case the environment.
VerifyLevel resolve_level(VerifyLevel explicit_level);

/// Per-check (and per-BlockReport) verification outcome.
enum class Outcome : std::uint8_t {
    not_checked, ///< verification off, sampled out, or not applicable
    passed,      ///< independently confirmed
    failed,      ///< the artifact does not match what it claims to implement
    unverified,  ///< the *verifier* failed (exception / injected fault): the
                 ///< artifact ships as-is, explicitly unaudited — a broken
                 ///< verifier must never fail a clean compile
};

const char* outcome_name(Outcome o);

struct VerifyOptions {
    /// Resolved level (never `unset` inside a Verifier).
    VerifyLevel level = VerifyLevel::off;
    /// Stage-equivalence oracles build full 2^n unitaries; above this width
    /// they are skipped (Outcome::not_checked) instead of stalling the
    /// compile on an exponential check.
    int max_equiv_qubits = 7;
    /// Hilbert-Schmidt distance tolerance for the circuit-level oracles.
    double equiv_tol = 1e-6;
    /// Tolerance on |recorded - re-simulated| pulse fidelity. The recorded
    /// number is computed by the same overlap formula GRAPE maximizes, so a
    /// healthy pulse agrees to ~1e-12; 1e-6 leaves room for non-associative
    /// float reduction while still catching any physically meaningful drift.
    double fidelity_tol = 1e-6;
    /// `sampled` audits ~1/sample_period of the per-block checks.
    int sample_period = 8;
    /// Seed of the deterministic sampling hash.
    std::uint64_t sample_seed = 0x9e3779b97f4a7c15ULL;
    /// `full` mode cross-checks the ZX oracle through zx_to_matrix when the
    /// optimized circuit's diagram has at most this many interior spiders
    /// (the tensor evaluator is exponential in that count).
    int max_tensor_interior = 12;
};

/// Per-compile audit tally, surfaced on EpocResult::verify. All counts are
/// deterministic across thread counts: which checks run is a function of
/// block indices and unitary fingerprints, never of scheduling.
struct VerifySummary {
    VerifyLevel level = VerifyLevel::off;
    std::size_t checks = 0;     ///< oracles + audits that ran to a verdict
    std::size_t passed = 0;
    std::size_t failed = 0;
    std::size_t unverified = 0; ///< verifier-side failures (never fatal)
    std::size_t skipped = 0;    ///< width-gated or sampled-out checks
    std::size_t revalidations = 0;       ///< store hits re-simulated on load
    /// Revalidations of *foreign* entries (pack-tier hits), a subset of
    /// `revalidations`. These bypass sampling — every pack hit is audited —
    /// so this is the standing cost of trust-but-verify library ingest.
    std::size_t pack_revalidations = 0;
    std::size_t revalidate_rejects = 0;  ///< ... that were quarantined
    std::size_t recomputes = 0; ///< verify-triggered regenerations
    /// Sum over the shipped schedule's audited pulses of
    /// |recorded - re-simulated| fidelity: the compile's audited error
    /// budget. Accumulated in deterministic block-merge order.
    double error_budget = 0.0;
    /// Largest single audit error observed this compile (either arm).
    double max_fidelity_error = 0.0;

    /// No artifact failed an audit and no store entry was rejected.
    bool clean() const { return failed == 0 && revalidate_rejects == 0; }
};

/// Thread-safe auditor. One instance lives on the compiler, like the tracer;
/// call begin_compile() at each compile() entry to reset the per-compile
/// tally. Every check method is noexcept-in-spirit: internal failures
/// (including the verify.* fault-injection sites) surface as
/// Outcome::unverified, never as an exception.
class Verifier {
public:
    explicit Verifier(VerifyOptions opt = {}, util::Tracer* tracer = nullptr);

    /// False at level off: call sites skip all verify work (and cost).
    bool enabled() const { return opt_.level >= VerifyLevel::sampled; }
    bool full() const { return opt_.level == VerifyLevel::full; }
    const VerifyOptions& options() const { return opt_; }

    /// Reset the per-compile tally (summary() counts since the last call).
    void begin_compile();
    VerifySummary summary() const;
    /// Fold the shipped arm's deterministically-merged audit error sum into
    /// the summary (called once, from the compile's merge phase).
    void set_error_budget(double budget);
    /// Count a verify-triggered recompute (cache/store eviction + re-run).
    void note_recompute();

    /// Deterministic sampling verdicts: full -> always; sampled -> a hash of
    /// the id/key/unitary fingerprint, invariant under thread count.
    bool should_check(std::uint64_t stable_id) const;
    bool should_check_key(const std::string& key) const;
    bool should_check_unitary(const linalg::Matrix& u) const;

    /// Oracle: `after` implements `before` up to global phase (width-gated).
    /// In full mode, additionally cross-checked against the ZX tensor
    /// semantics of `after`'s diagram when that diagram is small enough.
    /// `what` labels the tracer span ("zx", ...).
    Outcome check_circuit_equiv(const circuit::Circuit& before,
                                const circuit::Circuit& after, const char* what);

    /// Oracle: the block list reproduces `segment` — the product of the
    /// embedded block unitaries equals the segment's unitary up to global
    /// phase (width-gated).
    Outcome check_blocks_equiv(const circuit::Circuit& segment,
                               const std::vector<partition::CircuitBlock>& blocks,
                               const char* what);

    /// Oracle for plan-cache instantiation (epoc/plan_cache.h): the bound
    /// regroup layout recovered from a cached CompilationPlan must reproduce
    /// the bound skeleton circuit. The same blocks oracle a cold compile runs
    /// over its freshly-regrouped blocks, pointed at reused ones — a stale or
    /// doctored plan entry fails here and is evicted and rebuilt instead of
    /// shipped. Traced under "plan".
    Outcome check_plan_layout(const circuit::Circuit& bound_skeleton,
                              const std::vector<partition::CircuitBlock>& groups);

    /// Oracle: the synthesized local circuit realises `target` within
    /// `distance_tol` (phase-invariant distance; pass the synthesis
    /// threshold with slack).
    Outcome check_synthesized_block(const linalg::Matrix& target,
                                    const circuit::Circuit& local, double distance_tol);

    /// Schedule audit: forward-simulate `lr`'s pulse under `h` and cross-
    /// check against the recorded fidelity. On any verdict, `abs_error`
    /// receives |recorded - re-simulated| (0 when unverified) and
    /// `resim_fidelity` the re-simulated value clamped finite — the number
    /// to ship when the recorded one is proven untrustworthy.
    Outcome audit_pulse(const qoc::BlockHamiltonian& h, const linalg::Matrix& target,
                        const qoc::LatencyResult& lr, double* abs_error = nullptr,
                        double* resim_fidelity = nullptr);

    /// Store-revalidation oracle (wired as PulseLibrary's revalidator):
    /// true accepts the entry. Sampling (should_check_key) is the caller's
    /// job; a verifier-side failure accepts — degrade to unverified, never
    /// reject a good store on a broken verifier. `foreign` marks pack-tier
    /// entries (counted separately; see VerifySummary::pack_revalidations).
    /// Works at every verify level, `off` included — foreign-byte ingest
    /// must not depend on the audit knob.
    bool revalidate(const qoc::BlockHamiltonian& h, const linalg::Matrix& target,
                    const qoc::LatencyResult& lr, bool foreign = false);

private:
    Outcome record(Outcome o, const char* counter_hint);
    void count_skip();

    VerifyOptions opt_;
    util::Tracer* tracer_;

    // Per-compile tally (reset by begin_compile).
    std::atomic<std::size_t> checks_{0};
    std::atomic<std::size_t> passed_{0};
    std::atomic<std::size_t> failed_{0};
    std::atomic<std::size_t> unverified_{0};
    std::atomic<std::size_t> skipped_{0};
    std::atomic<std::size_t> revalidations_{0};
    std::atomic<std::size_t> pack_revalidations_{0};
    std::atomic<std::size_t> revalidate_rejects_{0};
    std::atomic<std::size_t> recomputes_{0};
    std::atomic<double> max_error_{0.0};
    std::atomic<double> error_budget_{0.0};
};

} // namespace epoc::verify
