#include "zx/circuit_to_zx.h"

#include "circuit/decompose.h"

#include <numbers>
#include <stdexcept>

namespace epoc::zx {

namespace {

constexpr double kPi = std::numbers::pi;

using circuit::Gate;
using circuit::GateKind;

class Converter {
public:
    explicit Converter(int num_qubits) {
        last_.reserve(static_cast<std::size_t>(num_qubits));
        for (int q = 0; q < num_qubits; ++q) {
            const int in = g_.add_vertex(VertexType::Boundary, 0.0, q);
            inputs_.push_back(in);
            last_.push_back(in);
        }
    }

    void z_spider(int q, double phase) {
        const int v = g_.add_vertex(VertexType::Z, phase, q);
        g_.add_edge(last_[static_cast<std::size_t>(q)], v, EdgeType::Simple);
        last_[static_cast<std::size_t>(q)] = v;
    }

    void x_spider(int q, double phase) {
        const int v = g_.add_vertex(VertexType::X, phase, q);
        g_.add_edge(last_[static_cast<std::size_t>(q)], v, EdgeType::Simple);
        last_[static_cast<std::size_t>(q)] = v;
    }

    void hadamard(int q) {
        // Phase-free spider reached through a Hadamard edge == an H gate.
        const int v = g_.add_vertex(VertexType::Z, 0.0, q);
        g_.add_edge(last_[static_cast<std::size_t>(q)], v, EdgeType::Hadamard);
        last_[static_cast<std::size_t>(q)] = v;
    }

    void cz(int a, int b) {
        const int va = g_.add_vertex(VertexType::Z, 0.0, a);
        const int vb = g_.add_vertex(VertexType::Z, 0.0, b);
        g_.add_edge(last_[static_cast<std::size_t>(a)], va, EdgeType::Simple);
        g_.add_edge(last_[static_cast<std::size_t>(b)], vb, EdgeType::Simple);
        g_.add_edge(va, vb, EdgeType::Hadamard);
        last_[static_cast<std::size_t>(a)] = va;
        last_[static_cast<std::size_t>(b)] = vb;
    }

    void cx(int c, int t) {
        const int vc = g_.add_vertex(VertexType::Z, 0.0, c);
        const int vt = g_.add_vertex(VertexType::X, 0.0, t);
        g_.add_edge(last_[static_cast<std::size_t>(c)], vc, EdgeType::Simple);
        g_.add_edge(last_[static_cast<std::size_t>(t)], vt, EdgeType::Simple);
        g_.add_edge(vc, vt, EdgeType::Simple);
        last_[static_cast<std::size_t>(c)] = vc;
        last_[static_cast<std::size_t>(t)] = vt;
    }

    void gate(const Gate& gt, int num_qubits) {
        const auto& q = gt.qubits;
        switch (gt.kind) {
        case GateKind::I:
            return;
        case GateKind::Z: z_spider(q[0], kPi); return;
        case GateKind::S: z_spider(q[0], kPi / 2); return;
        case GateKind::Sdg: z_spider(q[0], -kPi / 2); return;
        case GateKind::T: z_spider(q[0], kPi / 4); return;
        case GateKind::Tdg: z_spider(q[0], -kPi / 4); return;
        case GateKind::RZ:
        case GateKind::P: z_spider(q[0], gt.params[0]); return;
        case GateKind::X: x_spider(q[0], kPi); return;
        case GateKind::SX: x_spider(q[0], kPi / 2); return;
        case GateKind::SXdg: x_spider(q[0], -kPi / 2); return;
        case GateKind::RX: x_spider(q[0], gt.params[0]); return;
        case GateKind::Y:
            // Y = i * X * Z; global phase dropped.
            z_spider(q[0], kPi);
            x_spider(q[0], kPi);
            return;
        case GateKind::RY:
            // RY(t) = S * RX(t) * Sdg (time order: sdg, rx, s).
            z_spider(q[0], -kPi / 2);
            x_spider(q[0], gt.params[0]);
            z_spider(q[0], kPi / 2);
            return;
        case GateKind::U3:
            // U3(t,p,l) = RZ(p) RY(t) RZ(l); with RY = S RX Sdg this folds to
            // rz(l - pi/2), rx(t), rz(p + pi/2).
            z_spider(q[0], gt.params[2] - kPi / 2);
            x_spider(q[0], gt.params[0]);
            z_spider(q[0], gt.params[1] + kPi / 2);
            return;
        case GateKind::H: hadamard(q[0]); return;
        case GateKind::CZ: cz(q[0], q[1]); return;
        case GateKind::CX: cx(q[0], q[1]); return;
        case GateKind::VUG:
        case GateKind::UNITARY:
            throw std::invalid_argument(
                "circuit_to_zx: explicit-unitary gates cannot be converted; run "
                "the ZX pass before synthesis");
        default: {
            // Lower everything else to {U3, CX} and recurse.
            const circuit::Circuit sub =
                circuit::decompose_gate(gt, circuit::Basis::U3_CX, num_qubits);
            for (const Gate& inner : sub.gates()) gate(inner, num_qubits);
            return;
        }
        }
    }

    ZxGraph finish() {
        std::vector<int> outputs;
        for (std::size_t q = 0; q < last_.size(); ++q) {
            const int out = g_.add_vertex(VertexType::Boundary, 0.0, static_cast<int>(q));
            g_.add_edge(last_[q], out, EdgeType::Simple);
            outputs.push_back(out);
        }
        g_.set_inputs(inputs_);
        g_.set_outputs(std::move(outputs));
        return std::move(g_);
    }

private:
    ZxGraph g_;
    std::vector<int> inputs_;
    std::vector<int> last_;
};

} // namespace

ZxGraph circuit_to_zx(const circuit::Circuit& c) {
    Converter conv(c.num_qubits());
    for (const Gate& g : c.gates()) conv.gate(g, c.num_qubits());
    return conv.finish();
}

} // namespace epoc::zx
