// Circuit -> ZX-diagram conversion.
//
// Gates are lowered onto spiders in the standard way: Z-axis rotations become
// Z spiders, X-axis rotations X spiders, H becomes a phase-free spider behind
// a Hadamard edge, CZ a Hadamard edge between two fresh Z spiders, CX a simple
// edge between a Z (control) and an X (target) spider. Everything else is
// decomposed to {U3, CX} first. Every gate allocates fresh spiders, so the
// raw diagram never contains parallel edges.
#pragma once

#include "circuit/circuit.h"
#include "zx/graph.h"

namespace epoc::zx {

/// Build the ZX-diagram of a circuit (global phase dropped).
ZxGraph circuit_to_zx(const circuit::Circuit& c);

} // namespace epoc::zx
