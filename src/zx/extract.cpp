#include "zx/extract.h"

#include "zx/gf2.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace epoc::zx {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

constexpr double kTol = 1e-9;

class Extractor {
public:
    explicit Extractor(ZxGraph g) : g_(std::move(g)), nq_(g_.outputs().size()) {}

    Circuit run() {
        input_qubit_.clear();
        for (std::size_t q = 0; q < g_.inputs().size(); ++q)
            input_qubit_[g_.inputs()[q]] = static_cast<int>(q);

        for (int round = 0;; ++round) {
            if (round > 10000) throw ExtractError("extraction did not terminate");
            refresh_frontier();
            normalize_input_edges();
            emit_frontier_phases();
            emit_frontier_czs();
            if (!advance_frontier()) break; // no interior neighbours left
        }
        finalize_permutation();

        // `gates_` was collected output-side-first; reverse into time order and
        // place the input-side compensation gates first.
        Circuit c(static_cast<int>(nq_));
        for (const Gate& g : prefix_) c.add(g);
        for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) c.add(*it);
        return c;
    }

private:
    /// The unique neighbour of a boundary vertex.
    std::pair<int, EdgeCount> boundary_neighbour(int b) const {
        const auto& adj = g_.adjacency(b);
        if (adj.size() != 1 || adj.begin()->second.total() != 1)
            throw ExtractError("boundary vertex without a unique edge");
        return {adj.begin()->first, adj.begin()->second};
    }

    bool is_input(int v) const { return input_qubit_.count(v) > 0; }

    /// Recompute frontier[q] for every output, absorbing Hadamard edges on
    /// output wires as H gates and splitting off identity spiders where an
    /// output touches an input directly.
    void refresh_frontier() {
        frontier_.assign(nq_, -1);
        std::unordered_set<int> used;
        for (std::size_t q = 0; q < nq_; ++q) {
            const int out = g_.outputs()[q];
            auto [w, cnt] = boundary_neighbour(out);
            if (is_input(w)) {
                // Bare wire to an input: insert an identity spider so the
                // frontier is always a proper spider. in -H- v -S- out equals
                // the original Hadamard edge; if the edge was simple we must
                // compensate with an H gate at the circuit end.
                const int v = g_.add_vertex(VertexType::Z, 0.0, static_cast<int>(q));
                g_.remove_edge(w, out);
                g_.add_edge(w, v, EdgeType::Hadamard);
                g_.add_edge(v, out, EdgeType::Simple);
                if (cnt.simple == 1) emit(Gate(GateKind::H, {static_cast<int>(q)}));
                w = v;
            } else if (cnt.hadamard == 1) {
                // Absorb the Hadamard on the output wire as a gate.
                emit(Gate(GateKind::H, {static_cast<int>(q)}));
                g_.remove_edge(w, out);
                g_.add_edge(w, out, EdgeType::Simple);
            }
            if (!used.insert(w).second)
                throw ExtractError("spider adjacent to two outputs (diagram not unitary)");
            frontier_[q] = w;
        }
    }

    /// Keep every input edge a Hadamard edge: a simple input edge becomes a
    /// Hadamard edge plus an explicit H gate at the very start of the circuit.
    void normalize_input_edges() {
        for (std::size_t q = 0; q < g_.inputs().size(); ++q) {
            const int in = g_.inputs()[q];
            // Mid-extraction an input may touch several frontier spiders (row
            // operations fan its Hadamard edge out); only the initial single
            // simple wire ever needs conversion.
            const auto adj = g_.adjacency(in); // copy: we may edit below
            for (const auto& [w, cnt] : adj) {
                if (cnt.simple == 0) continue;
                if (cnt.simple != 1 || cnt.hadamard != 0 || adj.size() != 1)
                    throw ExtractError("unexpected simple edge on an input");
                g_.remove_edge(in, w);
                g_.add_edge(in, w, EdgeType::Hadamard);
                prefix_.push_back(Gate(GateKind::H, {static_cast<int>(q)}));
            }
        }
    }

    void emit_frontier_phases() {
        for (std::size_t q = 0; q < nq_; ++q) {
            const int v = frontier_[q];
            const double p = g_.phase(v);
            if (std::abs(p) > kTol) {
                emit(Gate(GateKind::P, {static_cast<int>(q)}, {p}));
                g_.set_phase(v, 0.0);
            }
        }
    }

    void emit_frontier_czs() {
        for (std::size_t q1 = 0; q1 < nq_; ++q1) {
            for (std::size_t q2 = q1 + 1; q2 < nq_; ++q2) {
                const EdgeCount cnt = g_.edge(frontier_[q1], frontier_[q2]);
                if (cnt.simple != 0)
                    throw ExtractError("simple edge between frontier spiders");
                if (cnt.hadamard == 1) {
                    emit(Gate(GateKind::CZ, {static_cast<int>(q1), static_cast<int>(q2)}));
                    g_.remove_edge(frontier_[q1], frontier_[q2]);
                }
            }
        }
    }

    /// One frontier-advancement step. Returns false when no interior
    /// neighbours remain (extraction is down to the final permutation).
    bool advance_frontier() {
        // Columns: all non-output neighbours of the frontier, interior first.
        std::vector<int> cols;
        std::unordered_map<int, std::size_t> col_index;
        std::unordered_set<int> frontier_set(frontier_.begin(), frontier_.end());
        bool has_interior = false;
        for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t q = 0; q < nq_; ++q) {
                for (const auto& [w, cnt] : g_.adjacency(frontier_[q])) {
                    if (g_.is_boundary(w) && !is_input(w)) continue; // output wire
                    if (frontier_set.count(w)) throw ExtractError("frontier edge leaked");
                    const bool interior_col = !is_input(w);
                    if ((pass == 0) != interior_col) continue;
                    if (cnt.hadamard != 1 || cnt.simple != 0)
                        throw ExtractError("non-Hadamard edge at frontier");
                    if (col_index.emplace(w, cols.size()).second) {
                        cols.push_back(w);
                        if (interior_col) has_interior = true;
                    }
                }
            }
        }
        if (!has_interior) return false;
        const std::size_t num_interior = [&] {
            std::size_t n = 0;
            for (const int w : cols)
                if (!is_input(w)) ++n;
            return n;
        }();

        Mat2 m(nq_, cols.size());
        for (std::size_t q = 0; q < nq_; ++q)
            for (const auto& [w, cnt] : g_.adjacency(frontier_[q]))
                if (col_index.count(w)) m(q, col_index[w]) = 1;

        // Every row addition is a CNOT: adding row src to row dst XORs the
        // H-neighbourhood of frontier[dst] with that of frontier[src], which
        // is exactly what CNOT(control=dst, target=src) at the circuit end
        // does to the diagram (verified against tensor semantics in tests).
        m.gauss([&](std::size_t src, std::size_t dst) {
            emit(Gate(GateKind::CX, {static_cast<int>(dst), static_cast<int>(src)}));
        });

        // Rewrite the graph's frontier connectivity from the eliminated matrix.
        for (std::size_t q = 0; q < nq_; ++q) {
            for (const int w : cols)
                if (g_.connected(frontier_[q], w)) g_.remove_edge(frontier_[q], w);
            for (std::size_t j = 0; j < cols.size(); ++j)
                if (m(q, j)) g_.add_edge(frontier_[q], cols[j], EdgeType::Hadamard);
        }

        // Advance through every row whose single neighbour is interior.
        int extracted = 0;
        for (std::size_t q = 0; q < nq_; ++q) {
            if (m.row_weight(q) != 1) continue;
            std::size_t j = 0;
            while (m(q, j) == 0) ++j;
            if (j >= num_interior) continue; // the single neighbour is an input
            const int n = cols[j];
            const int out = g_.outputs()[q];
            g_.remove_vertex(frontier_[q]);
            g_.add_edge(n, out, EdgeType::Hadamard);
            ++extracted;
        }
        if (extracted == 0)
            throw ExtractError("no extractable frontier row (diagram lacks gflow)");
        return true;
    }

    /// Final stage: frontier connects only to inputs. Eliminate the
    /// frontier-input biadjacency to the identity with CNOTs, then peel the
    /// remaining per-wire Hadamard boxes.
    void finalize_permutation() {
        if (nq_ == 0) return;
        Mat2 m(nq_, nq_);
        for (std::size_t q = 0; q < nq_; ++q) {
            for (const auto& [w, cnt] : g_.adjacency(frontier_[q])) {
                if (g_.is_boundary(w) && !is_input(w)) continue;
                if (!is_input(w)) throw ExtractError("interior vertex in final stage");
                m(q, static_cast<std::size_t>(input_qubit_.at(w))) = 1;
            }
        }
        const std::size_t rank = m.gauss([&](std::size_t src, std::size_t dst) {
            emit(Gate(GateKind::CX, {static_cast<int>(dst), static_cast<int>(src)}));
        });
        if (rank != nq_) throw ExtractError("final biadjacency is singular");
        // m is now the identity: wire q is input -H- frontier -S- output,
        // i.e. one H gate per qubit.
        for (std::size_t q = 0; q < nq_; ++q) emit(Gate(GateKind::H, {static_cast<int>(q)}));
    }

    void emit(Gate g) { gates_.push_back(std::move(g)); }

    ZxGraph g_;
    std::size_t nq_;
    std::vector<int> frontier_;
    std::unordered_map<int, int> input_qubit_;
    std::vector<Gate> gates_;  ///< collected last-gate-first
    std::vector<Gate> prefix_; ///< H gates sitting directly on inputs
};

} // namespace

Circuit extract_circuit(ZxGraph g) { return Extractor(std::move(g)).run(); }

} // namespace epoc::zx
