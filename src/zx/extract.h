// Circuit extraction from graph-like ZX-diagrams.
//
// Implements the gflow-based frontier extraction of Backens et al. / PyZX:
// peel phases (RZ) and Hadamard-edge pairs (CZ) off the output frontier,
// Gauss-eliminate the frontier biadjacency over GF(2) (each row addition is a
// CNOT), and advance the frontier through rows that reduce to a single
// interior neighbour. Diagrams produced by zx::full_reduce on circuit inputs
// always extract; a diagram without gflow raises ExtractError.
#pragma once

#include "circuit/circuit.h"
#include "zx/graph.h"

#include <stdexcept>

namespace epoc::zx {

class ExtractError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Extract a circuit over {P(=RZ), H, CZ, CX} from a graph-like diagram.
/// The graph is consumed (mutated to empty).
circuit::Circuit extract_circuit(ZxGraph g);

} // namespace epoc::zx
