#include "zx/gf2.h"

#include <algorithm>

namespace epoc::zx {

void Mat2::row_add(std::size_t src, std::size_t dst) {
    for (std::size_t c = 0; c < cols_; ++c) d_[dst][c] ^= d_[src][c];
}

std::size_t Mat2::gauss(const RowOpCallback& on_row_add) {
    const auto add = [&](std::size_t src, std::size_t dst) {
        row_add(src, dst);
        if (on_row_add) on_row_add(src, dst);
    };

    std::size_t pivot_row = 0;
    std::vector<std::size_t> pivot_rows;
    std::vector<std::size_t> pivot_cols;
    for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
        // Find a row at or below pivot_row with a 1 in this column.
        std::size_t sel = rows_;
        for (std::size_t r = pivot_row; r < rows_; ++r)
            if (d_[r][col]) {
                sel = r;
                break;
            }
        if (sel == rows_) continue;
        // Swap-free pivoting: bring the 1 into pivot_row via row additions.
        if (sel != pivot_row) {
            add(sel, pivot_row);      // pivot_row now has the 1
            add(pivot_row, sel);      // sel becomes the old pivot_row
        }
        for (std::size_t r = pivot_row + 1; r < rows_; ++r)
            if (d_[r][col]) add(pivot_row, r);
        pivot_rows.push_back(pivot_row);
        pivot_cols.push_back(col);
        ++pivot_row;
    }
    // Back-substitution: clear above each pivot.
    for (std::size_t i = pivot_rows.size(); i-- > 0;) {
        const std::size_t pr = pivot_rows[i];
        const std::size_t pc = pivot_cols[i];
        for (std::size_t r = 0; r < pr; ++r)
            if (d_[r][pc]) add(pr, r);
    }
    return pivot_rows.size();
}

std::size_t Mat2::row_weight(std::size_t r) const {
    return static_cast<std::size_t>(std::count(d_[r].begin(), d_[r].end(), 1));
}

} // namespace epoc::zx
