// Dense GF(2) matrices with row-operation tracking, used by the ZX circuit
// extractor (biadjacency elimination -> CNOT emission).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace epoc::zx {

class Mat2 {
public:
    Mat2() = default;
    Mat2(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), d_(rows, std::vector<std::uint8_t>(cols, 0)) {}

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }

    std::uint8_t& operator()(std::size_t r, std::size_t c) { return d_[r][c]; }
    std::uint8_t operator()(std::size_t r, std::size_t c) const { return d_[r][c]; }

    /// row dst ^= row src.
    void row_add(std::size_t src, std::size_t dst);

    /// Called as op(src, dst) for every row_add performed by gauss().
    using RowOpCallback = std::function<void(std::size_t, std::size_t)>;

    /// In-place Gauss-Jordan elimination to reduced row echelon form using
    /// only row additions (no swaps; pivot rows are selected in place).
    /// Returns the rank.
    std::size_t gauss(const RowOpCallback& on_row_add = nullptr);

    /// Number of ones in a row.
    std::size_t row_weight(std::size_t r) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::vector<std::uint8_t>> d_;
};

} // namespace epoc::zx
