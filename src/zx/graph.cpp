#include "zx/graph.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace epoc::zx {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kPhaseTol = 1e-9;
} // namespace

double normalize_phase(double p) {
    p = std::fmod(p, 2 * kPi);
    if (p < 0) p += 2 * kPi;
    // Collapse values within tolerance of 2*pi back to 0.
    if (p > 2 * kPi - kPhaseTol) p = 0.0;
    return p;
}

int ZxGraph::add_vertex(VertexType type, double phase, int qubit) {
    types_.push_back(type);
    phases_.push_back(normalize_phase(phase));
    qubits_.push_back(qubit);
    alive_.push_back(true);
    adj_.emplace_back();
    return static_cast<int>(types_.size()) - 1;
}

void ZxGraph::set_phase(int v, double p) {
    phases_.at(static_cast<std::size_t>(v)) = normalize_phase(p);
}

bool ZxGraph::is_pauli_phase(int v) const {
    const double p = phase(v);
    return std::abs(p) < kPhaseTol || std::abs(p - kPi) < kPhaseTol;
}

bool ZxGraph::is_proper_clifford_phase(int v) const {
    const double p = phase(v);
    return std::abs(p - kPi / 2) < kPhaseTol || std::abs(p - 3 * kPi / 2) < kPhaseTol;
}

void ZxGraph::add_edge(int u, int v, EdgeType et, int count) {
    if (!alive(u) || !alive(v)) throw std::logic_error("add_edge: dead vertex");
    if (count <= 0) return;
    if (u == v) {
        // Self-loops: simple loops vanish; each Hadamard loop adds pi.
        if (et == EdgeType::Hadamard) add_phase(u, kPi * count);
        return;
    }
    EdgeCount& fwd = adj_[static_cast<std::size_t>(u)][v];
    if (et == EdgeType::Simple)
        fwd.simple += count;
    else
        fwd.hadamard += count;
    adj_[static_cast<std::size_t>(v)][u] = fwd;
    normalize_pair(u, v);
}

void ZxGraph::normalize_pair(int u, int v) {
    EdgeCount& fwd = adj_[static_cast<std::size_t>(u)][v];
    const VertexType tu = type(u), tv = type(v);
    if (tu != VertexType::Boundary && tv != VertexType::Boundary) {
        if (tu == tv) {
            // Same colour: Hopf cancels parallel Hadamard edges pairwise;
            // parallel simple edges are idempotent under fusion.
            fwd.hadamard %= 2;
            fwd.simple = std::min(fwd.simple, 1);
        } else {
            // Different colours: Hopf cancels parallel simple edges pairwise;
            // parallel Hadamard edges are idempotent.
            fwd.simple %= 2;
            fwd.hadamard = std::min(fwd.hadamard, 1);
        }
    }
    if (fwd.total() == 0) {
        adj_[static_cast<std::size_t>(u)].erase(v);
        adj_[static_cast<std::size_t>(v)].erase(u);
    } else {
        adj_[static_cast<std::size_t>(v)][u] = fwd;
    }
}

void ZxGraph::remove_edge(int u, int v) {
    adj_[static_cast<std::size_t>(u)].erase(v);
    adj_[static_cast<std::size_t>(v)].erase(u);
}

void ZxGraph::remove_vertex(int v) {
    for (const auto& [w, cnt] : adj_[static_cast<std::size_t>(v)])
        adj_[static_cast<std::size_t>(w)].erase(v);
    adj_[static_cast<std::size_t>(v)].clear();
    alive_[static_cast<std::size_t>(v)] = false;
}

EdgeCount ZxGraph::edge(int u, int v) const {
    const auto& m = adj_.at(static_cast<std::size_t>(u));
    const auto it = m.find(v);
    return it == m.end() ? EdgeCount{} : it->second;
}

int ZxGraph::degree(int v) const {
    int d = 0;
    for (const auto& [w, cnt] : adj_.at(static_cast<std::size_t>(v))) d += cnt.total();
    return d;
}

void ZxGraph::fuse(int u, int v) {
    if (type(u) != type(v) || type(u) == VertexType::Boundary)
        throw std::logic_error("fuse: vertices must be same-colour spiders");
    const EdgeCount between = edge(u, v);
    if (between.simple < 1) throw std::logic_error("fuse: no simple edge between spiders");
    // One simple edge performs the fusion; every *other* parallel edge becomes
    // a self-loop on the merged spider: simple loops vanish, Hadamard loops
    // add pi each.
    add_phase(u, phase(v) + kPi * between.hadamard);
    remove_edge(u, v);
    // Reconnect v's remaining neighbours to u.
    const auto neigh = adj_[static_cast<std::size_t>(v)];
    for (const auto& [w, cnt] : neigh) {
        if (cnt.simple > 0) add_edge(u, w, EdgeType::Simple, cnt.simple);
        if (cnt.hadamard > 0) add_edge(u, w, EdgeType::Hadamard, cnt.hadamard);
    }
    remove_vertex(v);
}

void ZxGraph::color_change(int v) {
    if (is_boundary(v)) throw std::logic_error("color_change: boundary vertex");
    set_type(v, type(v) == VertexType::Z ? VertexType::X : VertexType::Z);
    // Swap edge types on every incident pair, then renormalize.
    const auto neigh = adj_[static_cast<std::size_t>(v)]; // copy: we mutate below
    for (const auto& [w, cnt] : neigh) {
        EdgeCount swapped;
        swapped.simple = cnt.hadamard;
        swapped.hadamard = cnt.simple;
        adj_[static_cast<std::size_t>(v)][w] = swapped;
        adj_[static_cast<std::size_t>(w)][v] = swapped;
        normalize_pair(v, w);
    }
}

int ZxGraph::num_vertices() const {
    return static_cast<int>(std::count(alive_.begin(), alive_.end(), true));
}

std::vector<int> ZxGraph::vertices() const {
    std::vector<int> out;
    out.reserve(alive_.size());
    for (std::size_t v = 0; v < alive_.size(); ++v)
        if (alive_[v]) out.push_back(static_cast<int>(v));
    return out;
}

std::size_t ZxGraph::num_edges() const {
    std::size_t n = 0;
    for (std::size_t v = 0; v < adj_.size(); ++v) {
        if (!alive_[v]) continue;
        for (const auto& [w, cnt] : adj_[v])
            if (w > static_cast<int>(v)) n += static_cast<std::size_t>(cnt.total());
    }
    return n;
}

std::string ZxGraph::to_string() const {
    std::ostringstream os;
    os << "zx-graph: " << num_vertices() << " vertices, " << num_edges() << " edges\n";
    for (const int v : vertices()) {
        os << "  v" << v << " ";
        switch (type(v)) {
        case VertexType::Boundary: os << "B"; break;
        case VertexType::Z: os << "Z"; break;
        case VertexType::X: os << "X"; break;
        }
        if (std::abs(phase(v)) > 1e-12) os << "(" << phase(v) << ")";
        if (qubit(v) >= 0) os << " q" << qubit(v);
        os << " ->";
        for (const auto& [w, cnt] : adjacency(v)) {
            for (int i = 0; i < cnt.simple; ++i) os << " " << w;
            for (int i = 0; i < cnt.hadamard; ++i) os << " h" << w;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace epoc::zx
