// ZX-diagram multigraph.
//
// Vertices are spiders (Z or X, with a phase in radians) or boundary nodes
// (circuit inputs/outputs). Edges are either simple wires or Hadamard edges
// and are stored with multiplicity so that parallel edges created during
// rewriting can be normalized by the algebra:
//   * same-colour pair:   parallel Hadamard edges cancel mod 2 (Hopf law),
//                         parallel simple edges are idempotent (fusion),
//   * different colours:  parallel simple edges cancel mod 2 (Hopf law),
//                         parallel Hadamard edges are idempotent,
//   * self-loops:         simple loops vanish; each Hadamard loop adds pi to
//                         the spider phase.
// Scalar factors are deliberately dropped everywhere: EPOC compares circuits
// up to global phase.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace epoc::zx {

enum class VertexType : std::uint8_t { Boundary, Z, X };
enum class EdgeType : std::uint8_t { Simple, Hadamard };

/// Parallel-edge multiplicities between a vertex pair.
struct EdgeCount {
    int simple = 0;
    int hadamard = 0;
    int total() const noexcept { return simple + hadamard; }
};

class ZxGraph {
public:
    /// Returns the new vertex id. `qubit` is a bookkeeping hint (boundary rows).
    int add_vertex(VertexType type, double phase = 0.0, int qubit = -1);

    /// Add `count` parallel edges of one type and normalize the pair.
    void add_edge(int u, int v, EdgeType et, int count = 1);

    void remove_edge(int u, int v);
    void remove_vertex(int v);

    bool alive(int v) const { return alive_.at(static_cast<std::size_t>(v)); }
    VertexType type(int v) const { return types_.at(static_cast<std::size_t>(v)); }
    void set_type(int v, VertexType t) { types_.at(static_cast<std::size_t>(v)) = t; }
    double phase(int v) const { return phases_.at(static_cast<std::size_t>(v)); }
    void set_phase(int v, double p);
    void add_phase(int v, double p) { set_phase(v, phase(v) + p); }
    int qubit(int v) const { return qubits_.at(static_cast<std::size_t>(v)); }

    bool is_boundary(int v) const { return type(v) == VertexType::Boundary; }
    bool is_interior(int v) const { return alive(v) && !is_boundary(v); }

    /// Phase == 0 or pi (mod 2*pi), within tolerance.
    bool is_pauli_phase(int v) const;
    /// Phase == +-pi/2 (mod 2*pi), within tolerance.
    bool is_proper_clifford_phase(int v) const;

    const std::map<int, EdgeCount>& adjacency(int v) const {
        return adj_.at(static_cast<std::size_t>(v));
    }
    EdgeCount edge(int u, int v) const;
    bool connected(int u, int v) const { return edge(u, v).total() > 0; }
    int degree(int v) const;

    /// Toggle a single Hadamard edge between two (alive) vertices; used by
    /// local complementation and pivoting.
    void toggle_hadamard_edge(int u, int v) { add_edge(u, v, EdgeType::Hadamard); }

    /// Fuse same-colour spiders connected by at least one simple edge:
    /// v merges into u (phases add; Hadamard self-loops from leftover parallel
    /// edges each add pi).
    void fuse(int u, int v);

    /// Flip the colour of a spider by pushing a Hadamard through every leg.
    void color_change(int v);

    const std::vector<int>& inputs() const noexcept { return inputs_; }
    const std::vector<int>& outputs() const noexcept { return outputs_; }
    void set_inputs(std::vector<int> in) { inputs_ = std::move(in); }
    void set_outputs(std::vector<int> out) { outputs_ = std::move(out); }

    /// Number of alive vertices / capacity of the id space.
    int num_vertices() const;
    int vertex_bound() const { return static_cast<int>(types_.size()); }
    std::vector<int> vertices() const;
    std::size_t num_edges() const;

    std::string to_string() const;

private:
    void normalize_pair(int u, int v);

    std::vector<VertexType> types_;
    std::vector<double> phases_;
    std::vector<int> qubits_;
    std::vector<bool> alive_;
    std::vector<std::map<int, EdgeCount>> adj_;
    std::vector<int> inputs_;
    std::vector<int> outputs_;
};

/// Normalize an angle to [0, 2*pi).
double normalize_phase(double p);

} // namespace epoc::zx
