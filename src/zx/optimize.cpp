#include "zx/optimize.h"

#include "circuit/peephole.h"
#include "zx/circuit_to_zx.h"
#include "zx/extract.h"

namespace epoc::zx {

ZxOptimizeResult zx_optimize(const circuit::Circuit& c) {
    ZxOptimizeResult res;
    res.depth_before = c.depth();

    const circuit::Circuit baseline = circuit::peephole_optimize(c);
    res.circuit = baseline;

    // Pulse-aware cost: entangling gates dominate pulse latency, depth breaks
    // ties; a shallower circuit with many more CNOTs is not an improvement.
    const auto cost = [](const circuit::Circuit& circ) {
        return 3 * circ.two_qubit_count() + static_cast<std::size_t>(circ.depth());
    };
    try {
        ZxGraph g = circuit_to_zx(c);
        res.stats = full_reduce(g);
        const circuit::Circuit extracted =
            circuit::peephole_optimize(extract_circuit(std::move(g)));
        if (cost(extracted) < cost(baseline)) {
            res.circuit = extracted;
            res.used_extraction = true;
        }
    } catch (const ExtractError&) {
        // Diagram lost gflow (should not happen with interior-only rules);
        // the peepholed original is still a valid, optimized result.
    } catch (const std::invalid_argument&) {
        // Circuit contains gates the ZX converter cannot express (VUGs).
    }
    res.depth_after = res.circuit.depth();
    return res;
}

} // namespace epoc::zx
