// The graph-based depth optimization stage of EPOC (paper Section 3.1):
// circuit -> ZX diagram -> full_reduce -> extraction -> commutation-aware
// peephole; keeps whichever of {peepholed original, peepholed extraction} is
// shallower. Never fails: diagrams the extractor rejects fall back to the
// peepholed original.
#pragma once

#include "circuit/circuit.h"
#include "zx/simplify.h"

namespace epoc::zx {

struct ZxOptimizeResult {
    circuit::Circuit circuit;
    SimplifyStats stats;
    int depth_before = 0;
    int depth_after = 0;
    bool used_extraction = false; ///< false if the fallback won
};

ZxOptimizeResult zx_optimize(const circuit::Circuit& c);

} // namespace epoc::zx
