#include "zx/simplify.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace epoc::zx {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTol = 1e-9;

bool phase_is_zero(const ZxGraph& g, int v) { return std::abs(g.phase(v)) < kTol; }

/// True if every incident edge of v is a single Hadamard edge to an interior
/// vertex (the precondition of local complementation / pivoting).
bool interior_hadamard_neighbourhood(const ZxGraph& g, int v) {
    for (const auto& [w, cnt] : g.adjacency(v)) {
        if (!g.is_interior(w)) return false;
        if (cnt.simple != 0 || cnt.hadamard != 1) return false;
    }
    return true;
}

} // namespace

int spider_simp(ZxGraph& g) {
    int fusions = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (const int u : g.vertices()) {
            if (!g.is_interior(u)) continue;
            // Re-check aliveness: earlier fusions this sweep may have eaten u.
            if (!g.alive(u)) continue;
            bool fused_here = true;
            while (fused_here) {
                fused_here = false;
                for (const auto& [w, cnt] : g.adjacency(u)) {
                    if (cnt.simple >= 1 && g.is_interior(w) && g.type(w) == g.type(u)) {
                        g.fuse(u, w);
                        ++fusions;
                        progress = true;
                        fused_here = true;
                        break; // adjacency changed; restart scan of u
                    }
                }
            }
        }
    }
    return fusions;
}

void to_graph_like(ZxGraph& g, SimplifyStats* stats) {
    for (const int v : g.vertices())
        if (g.alive(v) && g.type(v) == VertexType::X) g.color_change(v);
    const int fusions = spider_simp(g);
    if (stats != nullptr) stats->spider_fusions += fusions;
}

int id_simp(ZxGraph& g) {
    int removed = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (const int v : g.vertices()) {
            if (!g.is_interior(v) || !g.alive(v) || !phase_is_zero(g, v)) continue;
            const auto& adj = g.adjacency(v);
            if (adj.size() != 2) continue;
            const auto first = adj.begin();
            const auto second = std::next(first);
            if (first->second.total() != 1 || second->second.total() != 1) continue;
            const int w1 = first->first;
            const int w2 = second->first;
            const bool h1 = first->second.hadamard == 1;
            const bool h2 = second->second.hadamard == 1;
            g.remove_vertex(v);
            g.add_edge(w1, w2, h1 == h2 ? EdgeType::Simple : EdgeType::Hadamard);
            ++removed;
            progress = true;
        }
    }
    return removed;
}

int lcomp_simp(ZxGraph& g) {
    int applied = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (const int v : g.vertices()) {
            if (!g.alive(v) || !g.is_interior(v)) continue;
            if (g.type(v) != VertexType::Z) continue;
            if (!g.is_proper_clifford_phase(v)) continue;
            if (!interior_hadamard_neighbourhood(g, v)) continue;

            std::vector<int> nbrs;
            nbrs.reserve(g.adjacency(v).size());
            for (const auto& [w, cnt] : g.adjacency(v)) nbrs.push_back(w);

            const double vp = g.phase(v);
            for (const int w : nbrs) g.add_phase(w, -vp);
            for (std::size_t i = 0; i < nbrs.size(); ++i)
                for (std::size_t j = i + 1; j < nbrs.size(); ++j)
                    g.toggle_hadamard_edge(nbrs[i], nbrs[j]);
            g.remove_vertex(v);
            ++applied;
            progress = true;
        }
    }
    return applied;
}

int pivot_simp(ZxGraph& g) {
    int applied = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (const int u : g.vertices()) {
            if (!g.alive(u) || !g.is_interior(u) || g.type(u) != VertexType::Z) continue;
            if (!g.is_pauli_phase(u)) continue;
            if (!interior_hadamard_neighbourhood(g, u)) continue;

            int v = -1;
            for (const auto& [w, cnt] : g.adjacency(u)) {
                if (cnt.hadamard == 1 && g.type(w) == VertexType::Z && g.is_pauli_phase(w) &&
                    interior_hadamard_neighbourhood(g, w)) {
                    v = w;
                    break;
                }
            }
            if (v < 0) continue;

            // Partition the joint neighbourhood.
            std::vector<int> a, b, c;
            for (const auto& [w, cnt] : g.adjacency(u)) {
                if (w == v) continue;
                (g.connected(v, w) ? c : a).push_back(w);
            }
            for (const auto& [w, cnt] : g.adjacency(v)) {
                if (w == u || g.connected(u, w)) continue;
                b.push_back(w);
            }

            const double pu = g.phase(u);
            const double pv = g.phase(v);
            for (const int w : a) g.add_phase(w, pv);
            for (const int w : b) g.add_phase(w, pu);
            for (const int w : c) g.add_phase(w, pu + pv + kPi);

            for (const int wa : a)
                for (const int wb : b) g.toggle_hadamard_edge(wa, wb);
            for (const int wa : a)
                for (const int wc : c) g.toggle_hadamard_edge(wa, wc);
            for (const int wb : b)
                for (const int wc : c) g.toggle_hadamard_edge(wb, wc);

            g.remove_vertex(u);
            g.remove_vertex(v);
            ++applied;
            progress = true;
            break; // vertex list invalidated; rescan
        }
    }
    return applied;
}

SimplifyStats full_reduce(ZxGraph& g) {
    SimplifyStats stats;
    to_graph_like(g, &stats);
    bool progress = true;
    while (progress) {
        progress = false;
        ++stats.rounds;
        const int ids = id_simp(g);
        const int fus1 = spider_simp(g);
        const int lcs = lcomp_simp(g);
        const int fus2 = spider_simp(g);
        const int pvs = pivot_simp(g);
        const int fus3 = spider_simp(g);
        stats.identities_removed += ids;
        stats.spider_fusions += fus1 + fus2 + fus3;
        stats.local_complementations += lcs;
        stats.pivots += pvs;
        if (ids + lcs + pvs + fus1 + fus2 + fus3 > 0) progress = true;
    }
    return stats;
}

} // namespace epoc::zx
