// Graph-like simplification of ZX-diagrams.
//
// The pass structure mirrors PyZX (Kissinger & van de Wetering 2020) and the
// graph-theoretic simplification of Duncan, Kissinger, Perdrix & van de
// Wetering (2020):
//   to_graph_like  -- colour-change all X spiders to Z and fuse, after which
//                     every interior vertex is a Z spider and all
//                     interior-interior edges are Hadamard edges;
//   id_simp        -- remove phase-free arity-2 spiders;
//   lcomp_simp     -- local complementation removing interior +-pi/2 spiders;
//   pivot_simp     -- pivoting removing pairs of interior Pauli spiders;
//   full_reduce    -- all of the above to a fixpoint.
// Only interior matches are used (no boundary pivots), which keeps the
// diagram extractable by the gflow-based extractor in zx/extract.h.
#pragma once

#include "zx/graph.h"

namespace epoc::zx {

/// Match/apply counters for one simplification run.
struct SimplifyStats {
    int spider_fusions = 0;
    int identities_removed = 0;
    int local_complementations = 0;
    int pivots = 0;
    int rounds = 0;
};

/// Colour-change + fuse to graph-like form. Always safe to call first.
void to_graph_like(ZxGraph& g, SimplifyStats* stats = nullptr);

/// Fuse all same-colour spiders joined by simple edges. Returns #fusions.
int spider_simp(ZxGraph& g);

/// Remove phase-free arity-2 interior spiders. Returns #removed.
int id_simp(ZxGraph& g);

/// Local complementation on interior spiders with phase +-pi/2 whose
/// neighbourhood is interior and fully Hadamard-connected. Returns #applied.
int lcomp_simp(ZxGraph& g);

/// Pivot on Hadamard edges joining two interior Pauli spiders with interior
/// neighbourhoods. Returns #applied.
int pivot_simp(ZxGraph& g);

/// Run to_graph_like then iterate {id, lcomp, pivot, spider} to a fixpoint.
SimplifyStats full_reduce(ZxGraph& g);

} // namespace epoc::zx
