#include "zx/tensor.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace epoc::zx {

namespace {
constexpr double kSqrt2Inv = 0.70710678118654752440;
}

linalg::Matrix zx_to_matrix(const ZxGraph& g_in) {
    ZxGraph g = g_in;
    for (const int v : g.vertices())
        if (g.alive(v) && g.type(v) == VertexType::X) g.color_change(v);

    const std::vector<int>& ins = g.inputs();
    const std::vector<int>& outs = g.outputs();
    std::vector<int> interior;
    for (const int v : g.vertices())
        if (g.is_interior(v)) interior.push_back(v);
    if (interior.size() > 24)
        throw std::invalid_argument("zx_to_matrix: too many interior spiders");

    // Edge list with endpoint vertices and type (expanded by multiplicity).
    struct E {
        int u, v;
        bool had;
    };
    std::vector<E> edges;
    for (const int v : g.vertices()) {
        for (const auto& [w, cnt] : g.adjacency(v)) {
            if (w < v) continue;
            for (int i = 0; i < cnt.simple; ++i) edges.push_back({v, w, false});
            for (int i = 0; i < cnt.hadamard; ++i) edges.push_back({v, w, true});
        }
    }

    std::unordered_map<int, std::size_t> interior_index;
    for (std::size_t i = 0; i < interior.size(); ++i) interior_index[interior[i]] = i;
    std::unordered_map<int, std::size_t> in_index, out_index;
    for (std::size_t i = 0; i < ins.size(); ++i) in_index[ins[i]] = i;
    for (std::size_t i = 0; i < outs.size(); ++i) out_index[outs[i]] = i;

    const std::size_t rows = std::size_t{1} << outs.size();
    const std::size_t cols = std::size_t{1} << ins.size();
    linalg::Matrix m(rows, cols);

    std::vector<int> bit(static_cast<std::size_t>(g.vertex_bound()), 0);
    const auto vertex_bit = [&](int v) { return bit[static_cast<std::size_t>(v)]; };

    for (std::size_t col = 0; col < cols; ++col) {
        for (std::size_t i = 0; i < ins.size(); ++i)
            bit[static_cast<std::size_t>(ins[i])] = static_cast<int>((col >> i) & 1);
        for (std::size_t row = 0; row < rows; ++row) {
            for (std::size_t i = 0; i < outs.size(); ++i)
                bit[static_cast<std::size_t>(outs[i])] = static_cast<int>((row >> i) & 1);
            linalg::cplx total{0.0, 0.0};
            const std::size_t combos = std::size_t{1} << interior.size();
            for (std::size_t a = 0; a < combos; ++a) {
                for (std::size_t i = 0; i < interior.size(); ++i)
                    bit[static_cast<std::size_t>(interior[i])] =
                        static_cast<int>((a >> i) & 1);
                linalg::cplx term{1.0, 0.0};
                for (const E& e : edges) {
                    const int x = vertex_bit(e.u);
                    const int y = vertex_bit(e.v);
                    if (e.had) {
                        term *= kSqrt2Inv;
                        if (x == 1 && y == 1) term = -term;
                    } else if (x != y) {
                        term = linalg::cplx{0.0, 0.0};
                        break;
                    }
                }
                if (term == linalg::cplx{0.0, 0.0}) continue;
                for (std::size_t i = 0; i < interior.size(); ++i) {
                    if (vertex_bit(interior[i]) == 1)
                        term *= std::polar(1.0, g.phase(interior[i]));
                }
                total += term;
            }
            m(row, col) = total;
        }
    }
    return m;
}

} // namespace epoc::zx
