// Brute-force tensor semantics of small ZX-diagrams.
//
// Evaluates the linear map of a diagram by summing over basis assignments of
// the interior spiders (Z spiders force all incident edge ends to one bit, so
// one bit per spider suffices). Exponential in the number of interior
// vertices -- intended for tests and debugging, not for the compiler path.
#pragma once

#include "linalg/matrix.h"
#include "zx/graph.h"

namespace epoc::zx {

/// The 2^|outputs| x 2^|inputs| matrix of the diagram, up to a global scalar
/// (the result is normalized so its largest entry has unit magnitude is NOT
/// done -- entries keep their raw value including sqrt(2) factors from
/// Hadamard edges). X spiders are handled by an internal colour change.
linalg::Matrix zx_to_matrix(const ZxGraph& g);

} // namespace epoc::zx
