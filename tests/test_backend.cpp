// Hardware-backend registry, per-backend Hamiltonians/keying, and the
// backend-aware compile path.
#include "backend/backend.h"

#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace {

using namespace epoc;
using backend::Backend;
using backend::BackendRegistry;
using epoc::circuit::CouplingMap;

core::EpocOptions fast_options() {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

std::uint64_t digest(const core::EpocResult& r) {
    return qoc::fnv1a64(core::schedule_to_json(r.schedule));
}

// --- Registry ------------------------------------------------------------

TEST(BackendRegistry, BuiltinsResolve) {
    BackendRegistry reg;
    for (const char* name : {"linear-5", "ring-8", "grid-3x3", "heavy-hex-7"}) {
        const auto be = reg.find(name);
        ASSERT_NE(be, nullptr) << name;
        EXPECT_EQ(be->name, name);
        EXPECT_NO_THROW(be->validate());
    }
    EXPECT_EQ(reg.find("linear-5")->coupling.num_qubits(), 5);
    EXPECT_EQ(reg.find("heavy-hex-7")->coupling.edges().size(), 6u);
}

TEST(BackendRegistry, FullNMaterializesParametrically) {
    BackendRegistry reg;
    const auto be = reg.find("full-4");
    ASSERT_NE(be, nullptr);
    EXPECT_EQ(be->coupling.num_qubits(), 4);
    EXPECT_EQ(be->coupling.edges().size(), 6u); // C(4,2)
    // Second lookup returns the same materialized instance.
    EXPECT_EQ(reg.find("full-4").get(), be.get());
    EXPECT_EQ(reg.find("full-0"), nullptr);
    EXPECT_EQ(reg.find("full-999"), nullptr);
    EXPECT_EQ(reg.find("full-x"), nullptr);
}

TEST(BackendRegistry, UnknownNameIsNullptrNotThrow) {
    BackendRegistry reg;
    EXPECT_EQ(reg.find("no-such-device"), nullptr);
    EXPECT_EQ(reg.find(""), nullptr);
}

TEST(BackendRegistry, DuplicateNameThrows) {
    BackendRegistry reg;
    EXPECT_THROW(reg.register_backend(Backend("linear-5", CouplingMap::linear(2))),
                 std::invalid_argument);
}

TEST(BackendRegistry, JsonRoundTrip) {
    BackendRegistry reg;
    const std::string json = R"({
        "name": "fridge-a",
        "num_qubits": 3,
        "edges": [[0, 1], [1, 2]],
        "drive_bound": 0.15,
        "zz_drift": 0.0021,
        "edge_overrides": [{"a": 1, "b": 2, "coupling_bound": 0.017}],
        "crosstalk_zz": true
    })";
    const auto be = reg.register_json(json);
    ASSERT_NE(be, nullptr);
    EXPECT_EQ(be->name, "fridge-a");
    EXPECT_EQ(be->coupling.num_qubits(), 3);
    EXPECT_DOUBLE_EQ(be->base.drive_bound, 0.15);
    EXPECT_DOUBLE_EQ(be->edge(1, 2).coupling_bound, 0.017);
    EXPECT_DOUBLE_EQ(be->edge(2, 1).coupling_bound, 0.017); // either orientation
    EXPECT_DOUBLE_EQ(be->edge(0, 1).coupling_bound, be->base.coupling_bound);
    EXPECT_TRUE(be->crosstalk_zz);
    EXPECT_EQ(reg.find("fridge-a").get(), be.get());
}

TEST(BackendRegistry, MalformedJsonThrows) {
    BackendRegistry reg;
    EXPECT_THROW(reg.register_json("not json"), std::invalid_argument);
    EXPECT_THROW(reg.register_json("{}"), std::invalid_argument);
    EXPECT_THROW(reg.register_json(R"({"name": "x", "num_qubits": 2})"),
                 std::invalid_argument);
    // Edge override on a non-edge fails validate(), not just parsing.
    EXPECT_THROW(reg.register_json(R"({
        "name": "bad", "num_qubits": 3, "edges": [[0, 1]],
        "edge_overrides": [{"a": 1, "b": 2, "coupling_bound": 0.01}]
    })"),
                 std::invalid_argument);
}

// --- Fingerprints and cache keying ---------------------------------------

TEST(BackendFingerprint, OneUlpApartKeysDifferently) {
    // Two backends identical except for one ulp of zz_drift: a decimal-
    // formatted key would collide, exact_double encoding must not.
    Backend a("dev", CouplingMap::linear(3));
    Backend b("dev", CouplingMap::linear(3));
    b.base.zz_drift = std::nextafter(a.base.zz_drift, 1.0);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint_hash(), b.fingerprint_hash());
    // The Hamiltonian variant embeds the fingerprint, so pulse-library keys
    // separate automatically.
    EXPECT_NE(a.block_hamiltonian({0, 1}).variant,
              b.block_hamiltonian({0, 1}).variant);
}

TEST(BackendFingerprint, NearEqualBackendsSeparateInPulseLibrary) {
    Backend a("dev", CouplingMap::linear(2));
    Backend b("dev", CouplingMap::linear(2));
    b.base.zz_drift = std::nextafter(a.base.zz_drift, 1.0);

    qoc::PulseLibrary lib;
    qoc::LatencySearchOptions lopt;
    lopt.fidelity_threshold = 0.5; // cheap: keying is under test, not GRAPE
    lopt.grape.max_iterations = 10;
    const linalg::Matrix cx = circuit::Circuit(2).cx(0, 1).gate(0).unitary();
    const auto ha = a.block_hamiltonian({0, 1});
    const auto hb = b.block_hamiltonian({0, 1});
    ASSERT_NE(lib.get_or_generate(ha, cx, lopt), nullptr);
    EXPECT_NE(lib.peek(ha, cx, lopt), nullptr);
    EXPECT_EQ(lib.peek(hb, cx, lopt), nullptr) << "1-ulp backends shared a key";
}

// --- Device-resolved Hamiltonians ----------------------------------------

TEST(BackendHamiltonian, EntanglingLinesOnlyOnCouplers) {
    BackendRegistry reg;
    const auto be = reg.find("heavy-hex-7");
    const qoc::BlockHamiltonian h = be->block_hamiltonian({0, 1, 2});
    std::set<std::string> labels;
    for (const auto& ctl : h.controls) labels.insert(ctl.label);
    // Local indices: 0->phys 0, 1->phys 1, 2->phys 2; edges (0,1) and (1,2)
    // exist, (0,2) does not (both flags hang off qubit 1).
    EXPECT_EQ(labels.count("xx0_1"), 1u);
    EXPECT_EQ(labels.count("xx1_2"), 1u);
    EXPECT_EQ(labels.count("xx0_2"), 0u);
    for (int q = 0; q < 3; ++q) {
        EXPECT_EQ(labels.count("x" + std::to_string(q)), 1u);
        EXPECT_EQ(labels.count("y" + std::to_string(q)), 1u);
    }
}

TEST(BackendHamiltonian, PerQubitAndPerEdgeOverridesResolve) {
    Backend be("cal", CouplingMap::linear(3));
    be.qubit_drive_bounds = {0.10, 0.20, 0.30};
    be.edge_overrides[{1, 2}] = {0.05, 0.001};
    be.validate();
    EXPECT_DOUBLE_EQ(be.drive_bound(1), 0.20);
    const qoc::BlockHamiltonian h = be.block_hamiltonian({1, 2});
    for (const auto& ctl : h.controls) {
        if (ctl.label == "x0" || ctl.label == "y0")
            EXPECT_DOUBLE_EQ(ctl.bound, 0.20); // local 0 = physical 1
        if (ctl.label == "x1" || ctl.label == "y1")
            EXPECT_DOUBLE_EQ(ctl.bound, 0.30);
        if (ctl.label == "xx0_1") EXPECT_DOUBLE_EQ(ctl.bound, 0.05);
    }
}

TEST(BackendHamiltonian, CrosstalkChangesDriftNotControls) {
    Backend off("dev", CouplingMap::linear(3));
    Backend on("dev", CouplingMap::linear(3));
    on.crosstalk_zz = true;
    const auto ho = off.block_hamiltonian({0, 1, 2});
    const auto hx = on.block_hamiltonian({0, 1, 2});
    EXPECT_EQ(ho.controls.size(), hx.controls.size());
    EXPECT_NE(ho.variant, hx.variant);
    bool drift_differs = false;
    for (std::size_t i = 0; i < ho.drift.rows(); ++i)
        if (std::abs(ho.drift(i, i) - hx.drift(i, i)) > 1e-12) drift_differs = true;
    EXPECT_TRUE(drift_differs) << "spectator ZZ left the drift unchanged";
}

TEST(BackendHamiltonian, EmbedInLevelsIsUnitaryAndBlockDiagonal) {
    // 1-qubit X into 3 levels: the qubit block is X, the leakage level is
    // identity.
    linalg::Matrix x = linalg::Matrix::zeros(2, 2);
    x(0, 1) = 1.0;
    x(1, 0) = 1.0;
    const linalg::Matrix e = backend::embed_in_levels(x, 1, 3);
    ASSERT_EQ(e.rows(), 3u);
    EXPECT_DOUBLE_EQ(std::abs(e(0, 1)), 1.0);
    EXPECT_DOUBLE_EQ(std::abs(e(1, 0)), 1.0);
    EXPECT_DOUBLE_EQ(std::abs(e(2, 2)), 1.0);
    EXPECT_DOUBLE_EQ(std::abs(e(0, 0)), 0.0);
    EXPECT_TRUE(e.is_unitary(1e-12));

    // 2 qubits into 3 levels: 9x9, still unitary, levels==2 is a no-op.
    const linalg::Matrix cx = circuit::Circuit(2).cx(0, 1).gate(0).unitary();
    const linalg::Matrix e2 = backend::embed_in_levels(cx, 2, 3);
    ASSERT_EQ(e2.rows(), 9u);
    EXPECT_TRUE(e2.is_unitary(1e-12));
    EXPECT_LT(backend::embed_in_levels(cx, 2, 2).max_abs_diff(cx), 1e-15);

    const qoc::BlockHamiltonian h3 = [] {
        Backend be("qutrit", CouplingMap::linear(2));
        be.levels = 3;
        return be.block_hamiltonian({0, 1});
    }();
    EXPECT_EQ(h3.drift.rows(), 9u);
    for (const auto& ctl : h3.controls) EXPECT_EQ(ctl.h.rows(), 9u);
}

// --- Backend-aware compiles ----------------------------------------------

TEST(BackendCompile, SameCircuitKeysSeparatelyPerBackend) {
    // One compiler, one in-memory library, three devices: every backend must
    // regenerate its own pulses. Intra-compile hits (congruent blocks within
    // one circuit) are fine; cross-backend reuse is not — so each backend's
    // miss delta in the shared compiler must equal what a fresh compiler
    // misses for that backend alone.
    BackendRegistry reg;
    core::EpocCompiler compiler(fast_options());
    const circuit::Circuit c = bench::ghz(3);

    std::set<std::uint64_t> digests;
    std::size_t prev_misses = 0;
    for (const char* name : {"linear-5", "ring-8", "heavy-hex-7"}) {
        core::CompileCallOptions call;
        call.backend = reg.find(name);
        ASSERT_NE(call.backend, nullptr);
        const core::EpocResult r = compiler.compile(c, call);
        EXPECT_TRUE(r.status.ok()) << name << ": " << r.status.to_string();
        EXPECT_EQ(r.backend_name, name);
        digests.insert(digest(r));
        const std::size_t shared_misses =
            compiler.library().stats().misses - prev_misses;
        prev_misses = compiler.library().stats().misses;

        core::EpocOptions fresh_opt = fast_options();
        fresh_opt.backend = call.backend;
        core::EpocCompiler fresh(fresh_opt);
        fresh.compile(c);
        EXPECT_EQ(shared_misses, fresh.library().stats().misses)
            << name << " reused another backend's pulses";
    }
    EXPECT_EQ(digests.size(), 3u) << "two backends produced identical schedules";
}

TEST(BackendCompile, BitIdenticalAcrossThreadCounts) {
    BackendRegistry reg;
    const circuit::Circuit c = bench::ghz(3);
    for (const char* name : {"linear-5", "heavy-hex-7"}) {
        std::set<std::uint64_t> digests;
        for (const int threads : {1, 2, 8}) {
            core::EpocOptions opt = fast_options();
            opt.num_threads = threads;
            opt.backend = reg.find(name);
            core::EpocCompiler compiler(opt);
            const core::EpocResult r = compiler.compile(c);
            EXPECT_TRUE(r.status.ok()) << name;
            digests.insert(digest(r));
        }
        EXPECT_EQ(digests.size(), 1u)
            << name << ": schedule depends on thread count";
    }
}

TEST(BackendCompile, BridgedCircuitStaysEquivalentAndFeasible) {
    // CX(0,3) is distance-3 on linear-5: the partitioner must SWAP-walk it
    // and the compile must still come back clean.
    BackendRegistry reg;
    core::EpocOptions opt = fast_options();
    opt.backend = reg.find("linear-5");
    core::EpocCompiler compiler(opt);
    circuit::Circuit c(4);
    c.h(0).cx(0, 3);
    const core::EpocResult r = compiler.compile(c);
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_FALSE(r.degraded);
    EXPECT_GT(r.num_pulses, 0u);
    // The schedule spans the device register, not just the logical circuit.
    EXPECT_EQ(r.schedule.num_qubits, 5);
}

TEST(BackendCompile, ThreeLevelModelCompiles) {
    Backend be("qutrit-2", CouplingMap::linear(2));
    be.levels = 3;
    core::EpocOptions opt = fast_options();
    opt.latency.fidelity_threshold = 0.9; // 9-dim GRAPE is slower; keep cheap
    opt.backend = std::make_shared<const Backend>(std::move(be));
    core::EpocCompiler compiler(opt);
    circuit::Circuit c(2);
    c.h(0).cx(0, 1);
    const core::EpocResult r = compiler.compile(c);
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_GT(r.num_pulses, 0u);
    EXPECT_GT(r.latency_ns, 0.0);
}

TEST(BackendCompile, WiderThanRegisterIsInvalidInput) {
    BackendRegistry reg;
    core::EpocOptions opt = fast_options();
    opt.backend = reg.find("linear-5");
    core::EpocCompiler compiler(opt);
    const core::EpocResult r = compiler.compile(bench::ghz(6));
    EXPECT_EQ(r.status.cause, util::Cause::invalid_input);
    EXPECT_NE(r.status.detail.find("exceeds backend"), std::string::npos)
        << r.status.detail;
}

} // namespace
